"""Shim for legacy editable installs (``pip install -e . --no-build-isolation``)
on environments whose setuptools predates wheel-less PEP 660 support.  All
project metadata lives in pyproject.toml (PEP 621)."""

from setuptools import setup

setup()
