#!/usr/bin/env python3
"""Figure-3 style flame graphs for the sqlite3-shaped workload.

A multi-platform comparison run profiles the workload on the SpacemiT X60
and the Intel comparator (the per-ISA instruction factor is applied
automatically by the workload), renders cycles- and instructions-weighted
flame graphs as text, writes SVGs next to this script, and prints the
quantitative flame-graph diff the paper reads off the images.

Run with:  python examples/sqlite_flamegraphs.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import ProfileSpec, Session
from repro.flamegraph import render_text
from repro.flamegraph.render_text import render_summary


def main() -> None:
    comparison = Session.compare(
        ["SpacemiT X60", "Intel Core i5-1135G7"],
        "sqlite3-like",
        ProfileSpec(sample_period=8_000),
    )

    for run in comparison.runs:
        for metric in ("cycles", "instructions"):
            flame = run.flame(metric)
            print("=" * 72)
            print(f"{run.platform} - {metric}")
            print(render_text(flame, width=96))
            print()
            print("widest frames:")
            print(render_summary(flame, top=5))
            print()
            name = run.platform.split()[0].lower()
            path = os.path.join(os.path.dirname(__file__),
                                f"flame_{name}_{metric}.svg")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(run.flamegraph_svg(metric))
            print(f"wrote {path}")
            print()

    print("=" * 72)
    print("what the comparison makes quantitative:")
    for platform, diffs in comparison.flame_diffs.items():
        print(f"{comparison.baseline.platform} -> {platform}:")
        for diff in diffs[:5]:
            print(f"  {diff.function:<28} {diff.fraction_a * 100:>6.2f}% -> "
                  f"{diff.fraction_b * 100:>6.2f}%  ({diff.ratio:.2f}x)")


if __name__ == "__main__":
    main()
