#!/usr/bin/env python3
"""Figure-3 style flame graphs for the sqlite3-shaped workload.

Profiles the workload on the SpacemiT X60 and the Intel comparator, renders
cycles- and instructions-weighted flame graphs as text, and writes SVGs next
to this script.

Run with:  python examples/sqlite_flamegraphs.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.flamegraph import build_flame_graph, render_text, render_svg
from repro.flamegraph.render_text import render_summary
from repro.platforms import intel_i5_1135g7, spacemit_x60
from repro.toolchain import AnalysisWorkflow
from repro.workloads.sqlite3_like import instruction_factor_for, sqlite3_like_workload


def main() -> None:
    for descriptor in (spacemit_x60(), intel_i5_1135g7()):
        workflow = AnalysisWorkflow(descriptor)
        report = workflow.profile_synthetic(
            sqlite3_like_workload(),
            sample_period=8_000,
            instruction_factor=instruction_factor_for(descriptor.arch),
        )
        for metric, flame in (("cycles", report.flame_cycles),
                              ("instructions", report.flame_instructions)):
            print("=" * 72)
            print(f"{descriptor.name} - {metric}")
            print(render_text(flame, width=96))
            print()
            print("widest frames:")
            print(render_summary(flame, top=5))
            print()
            name = descriptor.name.split()[0].lower()
            path = os.path.join(os.path.dirname(__file__),
                                f"flame_{name}_{metric}.svg")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render_svg(flame, title=f"{descriptor.name} ({metric})"))
            print(f"wrote {path}")
            print()


if __name__ == "__main__":
    main()
