#!/usr/bin/env python3
"""The SpacemiT X60 PMU sampling workaround, step by step.

Shows the raw perf_event-level mechanics the paper's Section 3.3 describes:

1. the standard approach (sample cycles directly) fails with EOPNOTSUPP;
2. making the sampling-capable ``u_mode_cycle`` vendor counter the group
   leader lets cycles and instructions ride along in every sample;
3. the per-sample group readouts give IPC over time;
4. the session API (:mod:`repro.api`) applies all of this automatically --
   and shows what a stock kernel without the vendor driver loses.

Run with:  python examples/pmu_workaround_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cpu.events import HwEvent
from repro.isa.machine_ops import MachineOp, OpClass, load
from repro.kernel import PerfEventAttr, PerfEventOpenError, ReadFormat, SampleType
from repro.platforms import Machine, spacemit_x60


def run_workload(machine, task, iterations=60_000):
    """A small loop with a mix of ALU work and loads."""
    task.push_frame("main")
    task.push_frame("hot_loop")
    for i in range(iterations):
        machine.execute(MachineOp(OpClass.INT_ALU, pc=0x1000 + (i % 32) * 4), task)
        if i % 5 == 0:
            machine.execute(load(8, address=(i * 8) % 16384, pc=0x2000), task)
    task.pop_frame()
    task.pop_frame()


def main() -> None:
    machine = Machine(spacemit_x60())
    task = machine.create_task("demo")

    print("== 1. the standard perf flow ==")
    try:
        machine.perf.perf_event_open(
            PerfEventAttr(event=HwEvent.CYCLES, sample_period=10_000), task)
    except PerfEventOpenError as error:
        print(f"perf_event_open(cycles, sampling) failed: {error.errno_name}")
        print(f"  -> {error}")

    print()
    print("== 2. the miniperf workaround ==")
    leader = machine.perf.perf_event_open(
        PerfEventAttr(
            event=HwEvent.U_MODE_CYCLE,
            sample_period=10_000,
            sample_type=frozenset({SampleType.IP, SampleType.CALLCHAIN,
                                   SampleType.READ}),
            read_format=frozenset({ReadFormat.GROUP}),
        ),
        task,
    )
    machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.CYCLES), task,
                                 group_fd=leader)
    machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.INSTRUCTIONS), task,
                                 group_fd=leader)
    print("opened group: leader=u_mode_cycle, members=[cycles, instructions]")

    machine.perf.enable(leader)
    run_workload(machine, task)
    machine.perf.disable(leader)

    samples = machine.perf.mmap(leader).drain()
    print(f"collected {len(samples)} samples "
          f"(SBI ecalls used to program counters: {machine.sbi.ecall_count})")

    print()
    print("== 3. IPC over time from the group readouts ==")
    previous = (0, 0)
    for index, sample in enumerate(samples[:10]):
        cycles = sample.group_values["cycles"]
        instructions = sample.group_values["instructions"]
        delta_c = cycles - previous[0]
        delta_i = instructions - previous[1]
        previous = (cycles, instructions)
        ipc = delta_i / delta_c if delta_c else 0.0
        stack = ";".join(reversed(sample.callchain))
        print(f"  sample {index:2d}: +{delta_c:6d} cycles, +{delta_i:6d} instructions, "
              f"IPC {ipc:4.2f}   [{stack}]")

    print()
    print("== 4. the same, through the session API ==")
    from repro.api import ProfileSpec, Session
    session = Session("SpacemiT X60")
    run = session.run("micro-calltree", ProfileSpec(sample_period=2_000))
    print(f"with the vendor driver: {run.recording.describe()}")
    stock = session.run("micro-calltree",
                        ProfileSpec(sample_period=2_000).without_vendor_driver())
    print(f"without it: sampling -> {stock.errors.get('sampling', 'ok?')}")


if __name__ == "__main__":
    main()
