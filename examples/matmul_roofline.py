#!/usr/bin/env python3
"""Compiler-driven roofline analysis of the paper's tiled matmul kernel.

Compiles the kernel from KernelC source, instruments its loop nest at the IR
level, runs the two-phase flow on the SpacemiT X60 and Intel i5-1135G7
models, and prints ASCII roofline plots (plus SVG files next to this script).

Run with:  python examples/matmul_roofline.py [n]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.platforms import intel_i5_1135g7, spacemit_x60
from repro.roofline import RooflineRunner, render_ascii_roofline
from repro.roofline.plot import write_svg_roofline
from repro.workloads import MATMUL_TILED_SOURCE, matmul_args_builder


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    for descriptor in (spacemit_x60(), intel_i5_1135g7()):
        runner = RooflineRunner(descriptor)
        result = runner.run_source(MATMUL_TILED_SOURCE, "matmul_tiled",
                                   matmul_args_builder(n), filename="matmul.c")
        model = result.model()
        model.add_point(result.point_for_kernel())

        print("=" * 72)
        print(render_ascii_roofline(model))
        print()
        print(f"kernel total: {result.kernel_gflops:.2f} GFLOP/s at "
              f"AI {result.kernel_arithmetic_intensity:.3f} FLOP/byte")
        for loop in result.loops:
            print(f"  {loop.label}: {loop.fp_ops} FLOPs, {loop.total_bytes} bytes, "
                  f"instrumentation overhead {loop.instrumentation_overhead:.2f}x")
        out = os.path.join(os.path.dirname(__file__),
                           f"roofline_{descriptor.name.split()[0].lower()}.svg")
        write_svg_roofline(model, out)
        print(f"wrote {out}")
        print()


if __name__ == "__main__":
    main()
