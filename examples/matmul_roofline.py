#!/usr/bin/env python3
"""Compiler-driven roofline analysis of the paper's tiled matmul kernel.

One `Session.compare` call runs the two-phase roofline flow (compile,
instrument the loop nest at the IR level, baseline + instrumented execution)
on the SpacemiT X60 and Intel i5-1135G7 models, prints ASCII roofline plots
and writes SVGs next to this script.

Run with:  python examples/matmul_roofline.py [n]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import ProfileSpec, Session
from repro.roofline import render_ascii_roofline
from repro.workloads import registry


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    comparison = Session.compare(
        ["SpacemiT X60", "Intel Core i5-1135G7"],
        registry.create("matmul-tiled", n=n),
        ProfileSpec(analyses=("roofline",)),
    )

    for run in comparison.runs:
        result = run.roofline
        print("=" * 72)
        print(render_ascii_roofline(run.roofline_model()))
        print()
        print(f"kernel total: {result.kernel_gflops:.2f} GFLOP/s at "
              f"AI {result.kernel_arithmetic_intensity:.3f} FLOP/byte")
        for loop in result.loops:
            print(f"  {loop.label}: {loop.fp_ops} FLOPs, {loop.total_bytes} bytes, "
                  f"instrumentation overhead {loop.instrumentation_overhead:.2f}x")
        out = os.path.join(os.path.dirname(__file__),
                           f"roofline_{run.platform.split()[0].lower()}.svg")
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(run.roofline_svg())
        print(f"wrote {out}")
        print()

    print("=" * 72)
    print("side by side:")
    for row in comparison.to_dict()["summary"]:
        print(f"  {row['platform']:<24} {row['gflops']:>8} GFLOP/s at "
              f"AI {row['arithmetic_intensity']}")


if __name__ == "__main__":
    main()
