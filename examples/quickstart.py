#!/usr/bin/env python3
"""Quickstart: identify a platform, profile a workload, print hotspots.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.platforms import spacemit_x60
from repro.toolchain import AnalysisWorkflow
from repro.workloads.sqlite3_like import sqlite3_like_workload


def main() -> None:
    # Build the SpacemiT X60 machine model (core + caches + PMU + SBI + perf).
    workflow = AnalysisWorkflow(spacemit_x60())

    # miniperf identifies the CPU from its identification registers and knows
    # it needs the group-leader sampling workaround.
    print(workflow.miniperf.describe())
    print()

    # Profile the sqlite3-shaped workload with sampling (the workaround is
    # applied automatically) and print the hotspot table.
    report = workflow.profile_synthetic(sqlite3_like_workload(), sample_period=10_000)
    print(report.recording.describe())
    print()
    print(report.hotspots.format(8))


if __name__ == "__main__":
    main()
