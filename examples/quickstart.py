#!/usr/bin/env python3
"""Quickstart: one session, one spec, one run.

Builds a profiling Session for the SpacemiT X60, looks the sqlite3-shaped
workload up in the registry, and profiles it: CPU identification (with the
PMU group-leader workaround applied automatically), hotspot table, and a
machine-consumable JSON export of the same run.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import ProfileSpec, Session
from repro.workloads import registry


def main() -> None:
    # A Session owns the machine model (core + caches + PMU + SBI + perf)
    # lazily; miniperf identifies the CPU from its identification registers
    # and knows it needs the group-leader sampling workaround.
    session = Session("SpacemiT X60")
    print(session.describe())
    print()

    # One declarative spec: sample every 10k leader events, derive hotspots
    # and flame graphs.  The same spec would profile a compiled kernel too.
    run = session.run(registry["sqlite3-like"], ProfileSpec(sample_period=10_000))
    print(run.recording.describe())
    print()
    print(run.hotspots.format(8))
    print()

    # Every run exports uniformly; this is what `miniperf record --json` emits.
    top = run.to_dict()["hotspots"]["rows"][0]
    print(f"machine-consumable: top hotspot is {top['function']} "
          f"at {top['total_percent']}%")


if __name__ == "__main__":
    main()
