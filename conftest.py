"""Pytest bootstrap: make the src/ layout importable without installation.

Also registers the ``--update-goldens`` flag: golden-file regression tests
(``tests/test_cli_goldens.py``) compare CLI output against checked-in files
under ``tests/goldens/`` and, with the flag, rewrite them instead -- the
one-step way to bless an intentional output change.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

# Hermetic disk cache: point the persistent artifact store at a per-run
# temporary directory unless the environment already pins one, so test
# processes (and their pool workers, which inherit the environment) never
# read or pollute the developer's ~/.cache/repro.
os.environ.setdefault("REPRO_CACHE_DIR",
                      tempfile.mkdtemp(prefix="repro-test-cache-"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/* with the current CLI output "
             "instead of comparing against it",
    )
