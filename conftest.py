"""Pytest bootstrap: make the src/ layout importable without installation.

Also registers the ``--update-goldens`` flag: golden-file regression tests
(``tests/test_cli_goldens.py``) compare CLI output against checked-in files
under ``tests/goldens/`` and, with the flag, rewrite them instead -- the
one-step way to bless an intentional output change.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/* with the current CLI output "
             "instead of comparing against it",
    )
