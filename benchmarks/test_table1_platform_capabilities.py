"""Table 1: comparison of available RISC-V hardware capabilities.

Regenerates the paper's Table 1 from the PMU capability descriptors and
checks every cell.
"""

from repro.pmu.vendors import all_capabilities
from repro.toolchain.cli import _capabilities_table

#: The paper's Table 1, verbatim.
PAPER_TABLE_1 = {
    "SiFive U74": {"Out-of-Order": "No", "RVV version": "Not supported",
                   "Overflow interrupt support": "No", "Upstream Linux support": "Yes"},
    "T-Head C910": {"Out-of-Order": "Yes", "RVV version": "0.7.1",
                    "Overflow interrupt support": "Yes",
                    "Upstream Linux support": "Partial"},
    "SpacemiT X60": {"Out-of-Order": "No", "RVV version": "1.0",
                     "Overflow interrupt support": "Limited",
                     "Upstream Linux support": "No"},
}


def test_table1_matches_paper(benchmark):
    capabilities = benchmark(all_capabilities)
    for core, expected_row in PAPER_TABLE_1.items():
        row = capabilities[core].as_row()
        for column, expected in expected_row.items():
            assert row[column] == expected, f"{core} / {column}"
    print()
    print("Table 1: Comparison of available RISC-V hardware capabilities")
    print(_capabilities_table())


def test_table1_capability_semantics():
    """The capability bits must be backed by actual PMU behaviour."""
    from repro.cpu.events import EventBus, HwEvent
    from repro.pmu.vendors import SiFiveU74Pmu, SpacemitX60Pmu, TheadC910Pmu

    assert not SiFiveU74Pmu(EventBus()).event_supports_sampling(HwEvent.CYCLES)
    assert TheadC910Pmu(EventBus()).event_supports_sampling(HwEvent.CYCLES)
    x60 = SpacemitX60Pmu(EventBus())
    assert not x60.event_supports_sampling(HwEvent.CYCLES)          # "Limited"
    assert x60.event_supports_sampling(HwEvent.U_MODE_CYCLE)         # the workaround
