"""Figure 3: flame graphs for the sqlite3 benchmark.

The paper shows four flame graphs: SpacemiT X60 and Intel i5-1135G7, each by
cycles and by instructions retired.  This benchmark regenerates all four
(text to stdout, SVG to ``benchmarks/output/``) and checks the structural
properties the paper reads off them: the interpreter (sqlite3VdbeExec) owns
the widest subtree, and the same hot frames appear on both platforms even
though the sampling mechanisms differ (workaround group on the X60, direct
cycle sampling on x86).

Both platform profiles run through the parallel run executor
(:func:`repro.api.run_many`, ``REPRO_BENCH_WORKERS`` workers, default 2);
results are bit-identical to serial runs, the suite just regenerates the
figures in about half the wall-clock.
"""

import os

import pytest

from repro.api import ProfileSpec, RunRequest, run_many
from repro.flamegraph import build_flame_graph, render_svg, render_text

#: Full synthetic sqlite3 profiles on two platforms (see pytest.ini).
pytestmark = pytest.mark.slow
from repro.flamegraph.render_text import render_summary
from repro.platforms import intel_i5_1135g7, spacemit_x60

BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

PLATFORM_NAMES = ("SpacemiT X60", "Intel Core i5-1135G7")


def _plan(scale, period):
    return [
        RunRequest(platform=name, workload="sqlite3-like",
                   params={"scale": scale},
                   spec=ProfileSpec(sample_period=period, seed=5,
                                    analyses=("flamegraph",)))
        for name in PLATFORM_NAMES
    ]


_MAIN_RUNS = {}


def _main_recordings():
    """Both platforms' figure-3 recordings, computed once via run_many."""
    if not _MAIN_RUNS:
        runs = run_many(_plan(scale=2, period=10_000), workers=BENCH_WORKERS)
        _MAIN_RUNS.update({run.platform: run for run in runs})
    return _MAIN_RUNS


@pytest.mark.parametrize("descriptor,short", [(spacemit_x60(), "x60"),
                                              (intel_i5_1135g7(), "i5")],
                         ids=["x60", "i5-1135G7"])
def test_fig3_flamegraphs(descriptor, short, output_dir):
    # The two-platform plan runs once (in parallel) via run_many; timing it
    # per parametrized test would misattribute the shared cost.
    recording = _main_recordings()[descriptor.name].recording

    for metric in ("samples", "instructions"):
        flame = build_flame_graph(recording.samples, weight=metric)
        label = "cycles" if metric == "samples" else "instructions"
        print()
        print(f"Figure 3: {descriptor.name}, {label}")
        print(render_summary(flame, top=6))
        svg_path = os.path.join(output_dir, f"fig3_{short}_{label}.svg")
        with open(svg_path, "w", encoding="utf-8") as handle:
            handle.write(render_svg(flame, title=f"{descriptor.name} ({label})"))

        # Structural checks: the stack root is main -> speedtest_run -> ... and
        # the VDBE interpreter subtree is the dominant one.
        assert flame.find("main") is not None
        assert flame.find("sqlite3VdbeExec") is not None
        vdbe_share = flame.frame_fraction("sqlite3VdbeExec")
        assert vdbe_share > 0.3, "the interpreter subtree should dominate"
        # Leaf hotspots from Table 2 are present.
        assert flame.find("patternCompare") is not None
        assert flame.find("sqlite3BtreeParseCellPtr") is not None


def test_fig3_cross_platform_and_metric_comparison(output_dir):
    """The comparative reading the paper makes: same shape, different widths."""
    runs = run_many(_plan(scale=1, period=6000), workers=BENCH_WORKERS)
    x60, intel = runs[0].recording, runs[1].recording

    from repro.flamegraph import diff_flame_graphs
    x60_cycles = build_flame_graph(x60.samples, weight="samples")
    intel_cycles = build_flame_graph(intel.samples, weight="samples")
    diffs = {d.function: d for d in diff_flame_graphs(x60_cycles, intel_cycles)}
    # Both profiles contain the same hot leaf functions.
    for function in ("patternCompare", "sqlite3BtreeParseCellPtr"):
        assert function in diffs
        assert diffs[function].fraction_a > 0 and diffs[function].fraction_b > 0

    # Instructions-weighted vs cycles-weighted graphs differ in width for
    # low-IPC functions (the paper's vectorisation-gap argument).
    x60_instructions = build_flame_graph(x60.samples, weight="instructions")
    cycles_share = x60_cycles.frame_fraction("patternCompare")
    instruction_share = x60_instructions.frame_fraction("patternCompare")
    assert instruction_share > 0 and cycles_share > 0
    print(f"patternCompare on X60: {cycles_share*100:.1f}% of cycles vs "
          f"{instruction_share*100:.1f}% of instructions")
