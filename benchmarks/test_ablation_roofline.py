"""Ablations for the compiler-driven roofline flow (Sections 4.3 and 4.4).

* instrumentation overhead and the two-phase mitigation;
* vectorisation on/off (compiler maturity, the paper's explanation for the
  X60 gap);
* tiled vs naive matmul (memory-traffic reduction visible in the IR counts);
* pass ordering: instrumenting *before* the vectoriser (the paper applies its
  pass late; the early placement changes what the vectoriser can do).
"""

import pytest

from repro.api import ProfileSpec, Session
from repro.platforms import intel_i5_1135g7, spacemit_x60
from repro.roofline import RooflineRunner
from repro.workloads import DOT_PRODUCT_SOURCE, dot_args_builder, registry

N_DOT = 2048
N_MATMUL = 16

ROOFLINE_SPEC = ProfileSpec(analyses=("roofline",))


def session_roofline(workload_name, n, spec=ROOFLINE_SPEC):
    run = Session(spacemit_x60()).run(registry.create(workload_name, n=n), spec)
    return run.roofline


def test_instrumentation_overhead_and_two_phase(benchmark):
    """Section 4.4: instrumentation adds overhead; two-phase hides it."""
    runner = RooflineRunner(spacemit_x60())
    result = benchmark.pedantic(
        runner.run_source, args=(DOT_PRODUCT_SOURCE, "dot", dot_args_builder(N_DOT)),
        rounds=1, iterations=1)
    loop = result.loops[0]
    print(f"\nbaseline cycles: {loop.baseline_cycles}, instrumented cycles: "
          f"{loop.instrumented_cycles}, overhead {loop.instrumentation_overhead:.2f}x")
    assert loop.instrumentation_overhead > 1.1
    # The reported GFLOP/s uses baseline time, so it is overhead-free:
    # recomputing throughput with instrumented time must be slower.
    distorted = loop.fp_ops / (loop.instrumented_cycles / 1.6e9) / 1e9
    assert distorted < loop.gflops(1.6e9)


def test_vectorization_ablation(benchmark):
    """Vector codegen moves the kernel up the roofline; counts stay identical."""
    def run_pair():
        on = session_roofline("dot-product", N_DOT)
        off = session_roofline("dot-product", N_DOT,
                               ROOFLINE_SPEC.without_vectorizer())
        return on, off

    vector_on, vector_off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    speedup = vector_on.kernel_gflops / vector_off.kernel_gflops
    print(f"\nvectorised {vector_on.kernel_gflops:.3f} GFLOP/s vs scalar "
          f"{vector_off.kernel_gflops:.3f} GFLOP/s -> {speedup:.1f}x")
    assert speedup > 1.5
    assert vector_on.kernel_arithmetic_intensity == pytest.approx(
        vector_off.kernel_arithmetic_intensity)


def test_tiling_ablation(benchmark):
    """Tiled matmul touches less memory per FLOP than the naive loop at the
    cache level; with IR-level (L1-exposed) counting the AI is identical, but
    the measured DRAM traffic on the machine model differs."""
    def run_pair():
        tiled = session_roofline("matmul-tiled", N_MATMUL)
        naive = session_roofline("matmul-naive", N_MATMUL)
        return tiled, naive

    tiled, naive = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    tiled_fp = sum(l.fp_ops for l in tiled.loops)
    naive_fp = sum(l.fp_ops for l in naive.loops)
    assert tiled_fp == naive_fp == 2 * N_MATMUL ** 3
    print(f"\ntiled:  {tiled.kernel_gflops:.3f} GFLOP/s, AI "
          f"{tiled.kernel_arithmetic_intensity:.3f}")
    print(f"naive:  {naive.kernel_gflops:.3f} GFLOP/s, AI "
          f"{naive.kernel_arithmetic_intensity:.3f}")
    assert tiled.kernel_gflops > 0 and naive.kernel_gflops > 0


def test_pass_ordering_ablation(benchmark):
    """Applying the instrumentation pass early (before the vectoriser) leaves
    counts unchanged but can change performance -- the reason the paper runs
    its pass late in the pipeline."""
    def run_pair():
        late = RooflineRunner(spacemit_x60(), instrument_first=False).run_source(
            DOT_PRODUCT_SOURCE, "dot", dot_args_builder(N_DOT))
        early = RooflineRunner(spacemit_x60(), instrument_first=True).run_source(
            DOT_PRODUCT_SOURCE, "dot", dot_args_builder(N_DOT))
        return late, early

    late, early = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    late_fp = sum(l.fp_ops for l in late.loops)
    early_fp = sum(l.fp_ops for l in early.loops)
    assert late_fp == early_fp
    print(f"\nlate placement: {late.kernel_gflops:.3f} GFLOP/s; "
          f"early placement: {early.kernel_gflops:.3f} GFLOP/s")


def test_ir_counts_vs_pmu_counts(benchmark):
    """Design-choice check: IR-derived FLOP counts equal what the PMU's
    fp-ops event observes on a platform where both exist (the x86 comparator),
    which is the paper's argument that IR counting is a faithful substitute."""
    from repro.compiler.frontend import compile_source
    from repro.compiler.targets import target_for_platform
    from repro.compiler.transforms import build_roofline_pipeline
    from repro.cpu.events import HwEvent
    from repro.platforms import Machine
    from repro.runtime import RooflineRuntime
    from repro.vm import ExecutionEngine, Memory

    descriptor = intel_i5_1135g7()

    def run():
        module = compile_source(DOT_PRODUCT_SOURCE, "dot.c")
        build_roofline_pipeline(vector_width=descriptor.vector.sp_lanes()).run(module)
        machine = Machine(descriptor)
        memory = Memory()
        args = dot_args_builder(N_DOT)(memory)
        runtime = RooflineRuntime(module, machine, instrumented=True)
        engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                                 memory=memory, external_handlers=[runtime])
        engine.run("dot", args)
        return machine, runtime

    machine, runtime = benchmark.pedantic(run, rounds=1, iterations=1)
    ir_flops = sum(r.fp_ops for r in runtime.records)
    pmu_flops = machine.event_totals()[HwEvent.FP_OPS_RETIRED]
    print(f"\nIR-derived FLOPs: {ir_flops}, PMU fp-ops event: {pmu_flops}")
    assert ir_flops == pmu_flops == 2 * N_DOT
