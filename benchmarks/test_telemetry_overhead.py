"""Telemetry overhead guard: spans must stay off the hot paths.

The design contract of :mod:`repro.telemetry` is that observability is
(near) free: while the tracer is disabled a span is one attribute check,
and even *enabled* tracing only touches phase boundaries -- compile,
lower, predecode, execute, analyses -- never the per-op dispatch loop.

This benchmark enforces that contract on the counting-mode matmul-tiled
Session run: enabling full span tracing may not slow the run by more
than ``REPRO_MAX_TELEMETRY_OVERHEAD`` (default 1.05, i.e. 5%; CI pins it
explicitly).  If someone adds a span inside the retirement or cache loop,
this is the lane that fails.  The measured ratio is written to
``benchmarks/output/BENCH_telemetry.json``.

It also cross-checks the stronger property: telemetry must not perturb
modelled state at all -- counters, cycles and event totals are
bit-identical with tracing on and off.
"""

import json
import os
import time

from repro import telemetry
from repro.api import ProfileSpec, Session
from repro.workloads import registry

MATMUL_N = 24

#: Allowed elapsed-time ratio of a traced run over an untraced one.
#: 1.05 (5%) both locally and in the CI telemetry lane, which pins it
#: via the environment so the floor is explicit in the workflow file.
MAX_OVERHEAD = float(os.environ.get("REPRO_MAX_TELEMETRY_OVERHEAD", "1.05"))


def _counting_run(traced: bool):
    session = Session("SpacemiT X60")
    machine = session.machine(True)
    workload = registry.create("matmul-tiled", n=MATMUL_N)
    spec = ProfileSpec().counting()
    if traced:
        telemetry.enable()
    start = time.perf_counter()
    try:
        run = session.run(workload, spec)
    finally:
        if traced:
            telemetry.disable()
    elapsed = time.perf_counter() - start
    roots = telemetry.TRACER.drain() if traced else []
    return run, machine, elapsed, roots


def test_span_tracing_overhead_is_bounded(output_dir):
    """Enabled tracing within MAX_OVERHEAD of untraced; identical results."""
    # One untimed warmup pair fills the shared compile cache and settles
    # allocator/frequency transients, then five interleaved timed rounds.
    # The asserted quantity is the *best paired-round ratio*: scheduler
    # noise only ever inflates one side of a pair, so with a true overhead
    # of O every round's ratio is >= O and at least one round comes in
    # near it -- a real hot-loop span shows up in every round, while a
    # noisy round cannot fail the ceiling on its own.
    _counting_run(False)
    _counting_run(True)
    plain_times, traced_times = [], []
    for _ in range(5):
        plain_run, plain_machine, plain_elapsed, _ = _counting_run(False)
        traced_run, traced_machine, traced_elapsed, roots = \
            _counting_run(True)
        plain_times.append(plain_elapsed)
        traced_times.append(traced_elapsed)
    overhead = min(traced / plain for traced, plain
                   in zip(traced_times, plain_times))
    plain_elapsed = min(plain_times)
    traced_elapsed = min(traced_times)

    # Tracing happened (phase spans exist) ...
    names = {span.name for span in roots}
    assert {"compile", "execute"} <= names or {"run"} <= names
    # ... and perturbed nothing the model computes.
    assert traced_run.stat.counts == plain_run.stat.counts
    assert traced_machine.cycles == plain_machine.cycles
    assert traced_machine.event_totals() == plain_machine.event_totals()

    payload = {
        "benchmark": "counting-mode matmul-tiled Session run "
                     f"(n={MATMUL_N}, SpacemiT X60)",
        "untraced_seconds": round(plain_elapsed, 4),
        "traced_seconds": round(traced_elapsed, 4),
        "overhead_ratio": round(overhead, 4),
        "max_overhead_ratio": MAX_OVERHEAD,
        "spans_recorded": len(names),
    }
    path = os.path.join(output_dir, "BENCH_telemetry.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\ntelemetry: untraced {plain_elapsed:.3f}s; "
          f"traced {traced_elapsed:.3f}s; overhead {overhead:.3f}x "
          f"(ceiling {MAX_OVERHEAD}x)")

    assert overhead < MAX_OVERHEAD, (
        f"span tracing costs {overhead:.3f}x on the counting-mode run "
        f"(allowed: {MAX_OVERHEAD}x) -- a span has likely crept into a "
        "hot loop"
    )
