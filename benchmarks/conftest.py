"""Benchmark harness bootstrap."""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def output_dir():
    """Directory where benchmarks write the figures/tables they regenerate."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR
