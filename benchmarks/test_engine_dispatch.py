"""Microbenchmark: the fast-dispatch engine vs the reference interpreter.

Runs the tiled matmul with full timing/PMU accounting through both dispatch
paths, reports IR instructions/second for each, asserts the predecoded path
actually wins, and cross-checks that both leave the machine in an identical
state.  (The exhaustive bit-level equivalence checks -- sampled runs, sample
streams, multiplexing -- live in ``tests/test_engine_fast_dispatch.py``.)
"""

import os
import time

from repro.compiler.frontend import compile_source
from repro.compiler.targets import target_for_platform
from repro.compiler.transforms import build_roofline_pipeline
from repro.platforms import Machine, spacemit_x60
from repro.runtime import RooflineRuntime
from repro.vm import ExecutionEngine, Memory
from repro.workloads import MATMUL_TILED_SOURCE, matmul_args_builder

MATMUL_N = 16

#: Required fast-vs-reference speedup.  The local default (1.2x) keeps the
#: assertion robust on a loaded host; CI's dispatch-regression lane raises it
#: (REPRO_MIN_DISPATCH_SPEEDUP=1.5) so a fast path that quietly degrades
#: below 1.5x fails the build.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_DISPATCH_SPEEDUP", "1.2"))


def _run(fast_dispatch: bool):
    descriptor = spacemit_x60()
    module = compile_source(MATMUL_TILED_SOURCE, "matmul.c")
    build_roofline_pipeline(vector_width=descriptor.vector.sp_lanes()).run(module)
    machine = Machine(descriptor)
    task = machine.create_task("matmul")
    memory = Memory()
    args = matmul_args_builder(MATMUL_N)(memory)
    runtime = RooflineRuntime(module, machine, instrumented=False)
    engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                             task=task, memory=memory,
                             external_handlers=[runtime],
                             fast_dispatch=fast_dispatch)
    start = time.perf_counter()
    engine.run("matmul_tiled", args)
    elapsed = time.perf_counter() - start
    return engine.stats, machine, elapsed


def test_fast_dispatch_beats_reference_interpreter():
    fast_stats, fast_machine, fast_elapsed = _run(True)
    slow_stats, slow_machine, slow_elapsed = _run(False)

    fast_rate = fast_stats.ir_instructions / fast_elapsed
    slow_rate = slow_stats.ir_instructions / slow_elapsed
    speedup = slow_elapsed / fast_elapsed
    print(f"\nfast dispatch: {fast_rate:,.0f} IR inst/s; "
          f"reference: {slow_rate:,.0f} IR inst/s; speedup {speedup:.1f}x")

    # Same work, same modelled machine state either way.
    assert fast_stats == slow_stats
    assert fast_machine.cycles == slow_machine.cycles
    assert fast_machine.instructions == slow_machine.instructions
    assert fast_machine.event_totals() == slow_machine.event_totals()

    # The margin is normally >4x; see MIN_SPEEDUP for how the floor is set.
    assert speedup > MIN_SPEEDUP, (
        f"fast dispatch only {speedup:.2f}x faster than the reference "
        f"interpreter (required: {MIN_SPEEDUP}x)"
    )


def test_dispatch_rate_fast(benchmark):
    """Track the fast path's absolute throughput via pytest-benchmark."""
    stats, machine, _elapsed = benchmark.pedantic(_run, args=(True,),
                                                  rounds=1, iterations=1)
    assert stats.ir_instructions > 0
    assert machine.cycles > 0
