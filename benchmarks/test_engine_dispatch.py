"""Microbenchmarks: dispatch and retirement fast paths vs their references.

Two comparisons, both on the tiled matmul with full timing/PMU accounting:

* fast dispatch vs the reference interpreter (the PR-1 property);
* block-delta + batched retirement vs per-op retirement -- the path the
  machine falls back to the moment a sampling counter arms.  The measured
  ops/sec of both retirement modes are written to
  ``benchmarks/output/BENCH_retire.json`` to seed the repo's perf
  trajectory.

Each benchmark asserts the fast path actually wins and cross-checks that
both sides leave the machine in an identical state.  (The exhaustive
bit-level equivalence checks -- sampled runs, sample streams, multiplexing
-- live in ``tests/test_engine_fast_dispatch.py`` and
``tests/test_block_delta.py``.)
"""

import json
import os
import time

from repro.api import ProfileSpec, Session
from repro.compiler.frontend import compile_source
from repro.compiler.targets import target_for_platform
from repro.compiler.transforms import build_roofline_pipeline
from repro.platforms import Machine, spacemit_x60
from repro.runtime import RooflineRuntime
from repro.vm import ExecutionEngine, Memory
from repro.workloads import MATMUL_TILED_SOURCE, matmul_args_builder, registry

MATMUL_N = 16

#: Matrix size of the Session-level retirement benchmark (big enough that
#: execution dominates session overhead).
RETIRE_MATMUL_N = 24

#: Required fast-vs-reference speedup.  The local default (1.2x) keeps the
#: assertion robust on a loaded host; CI's dispatch-regression lane raises it
#: (REPRO_MIN_DISPATCH_SPEEDUP=1.5) so a fast path that quietly degrades
#: below 1.5x fails the build.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_DISPATCH_SPEEDUP", "1.2"))

#: Required block-delta-vs-per-op retirement speedup of the counting-mode
#: matmul-tiled Session run: 1.5x everywhere (locally and in the CI
#: perf-regression lane, which pins it explicitly via
#: REPRO_MIN_RETIRE_SPEEDUP), against a measured ~2.2x margin.
MIN_RETIRE_SPEEDUP = float(os.environ.get("REPRO_MIN_RETIRE_SPEEDUP", "1.5"))


def _run(fast_dispatch: bool):
    descriptor = spacemit_x60()
    module = compile_source(MATMUL_TILED_SOURCE, "matmul.c")
    build_roofline_pipeline(vector_width=descriptor.vector.sp_lanes()).run(module)
    machine = Machine(descriptor)
    task = machine.create_task("matmul")
    memory = Memory()
    args = matmul_args_builder(MATMUL_N)(memory)
    runtime = RooflineRuntime(module, machine, instrumented=False)
    engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                             task=task, memory=memory,
                             external_handlers=[runtime],
                             fast_dispatch=fast_dispatch)
    start = time.perf_counter()
    engine.run("matmul_tiled", args)
    elapsed = time.perf_counter() - start
    return engine.stats, machine, elapsed


def test_fast_dispatch_beats_reference_interpreter():
    fast_stats, fast_machine, fast_elapsed = _run(True)
    slow_stats, slow_machine, slow_elapsed = _run(False)

    fast_rate = fast_stats.ir_instructions / fast_elapsed
    slow_rate = slow_stats.ir_instructions / slow_elapsed
    speedup = slow_elapsed / fast_elapsed
    print(f"\nfast dispatch: {fast_rate:,.0f} IR inst/s; "
          f"reference: {slow_rate:,.0f} IR inst/s; speedup {speedup:.1f}x")

    # Same work, same modelled machine state either way.
    assert fast_stats == slow_stats
    assert fast_machine.cycles == slow_machine.cycles
    assert fast_machine.instructions == slow_machine.instructions
    assert fast_machine.event_totals() == slow_machine.event_totals()

    # The margin is normally >4x; see MIN_SPEEDUP for how the floor is set.
    assert speedup > MIN_SPEEDUP, (
        f"fast dispatch only {speedup:.2f}x faster than the reference "
        f"interpreter (required: {MIN_SPEEDUP}x)"
    )


def test_dispatch_rate_fast(benchmark):
    """Track the fast path's absolute throughput via pytest-benchmark."""
    stats, machine, _elapsed = benchmark.pedantic(_run, args=(True,),
                                                  rounds=1, iterations=1)
    assert stats.ir_instructions > 0
    assert machine.cycles > 0


def _session_counting_run(per_op: bool):
    """One counting-mode matmul-tiled Session run; ``per_op`` forces the
    retirement path that runs whenever a sampling counter is armed."""
    session = Session("SpacemiT X60")
    machine = session.machine(True)
    if per_op:
        machine.set_sampling_probe(lambda: True)
    spec = ProfileSpec().counting()
    if per_op:
        spec = spec.without_block_delta().without_fast_cache()
    workload = registry.create("matmul-tiled", n=RETIRE_MATMUL_N)
    start = time.perf_counter()
    run = session.run(workload, spec)
    elapsed = time.perf_counter() - start
    return run, machine, elapsed


def test_block_delta_retirement_beats_per_op(output_dir):
    """Counting-mode Session run: block-delta + batched retirement vs per-op.

    Writes BENCH_retire.json (ops/sec for both modes) and enforces the
    1.5x speedup floor (REPRO_MIN_RETIRE_SPEEDUP; measured margin ~2.2x).
    """
    # Interleave and keep the best of three to shed scheduler noise.
    fast_times, slow_times = [], []
    for _ in range(3):
        fast_run, fast_machine, fast_elapsed = _session_counting_run(False)
        slow_run, slow_machine, slow_elapsed = _session_counting_run(True)
        fast_times.append(fast_elapsed)
        slow_times.append(slow_elapsed)
    fast_elapsed = min(fast_times)
    slow_elapsed = min(slow_times)

    # Same modelled machine state and counters on both retirement paths.
    assert fast_run.stat.counts == slow_run.stat.counts
    assert fast_machine.cycles == slow_machine.cycles
    assert fast_machine.event_totals() == slow_machine.event_totals()

    ops = fast_machine.instructions
    speedup = slow_elapsed / fast_elapsed
    payload = {
        "benchmark": "counting-mode matmul-tiled Session run "
                     f"(n={RETIRE_MATMUL_N}, SpacemiT X60)",
        "machine_ops": ops,
        "per_op_ops_per_sec": round(ops / slow_elapsed),
        "block_delta_ops_per_sec": round(ops / fast_elapsed),
        "per_op_seconds": round(slow_elapsed, 4),
        "block_delta_seconds": round(fast_elapsed, 4),
        "speedup": round(speedup, 3),
    }
    path = os.path.join(output_dir, "BENCH_retire.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nretirement: per-op {payload['per_op_ops_per_sec']:,} ops/s; "
          f"block-delta {payload['block_delta_ops_per_sec']:,} ops/s; "
          f"speedup {speedup:.2f}x (floor {MIN_RETIRE_SPEEDUP}x)")

    assert speedup > MIN_RETIRE_SPEEDUP, (
        f"block-delta retirement only {speedup:.2f}x faster than per-op "
        f"retirement (required: {MIN_RETIRE_SPEEDUP}x)"
    )
