"""Service latency benchmark: warm cache-hit serving vs a cold CLI process.

The whole point of profiling-as-a-service is that a repeated request should
not pay a fresh interpreter start, imports, machine construction, compiles
or the run itself.  This benchmark measures exactly that end to end:

* **cold** -- one ``python -m repro stat --json`` subprocess, the way a
  script would shell out to the profiler (process start + imports + run);
* **warm** -- the same request against a running daemon whose result cache
  already holds it (HTTP round trip + cache lookup), best of several tries.

The measured speedup lands in ``benchmarks/output/BENCH_serve.json`` and
must clear ``REPRO_MIN_SERVE_SPEEDUP`` (default 5x; the observed margin is
orders of magnitude -- milliseconds vs seconds -- so the floor only trips
if warm serving fundamentally regresses).
"""

import json
import os
import subprocess
import sys
import time

from repro.service.client import ServiceClient
from repro.service.daemon import BackgroundServer, ServiceConfig

#: The profiled request, identical on both sides.
PLATFORM = "SpacemiT X60"
WORKLOAD = "memset"

#: Required cold-process / warm-cache-hit latency ratio.
MIN_SERVE_SPEEDUP = float(os.environ.get("REPRO_MIN_SERVE_SPEEDUP", "5"))

#: Warm round trips to sample (best-of, to shed scheduler noise).
WARM_TRIES = 10


def _cold_cli_seconds() -> float:
    """One full ``repro stat --json`` subprocess, timed end to end."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro", "stat",
            "--workload", WORKLOAD, "-p", PLATFORM, "--json"]
    start = time.perf_counter()
    result = subprocess.run(argv, capture_output=True, text=True, env=env,
                            timeout=600)
    elapsed = time.perf_counter() - start
    assert result.returncode == 0, result.stderr
    return elapsed


def test_warm_serving_beats_cold_process_start(output_dir):
    config = ServiceConfig(port=0, workers=0, warm_kernels=False)
    with BackgroundServer(config) as background:
        client = ServiceClient(background.address)
        request = {"platform": PLATFORM, "workload": WORKLOAD,
                   "spec": {"analyses": ["stat"]}}
        fill = client.run(request, with_meta=True)        # fill the cache
        assert fill.cache == "miss"

        warm_times = []
        for _ in range(WARM_TRIES):
            start = time.perf_counter()
            reply = client.run(request, with_meta=True)
            warm_times.append(time.perf_counter() - start)
            assert reply.cache == "hit"
        warm_seconds = min(warm_times)

        cold_seconds = _cold_cli_seconds()

    speedup = cold_seconds / warm_seconds
    payload = {
        "benchmark": f"repro stat {WORKLOAD} on {PLATFORM}: cold CLI "
                     "subprocess vs warm cache-hit over HTTP",
        "cold_cli_seconds": round(cold_seconds, 4),
        "warm_hit_seconds": round(warm_seconds, 6),
        "warm_tries": WARM_TRIES,
        "speedup": round(speedup, 1),
    }
    path = os.path.join(output_dir, "BENCH_serve.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nserve: cold {cold_seconds:.2f}s; warm hit "
          f"{warm_seconds * 1000:.2f}ms; speedup {speedup:.0f}x "
          f"(floor {MIN_SERVE_SPEEDUP}x)")

    assert speedup > MIN_SERVE_SPEEDUP, (
        f"warm cache-hit serving only {speedup:.2f}x faster than a cold "
        f"CLI process (required: {MIN_SERVE_SPEEDUP}x)"
    )
