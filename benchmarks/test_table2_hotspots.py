"""Table 2: top-3 hotspots of the sqlite3 benchmark on the X60 and the i5-1135G7.

The paper reports, per platform: each hotspot's share of total time, its
instruction count and its IPC.  The synthetic sqlite3-shaped workload is
profiled with miniperf on both platform models and the same table is printed.

Shape checks (the reproduction criterion, not absolute numbers):

* the same three functions dominate both profiles;
* the x86 comparator's per-function IPC is several times the X60's
  (paper: 3.38 vs 0.86 overall, a ~3.9x gap);
* the x86 build retires more instructions for the same work (paper: ~1.85x).
"""

import os

import pytest

from repro.api import ProfileSpec, RunRequest, run_many

#: Full synthetic sqlite3 profiles on two platforms: the heaviest tests in
#: the suite (see pytest.ini for the fast lane).  Both platforms profile in
#: parallel through the run executor (REPRO_BENCH_WORKERS workers).
pytestmark = pytest.mark.slow
from repro.platforms import intel_i5_1135g7, spacemit_x60
from repro.workloads.sqlite3_like import SQLITE3_HOT_FUNCTIONS

BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

PLATFORM_NAMES = ("SpacemiT X60", "Intel Core i5-1135G7")

PAPER_TABLE_2 = {
    "SpacemiT X60": {
        "sqlite3VdbeExec": {"total": 18.44, "instructions": 3_634_478_335, "ipc": 0.86},
        "patternCompare": {"total": 11.63, "instructions": 2_298_438_217, "ipc": 0.86},
        "sqlite3BtreeParseCellPtr": {"total": 10.17, "instructions": 1_905_893_304, "ipc": 0.82},
    },
    "Intel Core i5-1135G7": {
        "sqlite3VdbeExec": {"total": 19.58, "instructions": 6_737_784_530, "ipc": 3.38},
        "patternCompare": {"total": 18.60, "instructions": 5_857_213_374, "ipc": 3.09},
        "sqlite3BtreeParseCellPtr": {"total": 6.42, "instructions": 2_113_027_184, "ipc": 3.24},
    },
}


_RUNS = {}


def _profiles():
    """Both platforms' Table-2 profiles, computed once via run_many."""
    if not _RUNS:
        plan = [
            RunRequest(platform=name, workload="sqlite3-like",
                       params={"scale": 2},
                       spec=ProfileSpec(sample_period=10_000, seed=3,
                                        analyses=("hotspots",)))
            for name in PLATFORM_NAMES
        ]
        _RUNS.update({run.platform: run
                      for run in run_many(plan, workers=BENCH_WORKERS)})
    return _RUNS


def profile_platform(descriptor):
    run = _profiles()[descriptor.name]
    return run.platform, run.recording, run.hotspots


@pytest.mark.parametrize("descriptor", [spacemit_x60(), intel_i5_1135g7()],
                         ids=["x60", "i5-1135G7"])
def test_table2_hotspots(descriptor):
    # Both platforms profile once (in parallel) via run_many; timing the
    # cached accessor per test would misattribute the shared cost.
    platform, recording, report = profile_platform(descriptor)

    print()
    print(f"Table 2 ({platform}): paper values vs reproduced")
    print(f"{'Function':<28} {'paper %':>8} {'repro %':>8} {'paper IPC':>10} {'repro IPC':>10}")
    paper = PAPER_TABLE_2[platform]
    for function in SQLITE3_HOT_FUNCTIONS:
        row = report.row_for(function)
        assert row is not None, f"{function} missing from the profile"
        print(f"{function:<28} {paper[function]['total']:>7.2f}% "
              f"{row.total_percent:>7.2f}% {paper[function]['ipc']:>10.2f} "
              f"{row.ipc:>10.2f}")
    print(f"overall IPC: {recording.overall_ipc:.2f} "
          f"(paper ~{paper['sqlite3VdbeExec']['ipc']})")

    # Shape checks.
    top_functions = {row.function for row in report.top(6)}
    assert set(SQLITE3_HOT_FUNCTIONS) <= top_functions
    for function in SQLITE3_HOT_FUNCTIONS:
        assert report.row_for(function).total_percent > 4.0


def test_table2_cross_platform_shape():
    (_x60_name, x60_recording, x60_report) = profile_platform(spacemit_x60())
    (_intel_name, intel_recording, intel_report) = profile_platform(
        intel_i5_1135g7())

    x60_ipc = x60_recording.overall_ipc
    intel_ipc = intel_recording.overall_ipc
    ratio = intel_ipc / x60_ipc
    print()
    print(f"IPC gap: X60 {x60_ipc:.2f} vs i5 {intel_ipc:.2f} -> {ratio:.1f}x "
          f"(paper: 0.86 vs 3.38 -> 3.9x)")
    # The microarchitectural efficiency gap must be large and in the right
    # direction, comparable to the paper's ~4x.
    assert ratio > 2.0

    # x86 executes more instructions for the same workload (paper: ~1.85x).
    x60_instructions = x60_recording.final_counts["instructions"]
    intel_instructions = intel_recording.final_counts["instructions"]
    instruction_ratio = intel_instructions / x60_instructions
    print(f"instruction ratio (x86/riscv): {instruction_ratio:.2f} (paper ~1.85)")
    assert 1.4 < instruction_ratio < 2.4
