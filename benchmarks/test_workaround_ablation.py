"""Ablation of the Section 3.3 PMU sampling workaround.

Three configurations on the SpacemiT X60 model:

1. the standard perf flow (sample cycles directly) -- must fail with
   ``EOPNOTSUPP``, as on the real part;
2. miniperf's group-leader workaround -- must deliver samples carrying both
   cycles and instructions (IPC per sample);
3. a stock kernel without the vendor driver -- the vendor leader event does
   not exist, so even the workaround cannot be applied (the paper's point
   about the X60 having no upstream support).

Also checks the cpuid-vs-event-discovery design choice: identification works
on every modelled CPU without opening a single perf event.
"""

import pytest

from repro.cpu.events import HwEvent
from repro.isa.machine_ops import MachineOp, OpClass
from repro.kernel import PerfEventAttr, PerfEventOpenError, ReadFormat, SampleType
from repro.miniperf import Miniperf, identify_machine
from repro.platforms import Machine, all_platforms, spacemit_x60
from repro.workloads.sqlite3_like import sqlite3_like_workload
from repro.workloads.synthetic import TraceExecutor


def run_ops(machine, task, count=30_000):
    for i in range(count):
        machine.execute(MachineOp(OpClass.INT_ALU, pc=0x1000 + (i % 64) * 4), task)


def test_naive_sampling_fails_with_eopnotsupp(benchmark):
    machine = Machine(spacemit_x60())
    task = machine.create_task("naive")

    def attempt():
        try:
            machine.perf.perf_event_open(
                PerfEventAttr(event=HwEvent.CYCLES, sample_period=10_000), task)
            return None
        except PerfEventOpenError as error:
            return error.errno_name

    errno_name = benchmark(attempt)
    print(f"\nstandard perf sampling on the X60: failed with {errno_name}")
    assert errno_name == "EOPNOTSUPP"


@pytest.mark.slow
def test_workaround_delivers_ipc_samples(benchmark):
    def run():
        machine = Machine(spacemit_x60())
        tool = Miniperf(machine)
        task = machine.create_task("sqlite")
        executor = TraceExecutor(machine, task, seed=11)
        return tool.record(lambda: executor.run(sqlite3_like_workload()),
                           task=task, sample_period=15_000)

    recording = benchmark.pedantic(run, rounds=1, iterations=1)
    assert recording.plan.used_workaround
    assert recording.sample_count > 10
    with_ipc = [s for s in recording.samples
                if s.group_values.get("cycles") and s.group_values.get("instructions")]
    assert len(with_ipc) == len(recording.samples)
    print(f"\nworkaround sampling: {recording.sample_count} samples, "
          f"every one carries cycles+instructions (overall IPC "
          f"{recording.overall_ipc:.2f})")


def test_workaround_impossible_without_vendor_driver():
    machine = Machine(spacemit_x60(), vendor_driver=False)
    task = machine.create_task("stock-kernel")
    with pytest.raises(PerfEventOpenError):
        machine.perf.perf_event_open(
            PerfEventAttr(
                event=HwEvent.U_MODE_CYCLE, sample_period=10_000,
                sample_type=frozenset({SampleType.READ}),
                read_format=frozenset({ReadFormat.GROUP}),
            ),
            task,
        )


def test_counting_mode_still_works_without_vendor_driver():
    machine = Machine(spacemit_x60(), vendor_driver=False)
    task = machine.create_task("stock-kernel")
    fd = machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.INSTRUCTIONS), task)
    machine.perf.enable(fd)
    run_ops(machine, task, 5000)
    machine.perf.disable(fd)
    assert machine.perf.read(fd).value == 5000


def test_cpuid_identification_needs_no_perf_events(benchmark):
    def identify_all():
        return [identify_machine(Machine(d)) for d in all_platforms()]

    infos = benchmark.pedantic(identify_all, rounds=1, iterations=1)
    assert len(infos) == 4
    assert sum(1 for info in infos if info.needs_group_leader_workaround) == 1
    print("\ncpuid-based identification:")
    for info in infos:
        print(f"  {info.core:<24} workaround="
              f"{'yes' if info.needs_group_leader_workaround else 'no'}")


@pytest.mark.slow
def test_sampling_period_sensitivity():
    """Smaller periods give more samples (until ring-buffer loss kicks in)."""
    counts = {}
    for period in (50_000, 20_000, 8_000):
        machine = Machine(spacemit_x60())
        tool = Miniperf(machine)
        task = machine.create_task("sweep")
        executor = TraceExecutor(machine, task, seed=13)
        recording = tool.record(lambda: executor.run(sqlite3_like_workload()),
                                task=task, sample_period=period)
        counts[period] = recording.sample_count
    print(f"\nsamples by period: {counts}")
    assert counts[8_000] > counts[20_000] > counts[50_000]
