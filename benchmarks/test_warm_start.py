"""Warm-start benchmark: disk-cache-served compiles vs cold compiles.

The persistent artifact store exists so that daemon restarts, ``run_many``
fleets and repeated CLI invocations skip compilation entirely.  This
benchmark measures that claim directly over every registry kernel:

* **cold** -- ``compile_source_cached`` with the disk cache disabled and
  the in-process memo cleared: the full frontend + optimization pipeline +
  target certification per kernel;
* **warm** -- the same call against a filled disk store with the memo
  cleared: envelope read + integrity check + unpickle.

The per-kernel speedup must clear ``REPRO_MIN_WARM_SPEEDUP`` (default 3x)
in aggregate, and the warm path must actually be disk-served (asserted via
``cache_stats``).  A two-pass sweep trajectory -- first run fills, second
run serves every cell -- lands in ``benchmarks/output/BENCH_sweep.json``.
"""

import json
import os
import time

from repro.api.sweep import build_plan, sweep
from repro.cache.store import DiskCache
from repro.compiler import cache as compile_cache
from repro.platforms import platform_by_name
from repro.workloads import registry

PLATFORM = "SpacemiT X60"

#: Required aggregate cold-compile / warm-load time ratio.
MIN_WARM_SPEEDUP = float(os.environ.get("REPRO_MIN_WARM_SPEEDUP", "3"))

#: Compile repetitions per kernel (best-of, to shed scheduler noise).
TRIES = 3


def _kernel_plan():
    plan = []
    for name in sorted(registry):
        workload = registry.create(name)
        source = getattr(workload, "source", None)
        filename = getattr(workload, "filename", None)
        if isinstance(source, str) and isinstance(filename, str):
            plan.append((name, source, filename))
    return plan


def _best_compile_seconds(source, filename, descriptor):
    best = None
    for _ in range(TRIES):
        compile_cache.clear_memory_cache()
        start = time.perf_counter()
        compile_cache.compile_source_cached(source, filename, descriptor,
                                            True)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_disk_cache_warm_start_speedup(output_dir, tmp_path, monkeypatch):
    descriptor = platform_by_name(PLATFORM)
    kernels = _kernel_plan()
    assert kernels, "no kernel workloads registered"

    # Cold: no disk store anywhere in the path.
    monkeypatch.setenv("REPRO_DISK_CACHE", "off")
    cold = {name: _best_compile_seconds(source, filename, descriptor)
            for name, source, filename in kernels}

    # Fill a fresh store, then time disk-served loads with a cold memo.
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm-store"))
    compile_cache.clear_memory_cache()
    for _name, source, filename in kernels:
        compile_cache.compile_source_cached(source, filename, descriptor,
                                            True)
    compile_cache.reset_stats()
    warm = {name: _best_compile_seconds(source, filename, descriptor)
            for name, source, filename in kernels}
    stats = compile_cache.cache_stats()
    assert stats["disk_hits"] == stats["misses"] == len(kernels) * TRIES, (
        "warm timings must be disk-served", stats)

    cold_total = sum(cold.values())
    warm_total = sum(warm.values())
    speedup = cold_total / warm_total

    # The sweep trajectory artifact: pass one fills, pass two serves.
    plan = build_plan([PLATFORM], [name for name, _s, _f in kernels])
    sweep(plan, workers=0, store=DiskCache(str(tmp_path / "sweep-store")))
    start = time.perf_counter()
    second = sweep(plan, workers=0,
                   store=DiskCache(str(tmp_path / "sweep-store")))
    sweep_elapsed = time.perf_counter() - start
    assert second.all_from_cache, second.counts()
    doc = second.write_trajectory(
        os.path.join(output_dir, "BENCH_sweep.json"),
        elapsed_seconds=sweep_elapsed)
    assert doc["totals"]["executed"] == 0

    payload = {
        "benchmark": f"compile_source_cached on {PLATFORM}: cold pipeline "
                     "vs disk-cache-served load, per registry kernel",
        "kernels": {name: {"cold_seconds": round(cold[name], 6),
                           "warm_seconds": round(warm[name], 6),
                           "speedup": round(cold[name] / warm[name], 1)}
                    for name, _s, _f in kernels},
        "cold_total_seconds": round(cold_total, 6),
        "warm_total_seconds": round(warm_total, 6),
        "tries": TRIES,
        "speedup": round(speedup, 1),
    }
    path = os.path.join(output_dir, "BENCH_warm_start.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwarm start: cold {cold_total * 1000:.1f}ms; warm "
          f"{warm_total * 1000:.1f}ms; speedup {speedup:.1f}x "
          f"(floor {MIN_WARM_SPEEDUP}x)")

    assert speedup > MIN_WARM_SPEEDUP, (
        f"disk-cache warm start only {speedup:.2f}x faster than cold "
        f"compiles (required: {MIN_WARM_SPEEDUP}x)"
    )
