"""Figure 4: roofline models for the tiled matmul kernel.

The paper shows the kernel on an Intel i5-1135G7 roofline (miniperf reports
34.06 GFLOP/s vs Intel Advisor's 47.72 and the benchmark's self-reported
33.0) and on the SpacemiT X60 roofline (1.58 GFLOP/s against theoretical
roofs of 25.6 GFLOP/s compute and ~4.7 GB/s DRAM bandwidth).

Reproduction criteria (shape, not absolute numbers):

* the X60 roofs computed by our model match the paper's arithmetic exactly
  (25.6 GFLOP/s and 3.16 B/cyc x 1.6 GHz);
* on both platforms the kernel lands *well below* the attainable roof, with
  far more headroom on the X60 than on x86 (the paper's central observation);
* the x86 comparator achieves a much higher absolute GFLOP/s than the X60;
* miniperf's IR-derived FLOP count equals the analytic 2*n^3 exactly, the
  property that lets the self-reported and miniperf numbers agree in the
  paper.
"""

import os

import pytest

from repro.api import ProfileSpec, RunRequest, run_many
from repro.platforms import intel_i5_1135g7, spacemit_x60
from repro.roofline import (
    render_ascii_roofline,
    render_svg_roofline,
    theoretical_roofs,
)
from repro.workloads.kernels import analytic_matmul_counts

#: Matrix dimension for the benchmark runs (kept modest so the IR interpreter
#: finishes in seconds; override with MINIPERF_MATMUL_N for larger runs).
MATMUL_N = int(os.environ.get("MINIPERF_MATMUL_N", "24"))

PAPER_FIG4 = {
    "Intel Core i5-1135G7": {"miniperf_gflops": 34.06, "advisor_gflops": 47.72,
                             "self_reported_gflops": 33.0},
    "SpacemiT X60": {"miniperf_gflops": 1.58, "peak_gflops": 25.6,
                     "dram_gbps": 4.7},
}


BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

_ROOFLINES = {}


def _rooflines():
    """Both platforms' matmul rooflines, computed once via run_many."""
    if not _ROOFLINES:
        plan = [
            RunRequest(platform=name, workload="matmul-tiled",
                       params={"n": MATMUL_N},
                       spec=ProfileSpec(analyses=("roofline",)))
            for name in ("SpacemiT X60", "Intel Core i5-1135G7")
        ]
        _ROOFLINES.update({run.platform: run.roofline
                           for run in run_many(plan, workers=BENCH_WORKERS)})
    return _ROOFLINES


def run_roofline(descriptor, n=MATMUL_N):
    if n == MATMUL_N:
        return _rooflines()[descriptor.name]
    run = run_many([RunRequest(platform=descriptor.name,
                               workload="matmul-tiled", params={"n": n},
                               spec=ProfileSpec(analyses=("roofline",)))])[0]
    return run.roofline


def test_fig4_x60_roofs_match_paper_arithmetic():
    roofs = theoretical_roofs(spacemit_x60())
    # 2 IPC x 8 SP lanes x 1.6 GHz.
    assert roofs.peak_gflops == pytest.approx(25.6)
    # 3.16 bytes/cycle x 1.6 GHz = 5.06 GB/s; the paper quotes "roughly 4.7".
    assert roofs.dram_bandwidth == pytest.approx(5.056, rel=1e-3)
    print()
    print(roofs.describe())


@pytest.mark.parametrize("descriptor,short", [(spacemit_x60(), "x60"),
                                              (intel_i5_1135g7(), "i5")],
                         ids=["x60", "i5-1135G7"])
def test_fig4_roofline(descriptor, short, output_dir):
    # Both platforms' rooflines compute once (in parallel) via run_many;
    # timing the cached accessor per test would misattribute the shared cost.
    result = run_roofline(descriptor)
    model = result.model()
    model.add_point(result.point_for_kernel())

    print()
    print(render_ascii_roofline(model))
    paper = PAPER_FIG4[descriptor.name]
    print(f"paper miniperf figure for this platform: "
          f"{paper['miniperf_gflops']} GFLOP/s; reproduced: "
          f"{result.kernel_gflops:.2f} GFLOP/s at AI "
          f"{result.kernel_arithmetic_intensity:.3f}")
    svg_path = os.path.join(output_dir, f"fig4_{short}_roofline.svg")
    with open(svg_path, "w", encoding="utf-8") as handle:
        handle.write(render_svg_roofline(model, title=f"{descriptor.name} roofline"))

    # IR-derived FLOP counts are exact.
    total_fp = sum(loop.fp_ops for loop in result.loops)
    assert total_fp == analytic_matmul_counts(MATMUL_N)["fp_ops"]

    # The kernel must sit below the attainable roof with substantial headroom
    # (the paper's X60 point is ~16x below the compute roof).
    kernel_point = result.point_for_kernel()
    attainable = model.attainable(kernel_point.arithmetic_intensity)
    assert kernel_point.gflops < attainable
    headroom = attainable / max(kernel_point.gflops, 1e-9)
    compute_headroom = model.roofs.peak_gflops / max(kernel_point.gflops, 1e-9)
    print(f"headroom below attainable roof: {headroom:.1f}x; "
          f"below the compute roof: {compute_headroom:.1f}x")
    if descriptor.name == "SpacemiT X60":
        # The paper's central X60 observation: the kernel sits far below the
        # 25.6 GFLOP/s compute roof (1.58 GFLOP/s, ~16x).  At this kernel's
        # low arithmetic intensity it is memory-bound, so the attainable roof
        # is much closer; require a large gap to the compute roof and any gap
        # to the attainable one.
        assert compute_headroom > 5.0, "the X60 point should be far below its compute roof"
    assert result.kernel_gflops > 0


@pytest.mark.slow
def test_fig4_cross_platform_shape():
    x60, intel = run_roofline(spacemit_x60()), run_roofline(intel_i5_1135g7())
    print()
    print(f"matmul: X60 {x60.kernel_gflops:.2f} GFLOP/s vs "
          f"i5 {intel.kernel_gflops:.2f} GFLOP/s "
          f"(paper: 1.58 vs 34.06)")
    # The x86 comparator is much faster in absolute terms...
    assert intel.kernel_gflops > 3 * x60.kernel_gflops
    # ...and both report the same arithmetic intensity (same IR, same counts).
    assert x60.kernel_arithmetic_intensity == pytest.approx(
        intel.kernel_arithmetic_intensity, rel=1e-6)
    # Instrumentation overhead exists on both but the two-phase flow keeps the
    # reported time from the baseline run (Section 4.4 mitigation).
    for result in (x60, intel):
        for loop in result.loops:
            assert loop.instrumentation_overhead >= 1.0
