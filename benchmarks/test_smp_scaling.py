"""SMP scaling benchmark: aggregate throughput and shared-LLC contention.

Weak-scaling STREAM triad (``stream-triad-mt``) on the SpacemiT X60 model:
every software thread streams its own ~192 KiB slice (three 16 Ki-element
float arrays at a thread-private address range) for three passes.  One
thread's slice fits the 512 KiB shared L2, so a single hart hits in the LLC
from pass two onward; four harts put ~768 KiB of live slices behind the same
LLC and evict each other continuously while also queueing on the contended
memory controller.

Two assertions pin down the SMP model's behaviour:

* aggregate retired-instruction throughput (total instructions per wall
  cycle) at 4 harts is > 1.5x the 1-hart run (it measures ~3.5-4x: the
  per-element instruction stream is identical, only memory time stretches);
* the shared-LLC contention is visible in the per-hart ``cache-misses``
  counters: every hart of the 4-hart run misses the LLC far more often per
  instruction than the lone hart does.
"""

import os
import time

from repro.api import ProfileSpec, Session
from repro.cpu.events import HwEvent
from repro.platforms import spacemit_x60
from repro.smp import MultiHartMachine, smp_stat
from repro.workloads import registry

EVENTS = (HwEvent.CYCLES, HwEvent.INSTRUCTIONS,
          HwEvent.CACHE_REFERENCES, HwEvent.CACHE_MISSES)
SLICE_ELEMENTS = 16 * 1024    # 3 arrays x 64 KiB = 192 KiB per thread


def _run(cpus: int):
    spec = ProfileSpec()
    workload = registry.create("stream-triad-mt", n=SLICE_ELEMENTS)
    machine = MultiHartMachine(spacemit_x60(), cpus=cpus)
    stat = smp_stat(machine, workload.threads(cpus, spec), events=EVENTS)
    return machine, stat


def test_four_harts_scale_throughput_with_visible_llc_contention():
    machine_1, stat_1 = _run(1)
    machine_4, stat_4 = _run(4)

    throughput_1 = machine_1.total_instructions / machine_1.wall_cycles
    throughput_4 = machine_4.total_instructions / machine_4.wall_cycles
    scaling = throughput_4 / throughput_1

    def misses_per_kinst(stat, cpu):
        instructions = stat.count_on(cpu, HwEvent.INSTRUCTIONS)
        return 1000.0 * stat.count_on(cpu, HwEvent.CACHE_MISSES) / instructions

    solo_miss_rate = misses_per_kinst(stat_1, 0)
    contended_miss_rates = [misses_per_kinst(stat_4, cpu) for cpu in range(4)]

    print("\nSMP weak scaling, stream-triad-mt on SpacemiT X60 "
          f"({SLICE_ELEMENTS} elements/thread, 3 passes):")
    print(f"  1 hart : {machine_1.total_instructions:>9,} inst in "
          f"{machine_1.wall_cycles:>9,} wall cycles -> "
          f"{throughput_1:.3f} inst/cycle; "
          f"LLC misses/kinst cpu0 = {solo_miss_rate:.1f}")
    print(f"  4 harts: {machine_4.total_instructions:>9,} inst in "
          f"{machine_4.wall_cycles:>9,} wall cycles -> "
          f"{throughput_4:.3f} inst/cycle; LLC misses/kinst per hart = "
          + ", ".join(f"{rate:.1f}" for rate in contended_miss_rates))
    print(f"  aggregate throughput scaling: {scaling:.2f}x; DRAM accesses "
          f"contended: {machine_4.memory_system.controller.contended_accesses:,}")

    # Acceptance: >1.5x aggregate retired-instruction throughput at 4 harts.
    assert scaling > 1.5, f"aggregate throughput only scaled {scaling:.2f}x"

    # Shared-LLC contention shows up in every hart's cache-miss counter:
    # slices that fit the LLC alone no longer do when four harts share it.
    for cpu, rate in enumerate(contended_miss_rates):
        assert rate > 2.0 * solo_miss_rate, (
            f"cpu{cpu}: {rate:.1f} LLC misses/kinst vs {solo_miss_rate:.1f} "
            "solo -- contention not visible"
        )

    # And the memory controller actually saw interleaved demand.
    assert machine_4.memory_system.controller.contended_accesses > 0


def test_fast_dispatch_smp_run_is_at_least_twice_as_fast():
    """The tentpole number: a 4-hart ``matmul-parallel`` counting-mode
    Session run through the fast-dispatch engine vs. the reference
    interpreter.  Same modelled machine state either way (the differential
    suite proves bit-identity sample by sample); only wall-clock time may
    differ, and it must differ by >= 2x (normally ~3.5-4x).
    """
    minimum = float(os.environ.get("REPRO_MIN_SMP_DISPATCH_SPEEDUP", "2.0"))
    workload = registry.create("matmul-parallel", n=32)
    spec = ProfileSpec(cpus=4).counting()

    def run(fast_dispatch: bool):
        session = Session(spacemit_x60())
        start = time.perf_counter()
        run_ = session.run(workload, spec.replace(fast_dispatch=fast_dispatch))
        elapsed = time.perf_counter() - start
        payload = run_.to_dict()
        payload.pop("spec")          # names the engine; everything else equal
        payload.pop("timings", None)  # wall-clock phases: the point of the test
        return payload, elapsed

    fast_payload, fast_elapsed = run(True)
    slow_payload, slow_elapsed = run(False)
    speedup = slow_elapsed / fast_elapsed
    print(f"\nmatmul-parallel n=32, 4 harts, counting mode: "
          f"interpreter {slow_elapsed:.2f}s -> fast dispatch "
          f"{fast_elapsed:.2f}s ({speedup:.2f}x)")

    assert fast_payload == slow_payload
    assert speedup > minimum, (
        f"fast-dispatch SMP run only {speedup:.2f}x faster than the "
        f"interpreter (required: {minimum}x)"
    )


def test_strong_scaling_matmul_parallel_cuts_wall_time():
    """Fixed-size matmul sharded across harts finishes in ~1/cpus the time."""
    spec = ProfileSpec()
    workload = registry.create("matmul-parallel", n=24)

    machine_1 = MultiHartMachine(spacemit_x60(), cpus=1)
    smp_stat(machine_1, workload.threads(1, spec), events=EVENTS)
    machine_4 = MultiHartMachine(spacemit_x60(), cpus=4)
    smp_stat(machine_4, workload.threads(4, spec), events=EVENTS)

    speedup = machine_1.wall_cycles / machine_4.wall_cycles
    print(f"\nmatmul-parallel n=24 strong scaling: wall cycles "
          f"{machine_1.wall_cycles:,} -> {machine_4.wall_cycles:,} "
          f"({speedup:.2f}x)")
    assert speedup > 1.5
    # Same total work either way (row shards partition the matrix).
    assert abs(machine_4.total_instructions - machine_1.total_instructions) \
        <= 0.01 * machine_1.total_instructions
