"""repro: reproduction of "Dissecting RISC-V Performance" (PACT 2025).

The package rebuilds, in Python, every layer the paper's methodology touches:
the RISC-V privileged architecture and PMU hardware (with vendor quirks), the
OpenSBI firmware and Linux ``perf_event`` software stack, an LLVM-like
compiler with the Roofline instrumentation pass, an execution engine that
runs compiled kernels on cycle-approximate platform models, and the
``miniperf`` tool plus flame-graph and roofline reporting on top.

Quick start::

    from repro.platforms import spacemit_x60
    from repro.toolchain import AnalysisWorkflow
    from repro.workloads import sqlite3_like_workload

    workflow = AnalysisWorkflow(spacemit_x60())
    report = workflow.profile_synthetic(sqlite3_like_workload())
    print(report.hotspots.format())
"""

__version__ = "1.0.0"

from repro.platforms import (
    Machine,
    all_platforms,
    intel_i5_1135g7,
    platform_by_name,
    sifive_u74,
    spacemit_x60,
    thead_c910,
)
from repro.miniperf import Miniperf
from repro.toolchain import AnalysisWorkflow

__all__ = [
    "__version__",
    "Machine",
    "Miniperf",
    "AnalysisWorkflow",
    "all_platforms",
    "platform_by_name",
    "spacemit_x60",
    "sifive_u74",
    "thead_c910",
    "intel_i5_1135g7",
]
