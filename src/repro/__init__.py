"""repro: reproduction of "Dissecting RISC-V Performance" (PACT 2025).

The package rebuilds, in Python, every layer the paper's methodology touches:
the RISC-V privileged architecture and PMU hardware (with vendor quirks), the
OpenSBI firmware and Linux ``perf_event`` software stack, an LLVM-like
compiler with the Roofline instrumentation pass, an execution engine that
runs compiled kernels on cycle-approximate platform models, and the
``miniperf`` tool plus flame-graph and roofline reporting on top.

Quick start::

    from repro.api import ProfileSpec, Session
    from repro.workloads import registry

    session = Session("SpacemiT X60")
    run = session.run(registry["sqlite3-like"], ProfileSpec())
    print(run.hotspots.format())
"""

__version__ = "1.2.0"

from repro.platforms import (
    Machine,
    all_platforms,
    intel_i5_1135g7,
    platform_by_name,
    sifive_u74,
    spacemit_x60,
    thead_c910,
)
from repro.miniperf import Miniperf
from repro.api import Comparison, ProfileSpec, Run, Session
from repro.smp import MultiHartMachine
from repro.toolchain import AnalysisWorkflow

__all__ = [
    "__version__",
    "Machine",
    "MultiHartMachine",
    "Miniperf",
    "Session",
    "ProfileSpec",
    "Run",
    "Comparison",
    "AnalysisWorkflow",
    "all_platforms",
    "platform_by_name",
    "spacemit_x60",
    "sifive_u74",
    "thead_c910",
    "intel_i5_1135g7",
]
