"""A determinism linter for the repo's own source (stdlib ``ast`` only).

Every number this repo produces is supposed to be bit-reproducible across
processes, platforms and Python versions; the rules here encode the ways
that property has actually been lost (or nearly lost) before:

* ``no-hash`` / ``no-id`` -- ``hash()`` is salted per process (PEP 456) and
  ``id()`` is an object address; either one feeding an output, a sample, a
  cache key or an ordering silently breaks cross-process determinism.
* ``unordered-iter`` -- iterating a ``set`` (literal, comprehension or
  ``set()`` call) without ``sorted()`` yields a process-dependent order.
* ``wall-clock`` -- ``time.time()``/``perf_counter()``/``datetime.now()``
  inside the modelled machine would make cycle counts timing-dependent.
* ``unseeded-random`` -- module-level ``random.*`` functions (or an
  argument-less ``random.Random()``) draw from ambient interpreter state;
  simulation code must thread an explicitly seeded ``random.Random(seed)``.

Suppression is inline, per line, and must carry a justification::

    t0 = perf_counter()  # repro-lint: allow[wall-clock] -- diagnostic only

A suppression without the ``-- reason`` trailer is itself reported
(``lint-suppression``), so allowlisting stays auditable.  Unknown rule
names in an ``allow[...]`` are reported too -- a typo would otherwise
silently suppress nothing while looking intentional.

The linter is purely syntactic and intentionally dumb: it flags *sites*,
not data flow.  The sites where the pattern is deliberate (an identity-keyed
per-process cache that never escapes, the one wall-clock phase-timing field
goldens strip) carry suppressions with their justification, which doubles
as documentation of why the use is safe.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

#: Every rule the linter can emit.
RULES = (
    "no-hash",
    "no-id",
    "unordered-iter",
    "wall-clock",
    "unseeded-random",
    "lint-suppression",
)

#: Dotted call targets that read ambient wall-clock state.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: Module-level ``random`` functions that draw from the ambient generator.
UNSEEDED_RANDOM_CALLS = frozenset({
    "random.random", "random.randrange", "random.randint",
    "random.choice", "random.choices", "random.shuffle",
    "random.uniform", "random.sample", "random.gauss",
    "random.betavariate", "random.expovariate", "random.triangular",
})

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[([^\]]*)\]\s*(--\s*(\S.*))?"
)


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and a human-readable message."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "column": self.column,
                "rule": self.rule, "message": self.message}


@dataclass(frozen=True)
class _Suppression:
    rules: frozenset
    has_reason: bool
    raw_rules: tuple


def _parse_suppressions(source: str) -> Dict[int, _Suppression]:
    """Line number -> the suppression declared on that physical line."""
    out: Dict[int, _Suppression] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        raw = tuple(part.strip() for part in match.group(1).split(",")
                    if part.strip())
        out[number] = _Suppression(
            rules=frozenset(raw),
            has_reason=match.group(3) is not None,
            raw_rules=raw,
        )
    return out


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.violations: List[Violation] = []
        #: local alias -> canonical dotted name ("t" -> "time",
        #: "perf_counter" -> "time.perf_counter").
        self.aliases: Dict[str, str] = {}

    # -- helpers ------------------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(Violation(
            path=self.path, line=node.lineno, column=node.col_offset + 1,
            rule=rule, message=message,
        ))

    def _dotted(self, node: ast.expr) -> Optional[str]:
        """The canonical dotted name a call target resolves to, if any."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))

    # -- imports ------------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- calls --------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "hash" and func.id not in self.aliases:
                self._report(node, "no-hash",
                             "hash() is salted per process; its value must "
                             "not feed simulation state or rendered output")
            elif func.id == "id" and func.id not in self.aliases:
                self._report(node, "no-id",
                             "id() is an object address, different on every "
                             "run; do not let it feed simulation state or "
                             "rendered output")
        dotted = self._dotted(func)
        if dotted is not None:
            if dotted in WALL_CLOCK_CALLS:
                self._report(node, "wall-clock",
                             f"{dotted}() reads the wall clock; modelled "
                             "time must come from the machine, not the host")
            elif dotted in UNSEEDED_RANDOM_CALLS:
                self._report(node, "unseeded-random",
                             f"{dotted}() draws from the ambient generator; "
                             "use an explicitly seeded random.Random(seed)")
            elif dotted == "random.Random" and not node.args and not node.keywords:
                self._report(node, "unseeded-random",
                             "random.Random() without a seed draws from "
                             "ambient entropy; pass an explicit seed")
        self.generic_visit(node)

    # -- set iteration ------------------------------------------------------------

    def _check_iterable(self, node: ast.expr) -> None:
        if isinstance(node, (ast.Set, ast.SetComp)):
            self._report(node, "unordered-iter",
                         "iterating a set yields a process-dependent order; "
                         "wrap it in sorted(...)")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset") \
                and node.func.id not in self.aliases:
            self._report(node, "unordered-iter",
                         f"iterating a {node.func.id}() yields a process-"
                         "dependent order; wrap it in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one Python source text; returns surviving violations."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Violation(path=path, line=error.lineno or 1,
                          column=(error.offset or 1), rule="lint-suppression",
                          message=f"could not parse: {error.msg}")]
    linter = _Linter(path)
    linter.visit(tree)
    suppressions = _parse_suppressions(source)
    survivors: List[Violation] = []
    for violation in linter.violations:
        suppression = suppressions.get(violation.line)
        if suppression is not None and violation.rule in suppression.rules:
            if not suppression.has_reason:
                survivors.append(Violation(
                    path=path, line=violation.line, column=violation.column,
                    rule="lint-suppression",
                    message=("suppression is missing its justification "
                             "(expected '-- reason' after allow[...])"),
                ))
            continue
        survivors.append(violation)
    for line, suppression in sorted(suppressions.items()):
        unknown = [rule for rule in suppression.raw_rules if rule not in RULES]
        if unknown:
            survivors.append(Violation(
                path=path, line=line, column=1, rule="lint-suppression",
                message=f"unknown rule(s) in allow[...]: {', '.join(unknown)}",
            ))
    survivors.sort(key=lambda v: (v.line, v.column, v.rule))
    return survivors


def lint_file(path: str) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path


def default_lint_root() -> str:
    """The repo's own package directory (what bare ``repro lint`` checks)."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def lint_paths(paths: Sequence[str]) -> List[Violation]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations
