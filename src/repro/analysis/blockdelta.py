"""Static block-delta certification.

The execution engine's fast path retires whole basic blocks as one
precomputed :class:`~repro.cpu.core.BlockDelta` when every op the block
retires has a cost that is constant in the core configuration
(``ExecutionEngine._classify_block_delta``).  That eligibility test is a
*static* property of the lowered block -- nothing about it depends on run
state -- so this module proves it at compile time and attaches the verdict
to the IR, turning the runtime classifier into a cross-check.

``certify_module`` walks every defined function and records, per target
lowering configuration, a :class:`BlockVerdict` for each block in
``function.metadata[STATIC_DELTA_KEY]``.  The engine compares its runtime
decision against the stored verdict on every block it decodes and raises on
divergence (see ``vm/engine.py``), and the differential test suite asserts
agreement across all registry workloads x platforms.

The classifier mirrors the engine rule for rule, with one deliberate
difference: it lowers through the *uncached* ``target.lower(...)`` with a
neutral pc.  ``target.lower_cached`` memoizes per ``(taken, vector_width)``
with the pc baked into the cached ops, so certifying through it would
poison the engine's pc-bearing templates (branch predictor indexing is
derived from op pc).  Eligibility only depends on op class and count, never
on pc, so the uncached neutral-pc lowering decides identically.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.ir.instructions import (
    Branch,
    Call,
    Instruction,
    Jump,
    Phi,
    Ret,
)
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.targets.base import TargetLowering
from repro.compiler.transforms.vectorize import VECTOR_WIDTH_KEY

#: Function metadata key holding ``{target_key: {block_name: BlockVerdict}}``.
STATIC_DELTA_KEY = "mperf.static_block_delta"


@dataclass(frozen=True)
class BlockVerdict:
    """The static eligibility verdict for one basic block."""

    eligible: bool
    reason: str  # 'pure' | 'no-terminator' | 'conditional-branch' | 'call'
    #              | 'vector' | 'memory' | 'empty'


def target_key(target: TargetLowering) -> str:
    """The verdict-map key for one lowering configuration.

    March alone is not enough: two rv64gcv platforms with different VLEN
    have different ``vector_sp_lanes`` and can classify a vector-annotated
    block differently.
    """
    return f"{target.march}/v{target.vector_sp_lanes}"


def _effective_vector_width(inst: Instruction, target: TargetLowering) -> int:
    """Mirror of ``ExecutionEngine._effective_vector_width``."""
    annotated = inst.metadata.get(VECTOR_WIDTH_KEY, 0)
    if annotated and target.supports_vector:
        width = min(int(annotated), target.vector_sp_lanes)
        if width > 1:
            return width
    return 0


def split_block(block: BasicBlock):
    """The (body, terminator) pair as the engine's decoder sees the block.

    Phis are skipped (they lower to nothing; their accounting rides on the
    predecessor edge), and decoding stops at the first terminator --
    instructions after an early ``ret`` are dead and never retire.
    """
    body: List[Instruction] = []
    terminator: Optional[Instruction] = None
    for inst in block.instructions:
        if isinstance(inst, Phi):
            continue
        if isinstance(inst, (Branch, Jump, Ret)):
            terminator = inst
            break
        body.append(inst)
    return body, terminator


def classify_block(block: BasicBlock, target: TargetLowering) -> BlockVerdict:
    """Statically decide block-delta eligibility for one block.

    Rule-for-rule mirror of ``ExecutionEngine._classify_block_delta`` minus
    the run-state gates (machine present, ``block_delta`` enabled) that are
    properties of the run, not of the block.
    """
    body, terminator = split_block(block)
    if terminator is None:
        return BlockVerdict(False, "no-terminator")
    if isinstance(terminator, Branch):
        return BlockVerdict(False, "conditional-branch")
    ops = 0
    for inst in body:
        if isinstance(inst, Call):
            return BlockVerdict(False, "call")
        if _effective_vector_width(inst, target):
            return BlockVerdict(False, "vector")
        lowered = target.lower(inst, address=None, taken=False, pc=0)
        if any(op.is_memory for op in lowered):
            return BlockVerdict(False, "memory")
        ops += len(lowered)
    if _effective_vector_width(terminator, target):
        return BlockVerdict(False, "vector")
    ops += len(target.lower(terminator, address=None, taken=True, pc=0))
    if ops == 0:
        return BlockVerdict(False, "empty")
    return BlockVerdict(True, "pure")


def certify_function(function: Function,
                     target: TargetLowering) -> Dict[str, BlockVerdict]:
    """Classify every block of *function* and store the verdicts.

    Verdicts live under ``function.metadata[STATIC_DELTA_KEY]``, keyed by
    :func:`target_key` then block name.  Re-certifying for the same target
    overwrites (the module is immutable after the pipeline, so verdicts are
    stable anyway).
    """
    verdicts = {block.name: classify_block(block, target)
                for block in function.blocks}
    per_target = function.metadata.setdefault(STATIC_DELTA_KEY, {})
    per_target[target_key(target)] = verdicts
    return verdicts


def certify_module(module: Module, target: TargetLowering) -> None:
    """Attach static block-delta verdicts to every defined function."""
    for function in module.defined_functions():
        certify_function(function, target)


def certify_module_cached(module: Module, target: TargetLowering,
                          module_digest: Optional[str] = None,
                          store=None) -> None:
    """Certify *module*, serving the verdict maps from the disk store.

    Verdicts are a pure function of (module content, target lowering), so
    they are content-addressed by the module's digest (the compile cache's
    :func:`~repro.compiler.cache.module_cache_key`) plus :func:`target_key`.
    A stored map that fails to load, has an unexpected shape, or does not
    cover exactly this module's functions and blocks is ignored and the
    verdicts are recomputed -- the classifier is the source of truth; the
    store only skips re-deriving it.  Without a store (or a digest) this is
    plain :func:`certify_module`.
    """
    if store is None:
        from repro.cache.store import default_store
        store = default_store()
    if store is None or module_digest is None:
        certify_module(module, target)
        return
    from repro.cache.keys import cache_key
    key = cache_key("verdicts", {"module": module_digest,
                                 "target": target_key(target)})
    payload = store.get("verdicts", key)
    if payload is not None and _install_verdicts(module, target, payload):
        return
    certify_module(module, target)
    shipped = {function.name: verdicts_for(function, target)
               for function in module.defined_functions()}
    store.put("verdicts", key, pickle.dumps(shipped, protocol=4))


def _install_verdicts(module: Module, target: TargetLowering,
                      payload: bytes) -> bool:
    """Attach a shipped verdict map if it exactly covers *module*."""
    try:
        shipped = pickle.loads(payload)
    except Exception:
        return False
    if not isinstance(shipped, dict):
        return False
    functions = list(module.defined_functions())
    for function in functions:
        verdict_map = shipped.get(function.name)
        if not isinstance(verdict_map, dict):
            return False
        if set(verdict_map) != {block.name for block in function.blocks}:
            return False
        if not all(isinstance(verdict, BlockVerdict)
                   for verdict in verdict_map.values()):
            return False
    for function in functions:
        per_target = function.metadata.setdefault(STATIC_DELTA_KEY, {})
        per_target[target_key(target)] = dict(shipped[function.name])
    return True


def is_certified(module: Module, target: TargetLowering) -> bool:
    """Whether every defined function already carries verdicts for *target*."""
    return all(verdicts_for(function, target) is not None
               for function in module.defined_functions())


def verdicts_for(function: Function,
                 target: TargetLowering) -> Optional[Dict[str, BlockVerdict]]:
    """The stored verdict map for *function* under *target*, if certified."""
    per_target = function.metadata.get(STATIC_DELTA_KEY)
    if not isinstance(per_target, dict):
        return None
    return per_target.get(target_key(target))
