"""Address-range / alias analysis over the compiler IR.

An interval abstract interpretation built on the dataflow framework
(:mod:`repro.analysis.dataflow`): integer values are tracked as
``[lo, hi]`` intervals (``None`` = unbounded), pointer values as a *root*
allocation (a pointer :class:`~repro.compiler.ir.values.Argument` or an
``alloca``) plus a byte-offset interval.  Branch guards refine induction
variables per CFG edge (``i < n`` bounds ``i`` on the loop-body edge), so
the canonical KernelC loop shapes -- ``for (i = 0; i < n; i++)`` and the
tiled ``i += 32`` variants -- resolve to exact bounds once loop trip counts
are concrete.

The result bounds every (non register-promoted) load and store to a
``base + [lo, hi)`` byte region per root, with the access-granularity
stride.  When the caller supplies the concrete call arguments (as the
workload args builders produce them), pointer roots gain absolute base
addresses and the per-root regions become absolute address ranges -- which
is what the static race detector (:mod:`repro.analysis.races`) intersects
across threads.

Everything here is *semantic* (scalar) footprint: one access per executed
load/store, sized by the accessed type.  Vector retirement artifacts (a
grouped vector op retiring ``size * lanes`` bytes at the group-closing
address) are a property of the lowering, not of the program, and are
deliberately not modelled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dataflow import DataflowAnalysis, pointer_root, solve
from repro.compiler.analysis.cfg import (
    predecessors,
    reachable_blocks,
    reverse_postorder,
)
from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function
from repro.compiler.ir.types import IntType, PointerType
from repro.compiler.ir.values import Argument, Constant, Value

#: Lowering metadata key marking loads/stores elided by scalar promotion.
REG_PROMOTED_KEY = "mperf.reg_promoted"


# -- interval lattice ------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``None`` bounds are infinite."""

    lo: Optional[int]
    hi: Optional[int]

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_singleton(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def contains(self, other: "Interval") -> bool:
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)


def singleton(value: int) -> Interval:
    return Interval(value, value)


def _add_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def interval_add(a: Interval, b: Interval) -> Interval:
    return Interval(_add_bound(a.lo, b.lo), _add_bound(a.hi, b.hi))


def interval_neg(a: Interval) -> Interval:
    return Interval(None if a.hi is None else -a.hi,
                    None if a.lo is None else -a.lo)


def interval_sub(a: Interval, b: Interval) -> Interval:
    return interval_add(a, interval_neg(b))


def interval_mul(a: Interval, b: Interval) -> Interval:
    if a == singleton(0) or b == singleton(0):
        return singleton(0)
    if not a.is_bounded or not b.is_bounded:
        # A one-sided product needs sign reasoning to stay closed; the loop
        # shapes we care about have bounded operands by the time they multiply.
        return TOP
    corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return Interval(min(corners), max(corners))


def interval_shl(a: Interval, b: Interval) -> Interval:
    if not b.is_singleton or b.lo < 0 or b.lo > 62:
        return TOP
    return interval_mul(a, singleton(1 << b.lo))


def interval_join(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return Interval(lo, hi)


def interval_meet(a: Interval, b: Interval) -> Optional[Interval]:
    """Intersection; ``None`` when empty (the refining edge is dead)."""
    lo = a.lo if b.lo is None else (b.lo if a.lo is None else max(a.lo, b.lo))
    hi = a.hi if b.hi is None else (b.hi if a.hi is None else min(a.hi, b.hi))
    if lo is not None and hi is not None and lo > hi:
        return None
    return Interval(lo, hi)


def interval_widen(old: Interval, new: Interval) -> Interval:
    """Classic interval widening: unstable bounds jump to infinity."""
    lo = old.lo if (old.lo is not None and new.lo is not None
                    and new.lo >= old.lo) else None
    hi = old.hi if (old.hi is not None and new.hi is not None
                    and new.hi <= old.hi) else None
    return Interval(lo, hi)


@dataclass(frozen=True)
class PointerValue:
    """A pointer abstracted as *root* allocation + byte-offset interval."""

    root: Value
    offset: Interval

    def __str__(self) -> str:
        name = self.root.name or "<anon>"
        return f"&{name}{self.offset}"


@dataclass(frozen=True)
class _SlotContent:
    """State key for the *contents* of a non-escaping scalar stack slot.

    The KernelC frontend keeps every local (including the incoming copy of
    each parameter) in an ``alloca`` slot, reloading it at each use; without
    forwarding stored values through those slots nothing resolves.  The slot
    instruction itself keys its *address* in the analysis state, so contents
    get this wrapper as their own key.
    """

    slot: Value


def _loop_stored_slots(function: Function,
                       slots: frozenset) -> Dict[BasicBlock, frozenset]:
    """Per loop head, the scalar slots stored inside any loop it heads.

    Loop heads are targets of back edges (edges whose source the head
    dominates); the loop body is the natural loop of each back edge.  This
    is the selective-widening map: at a loop head only the slots the loop
    itself modifies need widening -- loop-invariant contents (the outer
    induction variable seen from an inner loop) keep their joined value, so
    a transiently-growing outer bound is not smeared to infinity by an
    inner head it never changes in.
    """
    order = reverse_postorder(function)
    preds = predecessors(function)
    entry = function.entry_block
    blocks = set(order)
    dom: Dict[BasicBlock, set] = {entry: {entry}}
    for block in order:
        if block is not entry:
            dom[block] = set(blocks)
    changed = True
    while changed:
        changed = False
        for block in order:
            if block is entry:
                continue
            incoming = [dom[p] for p in preds.get(block, []) if p in dom]
            new = set.intersection(*incoming) if incoming else set()
            new.add(block)
            if new != dom[block]:
                dom[block] = new
                changed = True
    stored: Dict[BasicBlock, set] = {}
    for tail in order:
        for head in tail.successors():
            if head not in blocks or head not in dom.get(tail, ()):
                continue
            # Natural loop of the back edge tail -> head.
            body = {head, tail}
            stack = [tail]
            while stack:
                node = stack.pop()
                for pred in preds.get(node, []):
                    if pred in blocks and pred not in body:
                        body.add(pred)
                        stack.append(pred)
            bucket = stored.setdefault(head, set())
            for block in body:
                for inst in block.instructions:
                    if isinstance(inst, Store) and inst.pointer in slots:
                        bucket.add(inst.pointer)
    return {head: frozenset(bucket) for head, bucket in stored.items()}


def scalar_slots(function: Function) -> frozenset:
    """The allocas of *function* used only as direct load/store addresses.

    Such a slot behaves exactly like an SSA variable routed through memory:
    its address never escapes (never stored, never offset by a GEP, never
    passed to a call), so the value loaded from it is always the value most
    recently stored on the path -- which is what makes store-to-load
    forwarding through it sound.
    """
    allocas = [inst for block in function.blocks
               for inst in block.instructions if isinstance(inst, Alloca)]
    escaped = set()
    for block in function.blocks:
        for inst in block.instructions:
            for operand in inst.operands:
                if not isinstance(operand, Alloca):
                    continue
                if isinstance(inst, Load) and inst.pointer is operand:
                    continue
                if (isinstance(inst, Store) and inst.pointer is operand
                        and inst.value is not operand):
                    continue
                escaped.add(operand)
    return frozenset(a for a in allocas if a not in escaped)


# -- the analysis ----------------------------------------------------------------------


class AddressRangeAnalysis(DataflowAnalysis):
    """Forward interval analysis binding every SSA value to an abstract value.

    The state is a dict ``Value -> Interval | PointerValue``; a missing
    entry means *unknown* (top).  Pointer arguments are rooted at
    themselves, integer arguments take their concrete value when the caller
    provides bindings.
    """

    direction = "forward"

    def __init__(self, function: Function,
                 argument_values: Optional[Sequence[object]] = None):
        self.function = function
        self.slots = scalar_slots(function)
        self._loop_stores = _loop_stored_slots(function, self.slots)
        self._entry: Dict[Value, object] = {}
        values = list(argument_values) if argument_values is not None else None
        for index, arg in enumerate(function.args):
            if isinstance(arg.type, PointerType):
                self._entry[arg] = PointerValue(arg, singleton(0))
            elif isinstance(arg.type, IntType):
                if values is not None and index < len(values):
                    try:
                        self._entry[arg] = singleton(int(values[index]))
                    except (TypeError, ValueError):
                        pass
            # float args carry no address information

    def boundary(self, function: Function) -> Dict[Value, object]:
        return dict(self._entry)

    def join(self, states: List[Dict[Value, object]]) -> Dict[Value, object]:
        merged: Dict[Value, object] = {}
        first = states[0]
        for value, abstract in first.items():
            joined = abstract
            for other in states[1:]:
                other_abstract = other.get(value)
                joined = _join_abstract(joined, other_abstract)
                if joined is None:
                    break
            if joined is not None:
                merged[value] = joined
        return merged

    def transfer(self, block: BasicBlock,
                 in_state: Dict[Value, object]) -> Dict[Value, object]:
        state = dict(in_state)
        for inst in block.instructions:
            _transfer_instruction(inst, state, self.slots)
        return state

    def edge(self, block: BasicBlock, successor: BasicBlock,
             out_state: Dict[Value, object]):
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            return out_state
        condition = terminator.condition
        if not isinstance(condition, CompareOp) or condition.opcode != "icmp":
            return out_state
        taken = successor is terminator.then_block
        # A br with identical arms constrains nothing on either edge.
        if terminator.then_block is terminator.else_block:
            return out_state
        refined = _refine_on_compare(out_state, condition, taken)
        if refined is None or refined is out_state:
            return refined
        # A guard on a value freshly loaded from a scalar slot also bounds
        # the slot's *contents* on this edge (`i < n` on `%ld = load i.addr`
        # bounds i.addr itself), provided nothing stored to the slot between
        # the load and the branch -- that forwarding is what lets the next
        # reload of the induction variable see the loop bound.
        for operand in (condition.lhs, condition.rhs):
            if (isinstance(operand, Load) and operand.pointer in self.slots
                    and operand.parent is block
                    and not _stored_between(block, operand, operand.pointer)):
                new_abstract = refined.get(operand)
                if isinstance(new_abstract, Interval):
                    refined[_SlotContent(operand.pointer)] = new_abstract
        return refined

    def widen(self, old_state: Dict[Value, object],
              new_state: Dict[Value, object],
              block: Optional[BasicBlock] = None) -> Dict[Value, object]:
        if block is not None and block not in self._loop_stores:
            # Not a loop head: the block's input stabilizes once the heads
            # cutting its cycles do; widening here would only lose bounds.
            return new_state
        loop_slots = (None if block is None
                      else self._loop_stores.get(block, frozenset()))
        widened: Dict[Value, object] = {}
        for value, new_abstract in new_state.items():
            if (loop_slots is not None and isinstance(value, _SlotContent)
                    and value.slot not in loop_slots):
                # Loop-invariant slot: its joined value converges with the
                # region that actually stores it.
                widened[value] = new_abstract
                continue
            old_abstract = old_state.get(value)
            if old_abstract is None:
                widened[value] = new_abstract
            elif isinstance(old_abstract, Interval) and isinstance(new_abstract, Interval):
                widened[value] = interval_widen(old_abstract, new_abstract)
            elif (isinstance(old_abstract, PointerValue)
                  and isinstance(new_abstract, PointerValue)
                  and old_abstract.root is new_abstract.root):
                widened[value] = PointerValue(
                    new_abstract.root,
                    interval_widen(old_abstract.offset, new_abstract.offset))
            else:
                widened[value] = new_abstract
        return widened


def _join_abstract(a: object, b: object) -> Optional[object]:
    if a is None or b is None:
        return None
    if isinstance(a, Interval) and isinstance(b, Interval):
        return interval_join(a, b)
    if (isinstance(a, PointerValue) and isinstance(b, PointerValue)
            and a.root is b.root):
        return PointerValue(a.root, interval_join(a.offset, b.offset))
    return None


def _stored_between(block: BasicBlock, load: Load, slot: Value) -> bool:
    """Whether *slot* is stored to after *load* within *block*."""
    seen_load = False
    for inst in block.instructions:
        if inst is load:
            seen_load = True
        elif seen_load and isinstance(inst, Store) and inst.pointer is slot:
            return True
    return False


def _transfer_instruction(inst: Instruction, state: Dict[Value, object],
                          slots: frozenset) -> None:
    """Apply one instruction's effect to *state* in place."""
    if isinstance(inst, Store):
        if inst.pointer in slots:
            content = _lookup(inst.value, state)
            key = _SlotContent(inst.pointer)
            if content is None:
                state.pop(key, None)
            else:
                state[key] = content
        return
    abstract = _evaluate(inst, state, slots)
    if abstract is None:
        state.pop(inst, None)
    else:
        state[inst] = abstract


def _evaluate(inst: Instruction, state: Dict[Value, object],
              slots: frozenset = frozenset()) -> Optional[object]:
    if isinstance(inst, Alloca):
        return PointerValue(inst, singleton(0))
    if isinstance(inst, Load):
        if inst.pointer in slots:
            return state.get(_SlotContent(inst.pointer))
        return None
    if isinstance(inst, GetElementPtr):
        base = _lookup(inst.base, state)
        if not isinstance(base, PointerValue):
            return None
        index = _lookup_interval(inst.index, state)
        offset = interval_mul(index, singleton(inst.element_bytes))
        return PointerValue(base.root, interval_add(base.offset, offset))
    if isinstance(inst, BinaryOp) and isinstance(inst.type, IntType):
        lhs = _lookup_interval(inst.lhs, state)
        rhs = _lookup_interval(inst.rhs, state)
        if inst.opcode == "add":
            return interval_add(lhs, rhs)
        if inst.opcode == "sub":
            return interval_sub(lhs, rhs)
        if inst.opcode == "mul":
            return interval_mul(lhs, rhs)
        if inst.opcode == "shl":
            return interval_shl(lhs, rhs)
        return None
    if isinstance(inst, Cast):
        if inst.opcode in ("bitcast", "inttoptr", "ptrtoint"):
            inner = _lookup(inst.value, state)
            return inner if isinstance(inner, PointerValue) else None
        if inst.opcode in ("sext", "zext", "trunc"):
            inner = _lookup_interval(inst.value, state)
            if inner.is_top:
                return None
            if inst.opcode == "zext" and (inner.lo is None or inner.lo < 0):
                return None
            if isinstance(inst.type, IntType):
                if (inst.opcode == "trunc"
                        and not Interval(inst.type.min_value,
                                         inst.type.max_value).contains(inner)):
                    return None
            return inner
        return None
    if isinstance(inst, Phi):
        joined: Optional[object] = None
        first = True
        for value, _pred in inst.incoming:
            abstract = _lookup(value, state)
            if first:
                joined = abstract
                first = False
            else:
                joined = _join_abstract(joined, abstract)
            if joined is None:
                return None
        return joined
    if isinstance(inst, Select):
        true_abstract = _lookup(inst.true_value, state)
        false_abstract = _lookup(inst.false_value, state)
        return _join_abstract(true_abstract, false_abstract)
    # Loads (values through memory), calls, compares, float math: untracked.
    return None


def _lookup(value: Value, state: Dict[Value, object]) -> Optional[object]:
    if isinstance(value, Constant) and isinstance(value.type, IntType):
        return singleton(int(value.value))
    return state.get(value)


def _lookup_interval(value: Value, state: Dict[Value, object]) -> Interval:
    abstract = _lookup(value, state)
    return abstract if isinstance(abstract, Interval) else TOP


#: icmp predicate -> (bound on lhs implied when the predicate holds,
#: given the rhs interval).  Signed predicates only; unsigned variants
#: refine identically once both sides are known non-negative.
def _refine_on_compare(state: Dict[Value, object], condition: CompareOp,
                       taken: bool) -> Optional[Dict[Value, object]]:
    predicate = condition.predicate
    if not taken:
        predicate = _NEGATED[predicate]
    lhs, rhs = condition.lhs, condition.rhs
    lhs_interval = _lookup_interval(lhs, state)
    rhs_interval = _lookup_interval(rhs, state)
    if predicate in ("ult", "ule", "ugt", "uge"):
        nonneg = Interval(0, None)
        if not (nonneg.contains(lhs_interval) and nonneg.contains(rhs_interval)):
            return state
        predicate = "s" + predicate[1:]
    refined = dict(state)
    new_lhs = _apply_bound(lhs_interval, predicate, rhs_interval)
    if new_lhs is None:
        return None
    if new_lhs != lhs_interval and not isinstance(lhs, Constant):
        refined[lhs] = new_lhs
    new_rhs = _apply_bound(rhs_interval, _SWAPPED[predicate], lhs_interval)
    if new_rhs is None:
        return None
    if new_rhs != rhs_interval and not isinstance(rhs, Constant):
        refined[rhs] = new_rhs
    return refined


_NEGATED = {
    "eq": "ne", "ne": "eq",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
}
_SWAPPED = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
}


def _apply_bound(value: Interval, predicate: str,
                 bound: Interval) -> Optional[Interval]:
    if predicate == "eq":
        return interval_meet(value, bound)
    if predicate == "ne":
        return value  # a hole in the middle is not representable
    if predicate == "slt":
        limit = None if bound.hi is None else bound.hi - 1
        return interval_meet(value, Interval(None, limit))
    if predicate == "sle":
        return interval_meet(value, Interval(None, bound.hi))
    if predicate == "sgt":
        limit = None if bound.lo is None else bound.lo + 1
        return interval_meet(value, Interval(limit, None))
    if predicate == "sge":
        return interval_meet(value, Interval(bound.lo, None))
    return value


# -- access collection -----------------------------------------------------------------


@dataclass(frozen=True)
class Access:
    """One static load/store site with its resolved byte-offset region."""

    instruction: Instruction
    root: Optional[Value]
    offset: Interval
    size_bytes: int
    is_store: bool

    @property
    def bounded(self) -> bool:
        return self.root is not None and self.offset.is_bounded


@dataclass
class Region:
    """The aggregate byte region a function touches under one root."""

    name: str
    root: Value
    lo: Optional[int] = None          # smallest byte offset touched
    hi: Optional[int] = None          # one past the largest byte touched
    stride: int = 0                   # gcd of access sizes (granularity)
    reads: int = 0                    # load sites
    writes: int = 0                   # store sites
    bounded: bool = True
    base: Optional[int] = None        # absolute base address when known

    @property
    def is_private(self) -> bool:
        """Alloca-rooted regions live on the per-thread stack."""
        return isinstance(self.root, Alloca)

    @property
    def extent_bytes(self) -> Optional[int]:
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo

    def absolute(self) -> Optional[Tuple[int, int]]:
        """The absolute half-open address range, when fully resolved."""
        if self.base is None or not self.bounded or self.lo is None:
            return None
        return (self.base + self.lo, self.base + self.hi)


@dataclass
class RangeResult:
    """Output of :func:`analyze_address_ranges` for one function."""

    function: Function
    accesses: List[Access] = field(default_factory=list)
    regions: Dict[Value, Region] = field(default_factory=dict)
    unresolved: List[Access] = field(default_factory=list)

    @property
    def fully_bounded(self) -> bool:
        return not self.unresolved and all(r.bounded for r in self.regions.values())

    def sorted_regions(self) -> List[Region]:
        # Argument index breaks ties between identically named roots; allocas
        # sort after arguments (index -1 would sort first, hence the guard).
        return sorted(self.regions.values(),
                      key=lambda r: (r.name, getattr(r.root, "index", 1 << 30)))


def analyze_address_ranges(function: Function,
                           argument_values: Optional[Sequence[object]] = None,
                           ) -> RangeResult:
    """Bound every load/store of *function* to a base+offset byte region.

    *argument_values* are the concrete call arguments (addresses for pointer
    parameters, trip counts for integers) as the workload args builders
    produce them; when given, pointer regions carry absolute base addresses.
    """
    result = RangeResult(function)
    if function.is_declaration:
        return result
    analysis = AddressRangeAnalysis(function, argument_values)
    slots = analysis.slots
    fixpoint = solve(function, analysis)
    bases: Dict[Value, int] = {}
    if argument_values is not None:
        for index, arg in enumerate(function.args):
            if isinstance(arg.type, PointerType) and index < len(argument_values):
                try:
                    bases[arg] = int(argument_values[index])
                except (TypeError, ValueError):
                    pass
    for block in function.blocks:
        if block not in fixpoint.in_states:
            if block in reachable_blocks(function):
                # Reachable but never solved (shouldn't happen); stay sound.
                state: Dict[Value, object] = {}
            else:
                continue
        else:
            state = dict(fixpoint.in_states[block])
        for inst in block.instructions:
            if isinstance(inst, (Load, Store)) and not inst.metadata.get(REG_PROMOTED_KEY):
                pointer = inst.pointer
                abstract = _lookup(pointer, state)
                size = inst.stored_bytes if isinstance(inst, Store) else inst.loaded_bytes
                if isinstance(abstract, PointerValue):
                    access = Access(inst, abstract.root, abstract.offset, size,
                                    isinstance(inst, Store))
                else:
                    root = pointer_root(pointer)
                    access = Access(inst, root, TOP, size, isinstance(inst, Store))
                result.accesses.append(access)
            _transfer_instruction(inst, state, slots)
    for access in result.accesses:
        if access.root is None:
            result.unresolved.append(access)
            continue
        region = result.regions.get(access.root)
        if region is None:
            name = access.root.name or access.root.__class__.__name__.lower()
            region = Region(name=name, root=access.root,
                            base=bases.get(access.root))
            result.regions[access.root] = region
        if access.is_store:
            region.writes += 1
        else:
            region.reads += 1
        region.stride = math.gcd(region.stride, access.size_bytes)
        if not access.offset.is_bounded:
            region.bounded = False
            result.unresolved.append(access)
            continue
        end = access.offset.hi + access.size_bytes
        region.lo = access.offset.lo if region.lo is None else min(region.lo,
                                                                   access.offset.lo)
        region.hi = end if region.hi is None else max(region.hi, end)
    return result
