"""Static race certification for parallel workloads, with dynamic validation.

A :class:`~repro.workloads.parallel.ParallelWorkload` shards itself into
thread bodies; whether those shards race is decided today by construction
(address-space strides, row sharding).  This module proves it: a workload
that implements ``shard_plans(cpus, spec)`` describes each thread as either

* a :class:`KernelShardPlan` -- a KernelC source plus the *concrete* call
  arguments the thread body would pass (the plans reproduce the thread
  bodies' own deterministic allocation, so the addresses are exact), or
* a :class:`TraceShardPlan` -- a synthetic trace replay with a known
  ``[base, base + extent)`` address envelope (the
  :class:`~repro.workloads.synthetic.TraceExecutor` allocation rule).

For kernel shards the address-range analysis (:mod:`repro.analysis.ranges`)
bounds every access to an absolute byte region per pointer argument; trace
shards contribute their envelope as one read/write region.  Pairwise
interval intersection across threads then yields a verdict:

* ``disjoint`` -- no two threads touch a common heap byte;
* ``shared``  -- overlaps exist but all of them are read/read (the
  matmul-parallel B matrix: constructively shared, race-free);
* ``racy``    -- some overlap involves a write;
* ``unknown`` -- an access could not be bounded, so no proof either way.

Shards are compiled and analysed with the vectoriser *off*: the analysis
models semantic (scalar) footprints, while vector lowering retires grouped
ops whose ``size * lanes`` bytes land at the group-closing address --
a retirement artifact that can spill a modelled access past a row boundary
the program never crosses.  Each thread body also builds a private
:class:`~repro.vm.memory.Memory` whose *stack* occupies the same numeric
range on every thread, so only heap addresses (below ``Memory.STACK_BASE``)
enter the comparison; alloca-rooted regions are thread-private by
construction and are likewise excluded.

``record_thread_access_sets`` is the dynamic half of the story: it runs the
workload on a real :class:`~repro.smp.machine.MultiHartMachine` with a
per-hart access recorder installed (``Machine.set_access_recorder``) and
returns the exact per-thread access sets, against which the property suite
checks the static verdicts (containment and disjointness consistency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ranges import analyze_address_ranges
from repro.vm.memory import Memory


@dataclass(frozen=True)
class KernelShardPlan:
    """One thread of a compiled parallel workload, as the analyser sees it."""

    thread: str
    source: str
    filename: str
    function: str
    args: Tuple[object, ...]


@dataclass(frozen=True)
class TraceShardPlan:
    """One synthetic-trace thread: a flat ``[base, base + extent)`` envelope."""

    thread: str
    base: int
    extent: int


@dataclass(frozen=True)
class ThreadRegion:
    """An absolute heap byte range one thread may touch."""

    thread: str
    label: str
    lo: int            # absolute address, inclusive
    hi: int            # absolute address, exclusive
    reads: bool
    writes: bool

    def overlaps(self, other: "ThreadRegion") -> bool:
        return self.lo < other.hi and other.lo < self.hi


@dataclass(frozen=True)
class Overlap:
    """A pair of cross-thread regions sharing at least one byte."""

    first: ThreadRegion
    second: ThreadRegion
    kind: str  # 'shared' (read/read) or 'racy' (a write is involved)


@dataclass
class RaceReport:
    """The static race verdict for one (workload, cpus) configuration."""

    workload: str
    cpus: int
    verdict: str = "disjoint"  # 'disjoint' | 'shared' | 'racy' | 'unknown'
    regions: List[ThreadRegion] = field(default_factory=list)
    overlaps: List[Overlap] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "cpus": self.cpus,
            "verdict": self.verdict,
            "regions": [
                {"thread": r.thread, "label": r.label,
                 "lo": r.lo, "hi": r.hi,
                 "reads": r.reads, "writes": r.writes}
                for r in self.regions
            ],
            "overlaps": [
                {"first": f"{o.first.thread}:{o.first.label}",
                 "second": f"{o.second.thread}:{o.second.label}",
                 "kind": o.kind}
                for o in self.overlaps
            ],
            "notes": list(self.notes),
        }


def _merge_spans(spans: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce sorted half-open spans; touching spans merge."""
    merged: List[Tuple[int, int]] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _spans_overlap(first: Sequence[Tuple[int, int]],
                   second: Sequence[Tuple[int, int]]) -> bool:
    """Whether any byte lies in both span lists (strict intersection)."""
    return any(alo < bhi and blo < ahi
               for alo, ahi in first for blo, bhi in second)


def supports_shard_plans(workload) -> bool:
    return callable(getattr(workload, "shard_plans", None))


def _scalar_spec(spec):
    """The analysis/recording configuration: same shards, scalar lowering."""
    if getattr(spec, "enable_vectorizer", False):
        return spec.replace(enable_vectorizer=False)
    return spec


def _regions_for_kernel(plan: KernelShardPlan, descriptor) -> Tuple[
        List[ThreadRegion], List[str]]:
    from repro.compiler.cache import compile_source_cached

    module = compile_source_cached(plan.source, plan.filename, descriptor,
                                   enable_vectorizer=False)
    function = module.get_function(plan.function)
    result = analyze_address_ranges(function, plan.args)
    regions: List[ThreadRegion] = []
    notes: List[str] = []
    for region in result.sorted_regions():
        if region.is_private:
            continue  # per-thread stack slot; never inter-thread visible
        absolute = region.absolute()
        if absolute is None:
            notes.append(
                f"{plan.thread}: region {region.name!r} of "
                f"@{plan.function} could not be bounded"
            )
            continue
        lo, hi = absolute
        if lo >= Memory.STACK_BASE:
            continue  # thread-private stack range (identical across threads)
        regions.append(ThreadRegion(
            thread=plan.thread, label=region.name, lo=lo, hi=hi,
            reads=region.reads > 0, writes=region.writes > 0,
        ))
    for access in result.unresolved:
        if access.root is None:
            notes.append(
                f"{plan.thread}: a {'store' if access.is_store else 'load'} "
                f"in @{plan.function} has no statically known base"
            )
    return regions, notes


def analyze_parallel_workload(workload, cpus: int, spec,
                              descriptor) -> RaceReport:
    """Statically classify the cross-thread sharing of *workload*.

    *spec* and *descriptor* are the run configuration the shards would
    execute under; ``cpus`` shards exactly as
    ``workload.threads(cpus, spec)`` would.
    """
    report = RaceReport(workload=workload.name, cpus=cpus)
    if not supports_shard_plans(workload):
        report.verdict = "unknown"
        report.notes.append(
            f"workload {workload.name!r} does not describe its shards "
            "(no shard_plans); nothing to prove"
        )
        return report
    plans = workload.shard_plans(cpus, _scalar_spec(spec))
    for plan in plans:
        if isinstance(plan, TraceShardPlan):
            report.regions.append(ThreadRegion(
                thread=plan.thread, label="trace", lo=plan.base,
                hi=plan.base + plan.extent, reads=True, writes=True,
            ))
        else:
            regions, notes = _regions_for_kernel(plan, descriptor)
            report.regions.extend(regions)
            report.notes.extend(notes)
    for i, first in enumerate(report.regions):
        for second in report.regions[i + 1:]:
            if first.thread == second.thread:
                continue
            if not first.overlaps(second):
                continue
            kind = "racy" if (first.writes or second.writes) else "shared"
            report.overlaps.append(Overlap(first, second, kind))
    if any(overlap.kind == "racy" for overlap in report.overlaps):
        report.verdict = "racy"
    elif report.notes:
        report.verdict = "unknown"
    elif report.overlaps:
        report.verdict = "shared"
    else:
        report.verdict = "disjoint"
    return report


# -- dynamic validation ----------------------------------------------------------------


@dataclass
class AccessSets:
    """Recorded per-thread memory accesses from one instrumented SMP run."""

    workload: str
    cpus: int
    #: thread name -> set of (address, size_bytes, is_store) tuples.
    by_thread: Dict[str, set] = field(default_factory=dict)

    def heap_spans(self, thread: str,
                   stores: Optional[bool] = None) -> List[Tuple[int, int]]:
        """Merged, sorted half-open heap spans for *thread*.

        ``stores`` filters to store accesses (True), load accesses (False)
        or both (None).  Reads and writes are merged *separately* when the
        caller asks for one kind: merging a read span into a touching write
        span would smear the write flag across bytes the thread only read,
        turning boundary-adjacent allocations into phantom races.
        """
        spans = sorted(
            (address, address + size)
            for address, size, is_store in self.by_thread.get(thread, ())
            if address < Memory.STACK_BASE
            and (stores is None or is_store == stores)
        )
        return _merge_spans(spans)

    def dynamic_verdict(self) -> str:
        """'disjoint' / 'shared' / 'racy' over the *recorded* heap bytes."""
        threads = sorted(self.by_thread)
        reads = {t: self.heap_spans(t, stores=False) for t in threads}
        writes = {t: self.heap_spans(t, stores=True) for t in threads}
        verdict = "disjoint"
        for i, first in enumerate(threads):
            for second in threads[i + 1:]:
                if (_spans_overlap(writes[first], writes[second])
                        or _spans_overlap(writes[first], reads[second])
                        or _spans_overlap(writes[second], reads[first])):
                    return "racy"
                if _spans_overlap(reads[first], reads[second]):
                    verdict = "shared"
        return verdict


def record_thread_access_sets(workload, cpus: int, spec,
                              descriptor) -> AccessSets:
    """Run *workload* on an SMP machine and record per-thread access sets.

    Recording uses the same scalar configuration the static analysis models
    (see the module docstring); scheduling, sharding and addresses are the
    production ones.
    """
    from repro.smp.machine import MultiHartMachine
    from repro.smp.scheduler import run_threads

    scalar = _scalar_spec(spec)
    machine = MultiHartMachine(descriptor, cpus,
                               vendor_driver=spec.vendor_driver is not False)
    sets = AccessSets(workload=workload.name, cpus=cpus)

    def install(hart) -> None:
        def recorder(address: int, size: int, is_store: bool) -> None:
            task = hart.current_task
            name = task.name if task is not None else f"<hart-{hart.hart_id}>"
            sets.by_thread.setdefault(name, set()).add((address, size, is_store))
        hart.set_access_recorder(recorder)

    for hart_id in range(cpus):
        install(machine.hart(hart_id))
    try:
        run_threads(machine, workload.threads(cpus, scalar))
    finally:
        for hart_id in range(cpus):
            machine.hart(hart_id).set_access_recorder(None)
    return sets


def check_consistency(report: RaceReport, recorded: AccessSets) -> List[str]:
    """Cross-check a static :class:`RaceReport` against a recorded run.

    Returns a list of human-readable inconsistencies (empty = consistent):

    * a thread's recorded heap access falling outside its static regions
      (the static analysis under-approximated -- a soundness bug);
    * a static ``disjoint`` verdict contradicted by recorded cross-thread
      overlap, or a static ``racy``/``shared`` claim the recording shows as
      write-overlap when disjointness was claimed.
    """
    problems: List[str] = []
    static_by_thread: Dict[str, List[ThreadRegion]] = {}
    for region in report.regions:
        static_by_thread.setdefault(region.thread, []).append(region)
    for thread, spans in sorted(
            (t, recorded.heap_spans(t)) for t in recorded.by_thread):
        regions = static_by_thread.get(thread)
        if regions is None:
            if spans:
                problems.append(
                    f"thread {thread!r} recorded heap accesses but has no "
                    "static regions"
                )
            continue
        # A recorded span may legitimately cover several boundary-adjacent
        # static regions (A/B/C allocated back to back), so containment is
        # checked against the merged union of the thread's regions.
        static_spans = _merge_spans(
            sorted((r.lo, r.hi) for r in regions))
        for lo, hi in spans:
            if not any(slo <= lo and hi <= shi for slo, shi in static_spans):
                problems.append(
                    f"thread {thread!r} access [{lo:#x}, {hi:#x}) outside "
                    "its static regions"
                )
    dynamic = recorded.dynamic_verdict()
    if report.verdict == "disjoint" and dynamic != "disjoint":
        problems.append(
            f"static verdict is disjoint but the recorded run is {dynamic}"
        )
    if report.verdict in ("disjoint", "shared") and dynamic == "racy":
        problems.append(
            f"static verdict is {report.verdict} but the recorded run has "
            "cross-thread write overlap"
        )
    return problems
