"""A worklist dataflow framework over the compiler IR's CFG.

The framework is deliberately small: an analysis declares a *direction*
(forward or backward), a *boundary* state, a *join* and a per-block
*transfer* function, and :func:`solve` iterates a worklist (seeded in
reverse postorder) to the least fixed point.  Forward analyses may also
refine the state per outgoing CFG edge (:meth:`DataflowAnalysis.edge`) --
which is how the interval analysis in :mod:`repro.analysis.ranges` narrows
loop induction variables with branch guards -- and provide a *widening*
operator so lattices with infinite ascending chains still terminate.

Two classic analyses ship with the framework as both clients and executable
documentation: :class:`LivenessAnalysis` (backward, live SSA values) and
:class:`ReachingDefinitionsAnalysis` (forward, reaching stores per memory
root).  The address-range analysis (:mod:`repro.analysis.ranges`) and the
certifiers built on it (:mod:`repro.analysis.blockdelta`,
:mod:`repro.analysis.races`) are the load-bearing clients.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.compiler.analysis.cfg import predecessors, reverse_postorder
from repro.compiler.ir.instructions import (
    Alloca,
    Cast,
    GetElementPtr,
    Instruction,
    Phi,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function
from repro.compiler.ir.values import Argument, Value


class DataflowAnalysis:
    """One dataflow problem: direction, boundary, join, transfer.

    States must be immutable values with a meaningful ``==`` (frozensets,
    tuples, dicts compared by value) -- the solver detects convergence by
    comparing successive states.  ``None`` is reserved by the solver to mean
    *unreachable / no information* and is skipped by joins.
    """

    #: ``"forward"`` (states flow entry -> exit) or ``"backward"``.
    direction = "forward"

    def boundary(self, function: Function):
        """The state at the function entry (forward) or at exits (backward)."""
        raise NotImplementedError

    def join(self, states: List[object]):
        """Combine the (non-None) states flowing into a block."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state):
        """The state after (forward) / before (backward) executing *block*."""
        raise NotImplementedError

    def edge(self, block: BasicBlock, successor: BasicBlock, out_state):
        """Refine *out_state* on the edge ``block -> successor``.

        Forward analyses only.  Return ``None`` to mark the edge as
        statically unreachable (e.g. a branch guard with an empty meet).
        """
        return out_state

    def widen(self, old_state, new_state, block: Optional[BasicBlock] = None):
        """Accelerate convergence once a block has been revisited often.

        *block* is the block whose input is being widened, letting an
        analysis widen selectively (e.g. only loop-carried state at loop
        heads); ``block=None`` is the solver's last-resort signal after
        :data:`HARD_WIDEN_AFTER` revisits and must widen unconditionally.
        The default is to accept the new state (no widening); analyses over
        infinite-height lattices (intervals) must override this.
        """
        return new_state


@dataclass
class DataflowResult:
    """Per-block fixpoint states.

    For a forward analysis ``in_states[b]`` is the state at block entry and
    ``out_states[b]`` the state after the block; for a backward analysis the
    roles are mirrored (``in_states`` holds the state at block *entry*
    computed from below, ``out_states`` the state at block exit).
    """

    in_states: Dict[BasicBlock, object] = field(default_factory=dict)
    out_states: Dict[BasicBlock, object] = field(default_factory=dict)
    iterations: int = 0


#: Revisit count after which the solver starts widening a block's input.
WIDEN_AFTER = 16

#: Revisit count after which the solver demands *unconditional* widening
#: (``widen(..., block=None)``) -- the termination backstop for analyses
#: whose selective widening policy misjudges a cycle.
HARD_WIDEN_AFTER = 1024


def solve(function: Function, analysis: DataflowAnalysis) -> DataflowResult:
    """Run *analysis* over *function* to a fixed point."""
    result = DataflowResult()
    if function.is_declaration:
        return result
    order = reverse_postorder(function)
    if analysis.direction == "forward":
        _solve_forward(function, analysis, order, result)
    elif analysis.direction == "backward":
        _solve_backward(function, analysis, order, result)
    else:
        raise ValueError(
            f"unknown dataflow direction {analysis.direction!r} "
            "(expected 'forward' or 'backward')"
        )
    return result


def _solve_forward(function: Function, analysis: DataflowAnalysis,
                   order: List[BasicBlock], result: DataflowResult) -> None:
    preds = predecessors(function)
    entry = function.entry_block
    position = {block: index for index, block in enumerate(order)}
    worklist = deque(order)
    queued = set(order)
    visits: Dict[BasicBlock, int] = {}
    while worklist:
        block = worklist.popleft()
        queued.discard(block)
        result.iterations += 1
        incoming = []
        for pred in preds.get(block, []):
            out = result.out_states.get(pred)
            if out is None:
                continue
            refined = analysis.edge(pred, block, out)
            if refined is not None:
                incoming.append(refined)
        if block is entry:
            incoming.append(analysis.boundary(function))
        if not incoming:
            continue  # statically unreachable
        in_state = incoming[0] if len(incoming) == 1 else analysis.join(incoming)
        count = visits.get(block, 0) + 1
        visits[block] = count
        old_in = result.in_states.get(block)
        if old_in is not None and count > HARD_WIDEN_AFTER:
            in_state = analysis.widen(old_in, in_state, None)
        elif old_in is not None and count > WIDEN_AFTER:
            in_state = analysis.widen(old_in, in_state, block)
        if old_in is not None and in_state == old_in:
            continue
        result.in_states[block] = in_state
        out_state = analysis.transfer(block, in_state)
        if out_state == result.out_states.get(block):
            continue
        result.out_states[block] = out_state
        for succ in block.successors():
            if succ in position and succ not in queued:
                worklist.append(succ)
                queued.add(succ)


def _solve_backward(function: Function, analysis: DataflowAnalysis,
                    order: List[BasicBlock], result: DataflowResult) -> None:
    preds = predecessors(function)
    worklist = deque(reversed(order))
    queued = set(order)
    visits: Dict[BasicBlock, int] = {}
    while worklist:
        block = worklist.popleft()
        queued.discard(block)
        result.iterations += 1
        incoming = [result.in_states[succ] for succ in block.successors()
                    if succ in result.in_states]
        if not block.successors():
            incoming.append(analysis.boundary(function))
        if not incoming:
            out_state = analysis.boundary(function)
        else:
            out_state = (incoming[0] if len(incoming) == 1
                         else analysis.join(incoming))
        count = visits.get(block, 0) + 1
        visits[block] = count
        old_out = result.out_states.get(block)
        if old_out is not None and count > HARD_WIDEN_AFTER:
            out_state = analysis.widen(old_out, out_state, None)
        elif old_out is not None and count > WIDEN_AFTER:
            out_state = analysis.widen(old_out, out_state, block)
        if old_out is not None and out_state == old_out:
            continue
        result.out_states[block] = out_state
        in_state = analysis.transfer(block, out_state)
        if in_state == result.in_states.get(block):
            continue
        result.in_states[block] = in_state
        for pred in preds.get(block, []):
            if pred not in queued:
                worklist.append(pred)
                queued.add(pred)


# -- memory roots ---------------------------------------------------------------------


def pointer_root(value: Value) -> Optional[Value]:
    """The allocation a pointer value is derived from, or ``None``.

    Walks ``getelementptr`` chains and pointer-preserving casts back to an
    :class:`~repro.compiler.ir.instructions.Alloca` or a pointer-typed
    :class:`~repro.compiler.ir.values.Argument`.  Pointers loaded from
    memory (or otherwise synthesised) have no statically known root.
    """
    seen = 0
    while seen < 1024:
        seen += 1
        if isinstance(value, (Alloca, Argument)):
            return value
        if isinstance(value, GetElementPtr):
            value = value.base
            continue
        if isinstance(value, Cast) and value.opcode in ("bitcast", "inttoptr",
                                                        "ptrtoint"):
            value = value.value
            continue
        return None
    return None


# -- liveness --------------------------------------------------------------------------


class LivenessAnalysis(DataflowAnalysis):
    """Backward live-value analysis over SSA values.

    A value is live at a point when some path from that point uses it.  Phi
    uses are attributed to the phi's own block rather than to the incoming
    edges, which over-approximates liveness slightly but keeps the transfer
    function a plain block walk -- precise enough for the register-pressure
    style queries ``repro analyze`` reports.
    """

    direction = "backward"

    def boundary(self, function: Function) -> FrozenSet[Value]:
        return frozenset()

    def join(self, states: List[FrozenSet[Value]]) -> FrozenSet[Value]:
        return frozenset().union(*states)

    def transfer(self, block: BasicBlock,
                 out_state: FrozenSet[Value]) -> FrozenSet[Value]:
        live = set(out_state)
        for inst in reversed(block.instructions):
            live.discard(inst)
            for operand in inst.operands:
                if isinstance(operand, (Instruction, Argument)):
                    live.add(operand)
        return frozenset(live)


def live_in(function: Function) -> Dict[BasicBlock, FrozenSet[Value]]:
    """Live values at every block entry of *function*."""
    result = solve(function, LivenessAnalysis())
    return {block: result.in_states.get(block, frozenset())
            for block in function.blocks}


def max_live_values(function: Function) -> int:
    """The largest live-in set across the function's blocks.

    A block-granular register-pressure proxy (per-instruction pressure would
    need a walk inside blocks; block granularity is what the analyze report
    needs to compare kernels).
    """
    if function.is_declaration:
        return 0
    sets = live_in(function)
    return max((len(values) for values in sets.values()), default=0)


# -- reaching definitions --------------------------------------------------------------


class ReachingDefinitionsAnalysis(DataflowAnalysis):
    """Forward reaching-stores analysis, keyed by memory root.

    A *definition* is a :class:`~repro.compiler.ir.instructions.Store`; it
    reaches a point when some path from the store to the point contains no
    intervening store that certainly overwrites it.  A store kills previous
    definitions of the same root only when it writes *directly* through the
    root (a whole-slot strong update); stores through derived pointers
    (``getelementptr`` results) update weakly, because the static offset may
    differ per execution.
    """

    direction = "forward"

    def boundary(self, function: Function) -> FrozenSet[Store]:
        return frozenset()

    def join(self, states: List[FrozenSet[Store]]) -> FrozenSet[Store]:
        return frozenset().union(*states)

    def transfer(self, block: BasicBlock,
                 in_state: FrozenSet[Store]) -> FrozenSet[Store]:
        defs = set(in_state)
        for inst in block.instructions:
            if not isinstance(inst, Store):
                continue
            root = pointer_root(inst.pointer)
            strong = inst.pointer is root and root is not None
            if strong:
                defs = {d for d in defs if pointer_root(d.pointer) is not root}
            defs.add(inst)
        return frozenset(defs)


def reaching_definitions(function: Function) -> Dict[BasicBlock, FrozenSet[Store]]:
    """Stores reaching every block entry of *function*."""
    result = solve(function, ReachingDefinitionsAnalysis())
    return {block: result.in_states.get(block, frozenset())
            for block in function.blocks}
