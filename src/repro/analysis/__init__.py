"""Static analysis over the compiler IR and the repo's own source.

Three layers (see ``docs/architecture.md``, "Static analysis"):

* :mod:`repro.analysis.dataflow` -- the worklist dataflow framework plus
  liveness and reaching definitions;
* :mod:`repro.analysis.ranges` -- interval-based address-range/alias
  analysis bounding every load/store to a base+offset byte region;
* the certifiers: :mod:`repro.analysis.blockdelta` (static block-delta
  eligibility, cross-checked by the execution engine) and
  :mod:`repro.analysis.races` (static per-thread address disjointness for
  parallel workloads, validated against recorded per-hart access sets);
* :mod:`repro.analysis.lint` -- the determinism linter (``repro lint``).

This package depends only on :mod:`repro.compiler` at import time; runtime
integrations (engines, SMP machines, workloads) are imported lazily inside
functions so ``repro.analysis`` can be imported from anywhere in the repo
without cycles.
"""

from repro.analysis.blockdelta import (
    BlockVerdict,
    STATIC_DELTA_KEY,
    certify_function,
    certify_module,
    classify_block,
    verdicts_for,
)
from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    LivenessAnalysis,
    ReachingDefinitionsAnalysis,
    live_in,
    max_live_values,
    pointer_root,
    reaching_definitions,
    solve,
)
from repro.analysis.ranges import (
    Access,
    AddressRangeAnalysis,
    Interval,
    PointerValue,
    RangeResult,
    Region,
    analyze_address_ranges,
)

__all__ = [
    "Access",
    "AddressRangeAnalysis",
    "BlockVerdict",
    "DataflowAnalysis",
    "DataflowResult",
    "Interval",
    "LivenessAnalysis",
    "PointerValue",
    "RangeResult",
    "ReachingDefinitionsAnalysis",
    "Region",
    "STATIC_DELTA_KEY",
    "analyze_address_ranges",
    "certify_function",
    "certify_module",
    "classify_block",
    "live_in",
    "max_live_values",
    "pointer_root",
    "reaching_definitions",
    "solve",
    "verdicts_for",
]
