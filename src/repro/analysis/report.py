"""The ``repro analyze`` report, as a library.

Builds the static-analysis report (block-delta certification, address
regions, liveness/reaching-defs, race verdicts) for one workload or the
whole registry on one platform.  The CLI's ``analyze`` subcommand and the
service's ``POST /analyze`` endpoint are both thin shells over
:func:`build_analyze_report`; :func:`format_analyze_entry` renders one
report entry to the text the CLI prints, so server-side rendering matches
the in-process command byte for byte.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.blockdelta import verdicts_for
from repro.analysis.dataflow import max_live_values, reaching_definitions
from repro.analysis.races import analyze_parallel_workload, supports_shard_plans
from repro.analysis.ranges import analyze_address_ranges


def analyze_kernel_module(source: str, filename: str, entry: str,
                          args_builder, descriptor) -> List[dict]:
    """The per-function static report for one compiled kernel source.

    Analysis always runs on the scalar (vectorizer-off) module: the address
    analysis models semantic footprints, and block-delta verdicts for the
    scalar configuration are the ones every spec that disables vectorization
    exercises.  Concrete argument values (from the workload's own args
    builder against a fresh Memory) give pointer regions absolute bases.
    """
    from repro.compiler.cache import compile_source_cached
    from repro.compiler.targets import target_for_platform
    from repro.vm import Memory
    module = compile_source_cached(source, filename, descriptor,
                                   enable_vectorizer=False)
    target = target_for_platform(descriptor)
    concrete_args = list(args_builder(Memory())) if args_builder else None
    functions: List[dict] = []
    for function in module.defined_functions():
        verdicts = verdicts_for(function, target) or {}
        arg_values = concrete_args if function.name == entry else None
        ranges = analyze_address_ranges(function, arg_values)
        reaching = reaching_definitions(function)
        functions.append({
            "name": function.name,
            "blocks": {
                name: {"eligible": verdict.eligible, "reason": verdict.reason}
                for name, verdict in sorted(verdicts.items())
            },
            "max_live_values": max_live_values(function),
            "max_reaching_defs": max(
                (len(defs) for defs in reaching.values()), default=0),
            "regions": [
                {
                    "name": region.name,
                    "lo": region.lo, "hi": region.hi,
                    "stride": region.stride,
                    "reads": region.reads, "writes": region.writes,
                    "private": region.is_private,
                    "base": region.base,
                }
                for region in ranges.sorted_regions()
            ],
            "unresolved_accesses": len(ranges.unresolved),
        })
    return functions


def analyze_workload(workload, descriptor, cpus: int) -> dict:
    """One report entry: kernel function analyses or a race verdict."""
    from repro.api import ProfileSpec
    entry: dict = {"name": workload.name, "kind": workload.kind}
    if workload.kind == "kernel":
        entry["functions"] = analyze_kernel_module(
            workload.source, workload.filename, workload.function,
            workload.args_builder, descriptor)
    elif supports_shard_plans(workload):
        report = analyze_parallel_workload(workload, cpus, ProfileSpec(),
                                           descriptor)
        entry["race"] = report.to_dict()
    else:
        entry["note"] = ("synthetic trace replay; no compiled IR to "
                        "analyze statically")
    return entry


def build_analyze_report(platform: str, cpus: int = 1,
                         workload: Optional[str] = None,
                         params: Optional[dict] = None,
                         all_workloads: bool = False) -> dict:
    """The full ``repro analyze`` report as one JSON-shaped dict.

    *workload* is a registry name (with optional factory *params*);
    *all_workloads* analyzes every registered workload instead.  The
    returned dict is exactly what ``repro analyze --json`` prints.
    """
    from repro.platforms import platform_by_name
    from repro.workloads import registry
    descriptor = platform_by_name(platform)
    if all_workloads:
        workloads = [registry.create(name) for name in registry]
    else:
        workloads = [registry.create(workload, **dict(params or {}))]
    entries = [analyze_workload(item, descriptor, cpus)
               for item in workloads]
    return {"platform": descriptor.name, "cpus": cpus, "workloads": entries}


def failed_certifications(report: dict) -> List[str]:
    """Workload names whose race verdict is ``racy``/``unknown`` -- the
    entries that make ``repro analyze`` exit nonzero."""
    return [entry["name"] for entry in report["workloads"]
            if entry.get("race", {}).get("verdict") in ("racy", "unknown")]


def format_analyze_entry(entry: dict) -> str:
    """Render one report entry to the text ``repro analyze`` prints."""
    lines = [f"workload: {entry['name']} ({entry['kind']})"]
    for function in entry.get("functions", ()):
        blocks = function["blocks"]
        eligible = sum(1 for v in blocks.values() if v["eligible"])
        lines.append(
            f"  @{function['name']}: {eligible}/{len(blocks)} blocks "
            f"block-delta eligible; max live values "
            f"{function['max_live_values']}; max reaching defs "
            f"{function['max_reaching_defs']}"
        )
        for name, verdict in blocks.items():
            state = "eligible" if verdict["eligible"] else verdict["reason"]
            lines.append(f"    block {name}: {state}")
        for region in function["regions"]:
            span = (f"[{region['lo']}, {region['hi']})"
                    if region["lo"] is not None and region["hi"] is not None
                    else "[unbounded)")
            where = ("private" if region["private"]
                     else f"base={region['base']:#x}" if region["base"] is not None
                     else "base=?")
            lines.append(
                f"    region {region['name']}: {span} stride "
                f"{region['stride']} reads={region['reads']} "
                f"writes={region['writes']} ({where})"
            )
        if function["unresolved_accesses"]:
            lines.append(
                f"    {function['unresolved_accesses']} access(es) "
                "could not be bounded"
            )
    race = entry.get("race")
    if race is not None:
        lines.append(f"  race verdict ({race['cpus']} harts): "
                     f"{race['verdict']}")
        for region in race["regions"]:
            lines.append(
                f"    {region['thread']}/{region['label']}: "
                f"[{region['lo']:#x}, {region['hi']:#x}) "
                f"reads={region['reads']} writes={region['writes']}"
            )
        for overlap in race["overlaps"]:
            lines.append(f"    overlap {overlap['first']} ~ "
                         f"{overlap['second']}: {overlap['kind']}")
        for note in race["notes"]:
            lines.append(f"    note: {note}")
    if "note" in entry:
        lines.append(f"  {entry['note']}")
    return "\n".join(lines)


def format_analyze_report(report: dict) -> str:
    """Render the whole report to the text ``repro analyze`` prints."""
    lines = [f"static analysis on {report['platform']} ({report['cpus']} "
             "harts for parallel workloads):"]
    for entry in report["workloads"]:
        lines.append(format_analyze_entry(entry))
    return "\n".join(lines)
