"""A deterministic round-robin scheduler for multi-hart machines.

Software threads are generators: a thread body receives the hart machine and
its task, performs a *quantum* of work (some machine ops) and ``yield``s
control back to the scheduler.  The scheduler pins thread *i* to hart
``i % cpus`` at spawn (cache state stays attributable to one hart, the way
affinity-pinned benchmarks run), keeps one FIFO runqueue per hart, and
advances the harts in a fixed global round-robin order: hart 0's current
thread runs one quantum, then hart 1's, and so on.  There is no randomness
anywhere, so the same thread list always produces the same interleaving --
the property the per-hart sample-stream determinism test pins down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.kernel.task import Task
from repro.platforms.machine import Machine
from repro.smp.machine import MultiHartMachine

#: A thread body: bound to a hart machine and a task, yields between quanta.
ThreadBody = Callable[[Machine, Task], Iterator[None]]


class Thread:
    """One schedulable software thread.

    ``hart_id`` pins the thread to a specific hart (like ``taskset``);
    leaving it ``None`` lets the scheduler apply its default ``i % cpus``
    placement.  A pin outside the machine's hart range is rejected by
    :meth:`RoundRobinScheduler.run` with a :class:`ValueError`.
    """

    def __init__(self, name: str, body: ThreadBody,
                 hart_id: Optional[int] = None):
        self.name = name
        self.body = body
        self.task: Optional[Task] = None
        self.hart_id: Optional[int] = hart_id
        self.quanta = 0
        self.finished = False
        self._generator: Optional[Iterator[None]] = None

    def bind(self, machine: Machine, hart_id: int) -> None:
        self.hart_id = hart_id
        self.task = machine.create_task(self.name)
        self._generator = self.body(machine, self.task)

    def advance(self) -> bool:
        """Run one quantum; return False when the thread has finished."""
        assert self._generator is not None, "thread not bound to a hart"
        try:
            next(self._generator)
        except StopIteration:
            self.finished = True
            return False
        self.quanta += 1
        return True

    def __repr__(self) -> str:
        return (f"Thread({self.name!r}, hart={self.hart_id}, "
                f"quanta={self.quanta}, finished={self.finished})")


@dataclass
class ScheduleTrace:
    """What the scheduler did, for determinism tests and diagnostics."""

    cpus: int
    #: (hart_id, thread_name) per executed quantum, in global execution order.
    quanta: List[Tuple[int, str]] = field(default_factory=list)
    threads_per_hart: Dict[int, List[str]] = field(default_factory=dict)

    @property
    def total_quanta(self) -> int:
        return len(self.quanta)

    def quanta_on(self, hart_id: int) -> List[str]:
        return [name for hid, name in self.quanta if hid == hart_id]

    def quanta_per_hart(self) -> Dict[int, int]:
        """Executed quantum count per hart (every hart, including idle ones).

        The scheduler's quantum accounting in one shape: :meth:`to_dict`
        exports it and the telemetry run collector folds it into the
        ``repro_scheduler_quanta_total`` series.
        """
        counts = {hart: 0 for hart in range(self.cpus)}
        for hart_id, _name in self.quanta:
            counts[hart_id] += 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "cpus": self.cpus,
            "total_quanta": self.total_quanta,
            "threads_per_hart": {str(k): v
                                 for k, v in sorted(self.threads_per_hart.items())},
            "quanta_per_hart": {str(hart): count
                                for hart, count in self.quanta_per_hart().items()},
        }


class RoundRobinScheduler:
    """Deterministic round-robin time-slicing of threads across harts."""

    def __init__(self, machine: MultiHartMachine):
        self.machine = machine

    def run(self, threads: Sequence[Thread]) -> ScheduleTrace:
        """Run *threads* to completion; returns the executed schedule.

        Raises :class:`ValueError` when given no threads at all, or when a
        thread is pinned (via ``Thread(..., hart_id=N)``) to a hart the
        machine does not have -- both would otherwise surface as confusing
        downstream failures.
        """
        cpus = self.machine.cpus
        if not threads:
            raise ValueError(
                "RoundRobinScheduler.run needs at least one thread "
                "(got an empty thread list)"
            )
        for thread in threads:
            if thread.hart_id is not None and not 0 <= thread.hart_id < cpus:
                raise ValueError(
                    f"thread {thread.name!r} is pinned to hart "
                    f"{thread.hart_id}, but the machine has harts 0.."
                    f"{cpus - 1}"
                )
        trace = ScheduleTrace(cpus=cpus)
        runqueues: List[Deque[Thread]] = [deque() for _ in range(cpus)]
        for index, thread in enumerate(threads):
            hart_id = thread.hart_id if thread.hart_id is not None else index % cpus
            thread.bind(self.machine.hart(hart_id), hart_id)
            runqueues[hart_id].append(thread)
            trace.threads_per_hart.setdefault(hart_id, []).append(thread.name)

        while any(runqueues):
            for hart_id, queue in enumerate(runqueues):
                if not queue:
                    continue
                thread = queue[0]
                hart = self.machine.hart(hart_id)
                hart.current_task = thread.task
                try:
                    alive = thread.advance()
                finally:
                    hart.current_task = None
                trace.quanta.append((hart_id, thread.name))
                queue.popleft()
                if alive:
                    queue.append(thread)
        return trace


def run_threads(machine: MultiHartMachine,
                bodies: Sequence[Tuple[str, ThreadBody]]) -> ScheduleTrace:
    """Convenience: wrap (name, body) pairs in Threads and run them."""
    threads = [Thread(name, body) for name, body in bodies]
    return RoundRobinScheduler(machine).run(threads)
