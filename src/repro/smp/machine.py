"""The multi-hart machine: N profiled harts over a shared memory system.

A :class:`MultiHartMachine` instantiates one full single-hart stack per hart
-- core timing model, private L1(s), CSR file, PMU unit, OpenSBI firmware
context, kernel PMU driver and perf_event subsystem, all hart-indexed -- on
top of one :class:`~repro.smp.memory.SharedMemorySystem` (shared LLC plus a
bandwidth-contended memory controller).  Each hart *is* a
:class:`~repro.platforms.machine.Machine`, so every existing consumer
(execution engines, miniperf, the roofline flow) can drive an individual
hart unchanged; the SMP machine adds the cross-hart pieces: aggregate
metrics, and system-wide (``perf stat -a``-style) event attachment with
cross-hart aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cpu.events import HwEvent
from repro.kernel.perf_event import (
    PerfEventAttr,
    PerfEventOpenError,
    PerfReadValue,
    ReadFormat,
)
from repro.kernel.task import Task
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.smp.memory import SharedMemorySystem


@dataclass
class SystemWideReadValue:
    """Cross-hart aggregation of one system-wide event read."""

    event: HwEvent
    #: Aggregate count over all harts.
    value: int
    #: Per-hart reads, keyed by hart id.
    per_cpu: Dict[int, PerfReadValue] = field(default_factory=dict)

    @property
    def scaled_value(self) -> float:
        return sum(read.scaled_value for read in self.per_cpu.values())

    def count_on(self, cpu: int) -> int:
        read = self.per_cpu.get(cpu)
        return read.value if read is not None else 0


class SystemWideEvent:
    """A ``cpu=-1``-style event: one perf event open on every hart.

    Real perf implements system-wide counting by opening one event per CPU
    and summing the reads; this handle does exactly that against the per-hart
    :class:`~repro.kernel.perf_event.PerfEventSubsystem` instances.  Samples
    recorded by each hart's subsystem carry that hart's ``cpu`` tag, so the
    merged stream keeps per-hart sub-streams apart.
    """

    def __init__(self, machine: "MultiHartMachine", attr: PerfEventAttr,
                 fds: List[Tuple[Machine, int]]):
        self.machine = machine
        self.attr = attr
        self._fds = fds
        self._closed = False

    @property
    def event(self) -> HwEvent:
        return self.attr.event

    def fd_on(self, cpu: int) -> int:
        for hart, fd in self._fds:
            if hart.hart_id == cpu:
                return fd
        raise KeyError(f"no event opened on cpu {cpu}")

    def enable(self) -> None:
        for hart, fd in self._fds:
            hart.perf.enable(fd)

    def disable(self) -> None:
        for hart, fd in self._fds:
            hart.perf.disable(fd)

    def read(self) -> SystemWideReadValue:
        per_cpu: Dict[int, PerfReadValue] = {}
        total = 0
        for hart, fd in self._fds:
            read = hart.perf.read(fd)
            per_cpu[hart.hart_id] = read
            total += read.value
        return SystemWideReadValue(event=self.attr.event, value=total,
                                   per_cpu=per_cpu)

    def close(self) -> None:
        if self._closed:
            return
        for hart, fd in self._fds:
            hart.perf.close(fd)
        self._closed = True


class MultiHartMachine:
    """N harts of one platform sharing an LLC and a memory controller.

    Parameters
    ----------
    descriptor:
        The platform to build.  ``descriptor.harts`` is the physical core
        count of the board; requesting more harts than that raises.
    cpus:
        How many harts to instantiate.
    vendor_driver:
        Propagated to every hart's kernel PMU driver.
    contention_per_hart / contention_window:
        Parameters of the DRAM bandwidth-contention model (see
        :class:`~repro.smp.memory.MemoryController`).
    """

    def __init__(self, descriptor: PlatformDescriptor, cpus: int,
                 vendor_driver: bool = True,
                 contention_per_hart: float = 0.5,
                 contention_window: int = 32):
        if cpus < 1:
            raise ValueError(f"cpus must be >= 1 (got {cpus})")
        if cpus > max(descriptor.harts, 1):
            raise ValueError(
                f"{descriptor.name} has {descriptor.harts} harts; "
                f"cannot build a {cpus}-hart machine"
            )
        self.descriptor = descriptor
        self.vendor_driver = vendor_driver
        self.memory_system = SharedMemorySystem(
            descriptor.caches, descriptor.memory,
            window=contention_window,
            contention_per_hart=contention_per_hart,
        )
        self.harts: List[Machine] = [
            Machine(
                descriptor,
                vendor_driver=vendor_driver,
                hierarchy=self.memory_system.hierarchy_for_hart(hart_id),
                hart_id=hart_id,
            )
            for hart_id in range(cpus)
        ]
        # Whenever *any* hart has a sampling counter armed, every hart's
        # batched retirement falls back to per-op retirement: interrupts may
        # then fire at any retired op, and the batching optimisation must
        # never defer one (the fast-dispatch SMP path relies on this to stay
        # bit-identical to the reference interpreter).
        for hart in self.harts:
            hart.set_sampling_probe(self.sampling_active)
        self._swappers: Dict[int, Task] = {}

    # -- identity ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def cpus(self) -> int:
        return len(self.harts)

    def __len__(self) -> int:
        return len(self.harts)

    def hart(self, hart_id: int) -> Machine:
        return self.harts[hart_id]

    def sampling_active(self) -> bool:
        """True when any hart has a running counter with sampling armed."""
        return any(hart.pmu.sampling_active() for hart in self.harts)

    def set_cache_fast_path(self, enabled: bool) -> None:
        """Toggle the same-line short-circuits on every hart's hierarchy
        (private levels and the shared LLC alike); bit-identical either way."""
        for hart in self.harts:
            hart.set_cache_fast_path(enabled)

    def create_task(self, name: str, hart_id: int = 0) -> Task:
        return self.harts[hart_id].create_task(name)

    def swapper_task(self, hart_id: int) -> Task:
        """The hart's idle task: the nominal owner of cpu-bound perf events.

        One per hart for the machine's lifetime (like pid 0 on a real
        system), so repeated system-wide attachments don't accumulate tasks.
        """
        task = self._swappers.get(hart_id)
        if task is None:
            task = self.harts[hart_id].create_task(f"swapper/{hart_id}")
            self._swappers[hart_id] = task
        return task

    # -- aggregate metrics -------------------------------------------------------

    @property
    def wall_cycles(self) -> int:
        """Elapsed machine time: the busiest hart's cycle count.

        Harts run concurrently, so system wall time is the maximum per-hart
        cycle count, not the sum.
        """
        return max(hart.cycles for hart in self.harts)

    @property
    def total_instructions(self) -> int:
        return sum(hart.instructions for hart in self.harts)

    @property
    def aggregate_ipc(self) -> float:
        """Aggregate throughput: total retired instructions per wall cycle."""
        wall = self.wall_cycles
        return self.total_instructions / wall if wall else 0.0

    def elapsed_seconds(self) -> float:
        return self.wall_cycles / self.descriptor.core.frequency_hz

    def event_totals(self) -> Dict[HwEvent, int]:
        """Bus ground-truth event totals summed across harts."""
        totals: Dict[HwEvent, int] = {}
        for hart in self.harts:
            for event, count in hart.event_totals().items():
                totals[event] = totals.get(event, 0) + count
        return totals

    def per_hart_event_totals(self) -> Dict[int, Dict[HwEvent, int]]:
        return {hart.hart_id: hart.event_totals() for hart in self.harts}

    def stats(self) -> Dict[str, object]:
        return {
            "platform": self.name,
            "cpus": self.cpus,
            "wall_cycles": self.wall_cycles,
            "total_instructions": self.total_instructions,
            "aggregate_ipc": round(self.aggregate_ipc, 4),
            "elapsed_seconds": self.elapsed_seconds(),
            "memory_system": self.memory_system.stats(),
            "harts": [hart.stats() for hart in self.harts],
        }

    # -- system-wide perf attachment ----------------------------------------------

    def open_system_wide(self, attr: PerfEventAttr,
                         cpu: int = -1) -> SystemWideEvent:
        """Open *attr* on every hart (``cpu=-1``) or one hart (``cpu=N``).

        Each per-hart open gets a per-hart "swapper" task as its nominal
        owner; while the scheduler runs, samples attribute to whatever task
        is current on the hart, matching system-wide perf semantics.  A
        failure on any hart closes the already-opened fds and re-raises, so
        a partially attached system-wide event never leaks.
        """
        targets = self.harts if cpu == -1 else [self.harts[cpu]]
        fds: List[Tuple[Machine, int]] = []
        try:
            for hart in targets:
                swapper = self.swapper_task(hart.hart_id)
                fds.append((hart, hart.perf.perf_event_open(attr, swapper)))
        except PerfEventOpenError:
            for hart, fd in fds:
                hart.perf.close(fd)
            raise
        return SystemWideEvent(self, attr, fds)

    def open_counting_events(self, events: List[HwEvent],
                             cpu: int = -1) -> Tuple[List[SystemWideEvent],
                                                     List[HwEvent]]:
        """Open counting-mode system-wide events; returns (opened, unsupported)."""
        opened: List[SystemWideEvent] = []
        unsupported: List[HwEvent] = []
        read_format = frozenset({ReadFormat.TOTAL_TIME_ENABLED,
                                 ReadFormat.TOTAL_TIME_RUNNING})
        for event in events:
            attr = PerfEventAttr(event=event, read_format=read_format)
            try:
                opened.append(self.open_system_wide(attr, cpu=cpu))
            except PerfEventOpenError:
                unsupported.append(event)
        return opened, unsupported

    def __repr__(self) -> str:
        return (
            f"MultiHartMachine({self.name!r}, cpus={self.cpus}, "
            f"wall_cycles={self.wall_cycles})"
        )
