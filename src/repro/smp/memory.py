"""The SMP memory system: private caches, a shared LLC, contended DRAM.

On every real board the paper profiles, the harts share the last-level cache
and the memory controller while keeping private L1s (the X60 clusters share
an L2, the U74 complex shares its L2, Tiger Lake cores share the L3).  The
SMP model mirrors that split: every cache level of the platform descriptor
except the last is instantiated privately per hart, the last level is one
:class:`~repro.cpu.cache.Cache` instance shared by all harts, and DRAM sits
behind a :class:`MemoryController` with a deterministic bandwidth-contention
model.

Each hart sees the system through a :class:`HartCacheHierarchy`, which is
API-compatible with the single-hart
:class:`~repro.cpu.cache.CacheHierarchy` (``access``/``stats``/``level``/
``line_bytes``), so the core timing models and PMU event publication work
unchanged: a hart's L1 miss counters are private, while shared-LLC misses
are attributed to the hart whose access missed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.cpu.cache import (
    AccessResult,
    Cache,
    CacheConfig,
    FastPathHierarchy,
    MemoryConfig,
)


class MemoryController:
    """Shared DRAM with a deterministic bandwidth-contention model.

    Harts advance their own clocks, so contention cannot be modelled with a
    global busy-until timeline.  Instead the controller watches the *access
    interleaving*: it remembers which harts issued the last ``window`` DRAM
    accesses, and stretches the latency of each access by
    ``contention_per_hart`` for every *other* hart currently competing.  With
    a single hart the latency is exactly the configured DRAM latency, so a
    one-hart SMP machine times accesses identically to the single-hart model.
    The interleaving is produced by the deterministic scheduler, which makes
    the whole contention model reproducible run to run.
    """

    def __init__(self, config: MemoryConfig, window: int = 32,
                 contention_per_hart: float = 0.5):
        if window <= 0:
            raise ValueError("window must be positive")
        if contention_per_hart < 0:
            raise ValueError("contention_per_hart must be non-negative")
        self.config = config
        self.window = window
        self.contention_per_hart = contention_per_hart
        self._recent: Deque[int] = deque(maxlen=window)
        self.accesses = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.per_hart_accesses: Dict[int, int] = {}
        self.per_hart_bytes: Dict[int, int] = {}
        self.contended_accesses = 0

    def competing_harts(self) -> int:
        """Number of distinct harts among the recent accesses."""
        return len(set(self._recent)) or 1

    def access_latency(self, hart_id: int) -> int:
        """Record one DRAM access by *hart_id* and return its latency."""
        self._recent.append(hart_id)
        self.accesses += 1
        self.per_hart_accesses[hart_id] = self.per_hart_accesses.get(hart_id, 0) + 1
        competing = self.competing_harts()
        if competing <= 1:
            return self.config.latency_cycles
        self.contended_accesses += 1
        factor = 1.0 + self.contention_per_hart * (competing - 1)
        return int(self.config.latency_cycles * factor)

    def account_bytes(self, hart_id: int, read_bytes: int, write_bytes: int) -> None:
        self.read_bytes += read_bytes
        self.write_bytes += write_bytes
        self.per_hart_bytes[hart_id] = (
            self.per_hart_bytes.get(hart_id, 0) + read_bytes + write_bytes
        )

    def stats(self) -> Dict[str, object]:
        return {
            "accesses": self.accesses,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "contended_accesses": self.contended_accesses,
            "per_hart_accesses": dict(self.per_hart_accesses),
        }


class HartCacheHierarchy(FastPathHierarchy):
    """One hart's view of the SMP memory system.

    Walks accesses through the hart's private levels, then the shared levels,
    then the contended memory controller -- same inclusive fill discipline
    (and same inherited fast-path entry points) as
    :class:`~repro.cpu.cache.CacheHierarchy`, so a single-hart SMP machine
    produces identical hit/miss/latency sequences to the single-hart model.
    The private-L1 memo is safe per hart; in the degenerate single-level
    case where "L1" is the shared LLC, the level's last-touched-line memo
    asserts residency regardless of which hart touched it last.
    """

    def __init__(self, hart_id: int, private_configs: List[CacheConfig],
                 shared_levels: List[Cache], controller: MemoryController):
        self.hart_id = hart_id
        self.private_levels = [Cache(cfg) for cfg in private_configs]
        self.shared_levels = shared_levels
        self.controller = controller
        self.memory = controller.config
        self.dram_read_bytes = 0
        self.dram_write_bytes = 0
        self.dram_accesses = 0
        self._levels = self.private_levels + self.shared_levels
        self._init_fast_path()

    @property
    def levels(self) -> List[Cache]:
        return self._levels

    @property
    def line_bytes(self) -> int:
        return self._levels[0].config.line_bytes

    def _access_line(self, address: int, is_store: bool) -> AccessResult:
        levels = self.levels
        latency = 0
        missed: List[str] = []
        for depth, cache in enumerate(levels):
            latency += cache.config.hit_latency
            if cache.access(address, is_store):
                for upper in levels[:depth]:
                    upper.fill(address, is_store)
                return AccessResult(
                    hit_level=cache.config.name,
                    latency=latency,
                    l1_miss=depth > 0,
                    llc_miss=False,
                    dram_bytes=0,
                    levels_missed=missed,
                )
            missed.append(cache.config.name)
        # Missed every level, private and shared: go to contended DRAM.
        latency += self.controller.access_latency(self.hart_id)
        line = self.line_bytes
        dram_bytes = line
        read_bytes = line
        write_bytes = 0
        self.dram_read_bytes += line
        self.dram_accesses += 1
        for cache in levels:
            if cache.fill(address, is_store):
                dram_bytes += line
                write_bytes += line
                self.dram_write_bytes += line
        self.controller.account_bytes(self.hart_id, read_bytes, write_bytes)
        return AccessResult(
            hit_level="DRAM",
            latency=latency,
            l1_miss=True,
            llc_miss=True,
            dram_bytes=dram_bytes,
            levels_missed=missed,
        )

    # -- statistics (CacheHierarchy-compatible) ---------------------------------

    def level(self, name: str) -> Cache:
        for cache in self.levels:
            if cache.config.name == name:
                return cache
        raise KeyError(f"no cache level named {name!r}")

    def stats(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for cache in self.private_levels:
            out[cache.config.name] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "miss_rate": cache.miss_rate,
                "writebacks": cache.writebacks,
            }
        for cache in self.shared_levels:
            out[cache.config.name] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "miss_rate": cache.miss_rate,
                "writebacks": cache.writebacks,
                "shared": True,
            }
        out["DRAM"] = {
            "read_bytes": self.dram_read_bytes,
            "write_bytes": self.dram_write_bytes,
            "accesses": self.dram_accesses,
        }
        return out

    def reset_stats(self) -> None:
        for cache in self.private_levels:
            cache.reset_stats()
        self.dram_read_bytes = 0
        self.dram_write_bytes = 0
        self.dram_accesses = 0


class SharedMemorySystem:
    """The whole-machine memory fabric: shared LLC + controller, per-hart views.

    All cache levels of the platform descriptor except the last are private
    per hart; the last level is shared.  (Every modelled platform has at
    least two levels; a hypothetical single-level descriptor would share its
    only level, which is the degenerate-but-correct reading.)
    """

    def __init__(self, cache_configs: List[CacheConfig], memory: MemoryConfig,
                 window: int = 32, contention_per_hart: float = 0.5):
        if not cache_configs:
            raise ValueError("at least one cache level is required")
        if len(cache_configs) > 1:
            self.private_configs = list(cache_configs[:-1])
            shared_configs = [cache_configs[-1]]
        else:
            self.private_configs = []
            shared_configs = list(cache_configs)
        self.shared_levels = [Cache(cfg) for cfg in shared_configs]
        self.controller = MemoryController(
            memory, window=window, contention_per_hart=contention_per_hart)
        self.hierarchies: Dict[int, HartCacheHierarchy] = {}

    @property
    def llc(self) -> Cache:
        return self.shared_levels[-1]

    def hierarchy_for_hart(self, hart_id: int) -> HartCacheHierarchy:
        hierarchy = self.hierarchies.get(hart_id)
        if hierarchy is None:
            hierarchy = HartCacheHierarchy(
                hart_id, self.private_configs, self.shared_levels, self.controller)
            self.hierarchies[hart_id] = hierarchy
        return hierarchy

    def stats(self) -> Dict[str, object]:
        return {
            "llc": {
                "hits": self.llc.hits,
                "misses": self.llc.misses,
                "miss_rate": self.llc.miss_rate,
                "writebacks": self.llc.writebacks,
            },
            "controller": self.controller.stats(),
        }

    def fast_path_hits(self) -> Dict[str, int]:
        """System-wide same-line short-circuit hits per level name.

        Private levels are summed across harts; each shared level is counted
        once (the per-hart views alias the same :class:`Cache` instances).
        Observability only -- see
        :meth:`repro.cpu.cache.FastPathHierarchy.fast_path_hits`.
        """
        totals: Dict[str, int] = {}
        for hierarchy in self.hierarchies.values():
            for cache in hierarchy.private_levels:
                name = cache.config.name
                totals[name] = totals.get(name, 0) + cache.mru_hits
        for cache in self.shared_levels:
            name = cache.config.name
            totals[name] = totals.get(name, 0) + cache.mru_hits
        return totals
