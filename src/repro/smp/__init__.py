"""The SMP subsystem: multi-hart machines and system-wide profiling.

The single-hart model stacks one core, one PMU, one firmware context and one
perf_event subsystem behind one :class:`~repro.platforms.machine.Machine`.
This package scales that stack sideways, the way the paper's platforms
actually ship (the Banana Pi F3 is an octa-core board):

* :class:`MultiHartMachine` -- N per-hart cores + private L1s + per-hart
  PMU/CSR/firmware over a :class:`SharedMemorySystem` (shared LLC plus a
  bandwidth-contended memory controller);
* :class:`RoundRobinScheduler` / :class:`Thread` -- deterministic
  round-robin time-slicing of software threads across harts;
* :func:`smp_stat` / :func:`smp_record` -- ``perf stat -a`` / ``perf record
  -a`` semantics: per-CPU event attachment with cross-hart aggregation and
  per-hart sample streams tagged with ``cpu``;
* :class:`SystemWideEvent` -- the ``cpu=-1``-style attachment handle.

``cpus=1`` never routes through this package: the session API keeps the
single-hart fast path byte-for-byte identical to previous releases.
"""

from repro.smp.machine import (
    MultiHartMachine,
    SystemWideEvent,
    SystemWideReadValue,
)
from repro.smp.memory import (
    HartCacheHierarchy,
    MemoryController,
    SharedMemorySystem,
)
from repro.smp.perf import (
    SmpRecordingResult,
    SmpStatResult,
    aggregate_roofline,
    merge_hotspot_reports,
    smp_record,
    smp_stat,
)
from repro.smp.scheduler import (
    RoundRobinScheduler,
    ScheduleTrace,
    Thread,
    ThreadBody,
    run_threads,
)

__all__ = [
    "MultiHartMachine",
    "SystemWideEvent",
    "SystemWideReadValue",
    "SharedMemorySystem",
    "HartCacheHierarchy",
    "MemoryController",
    "RoundRobinScheduler",
    "Thread",
    "ThreadBody",
    "ScheduleTrace",
    "run_threads",
    "smp_stat",
    "smp_record",
    "SmpStatResult",
    "SmpRecordingResult",
    "merge_hotspot_reports",
    "aggregate_roofline",
]
