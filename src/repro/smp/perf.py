"""System-wide miniperf over a multi-hart machine: ``stat -a`` and ``record -a``.

:func:`smp_stat` is ``miniperf stat`` with per-CPU counting: one counting
event per hart per requested event (how real perf implements ``-a``), the
deterministic round-robin scheduler driving the workload threads in between
enable and disable, and a result that keeps per-hart columns next to the
aggregate.  :func:`smp_record` is sampling mode: the platform's sampling
group plan (including the X60 group-leader workaround) is opened on *every*
hart, samples attribute to whatever thread the scheduler has running on the
overflowing hart, and the merged stream keeps per-hart sub-streams apart via
the sample ``cpu`` tag.

The module also provides the SMP variants of the derived analyses: hotspot
tables merged across harts, cpu-labelled merged flame graphs, and aggregate
roofline roofs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.events import HwEvent
from repro.flamegraph.model import FlameNode, build_flame_graph, merge_flame_graphs
from repro.kernel.ring_buffer import SampleRecord
from repro.miniperf.correction import scale_multiplexed
from repro.miniperf.cpuid import identify_machine
from repro.miniperf.groups import GroupPlan, plan_sampling_group
from repro.miniperf.record import RecordingResult
from repro.miniperf.report import HotspotReport, HotspotRow, build_hotspot_report
from repro.miniperf.stat import DEFAULT_STAT_EVENTS, StatResult
from repro.roofline.runner import KernelRooflineResult
from repro.kernel.perf_event import PerfEventOpenError
from repro.smp.machine import MultiHartMachine
from repro.smp.scheduler import ScheduleTrace, ThreadBody, run_threads


@dataclass
class SmpStatResult:
    """Counts from one system-wide ``stat`` run: per-hart columns + aggregate."""

    platform: str
    cpus: int
    #: One single-hart StatResult per hart, index == hart id.
    per_hart: List[StatResult] = field(default_factory=list)
    unsupported: List[HwEvent] = field(default_factory=list)
    schedule: Optional[ScheduleTrace] = None

    # -- aggregation ------------------------------------------------------------

    def count(self, event: HwEvent) -> float:
        """Aggregate (multiplex-scaled) count across all harts."""
        return sum(result.count(event) for result in self.per_hart)

    def count_on(self, cpu: int, event: HwEvent) -> float:
        return self.per_hart[cpu].count(event)

    @property
    def ipc(self) -> float:
        """Busy-cycle IPC: total instructions over total per-hart busy cycles.

        This is how hard each hart works while it runs -- distinct from
        :attr:`~repro.smp.machine.MultiHartMachine.aggregate_ipc`, which
        divides by *wall* cycles and therefore measures parallel throughput.
        """
        cycles = self.count(HwEvent.CYCLES)
        instructions = self.count(HwEvent.INSTRUCTIONS)
        return instructions / cycles if cycles else 0.0

    def events(self) -> List[HwEvent]:
        seen: List[HwEvent] = []
        for result in self.per_hart:
            for event in result.counts:
                if event not in seen:
                    seen.append(event)
        return seen

    # -- exporters ---------------------------------------------------------------

    def format(self) -> str:
        header = (f"Performance counter stats for {self.platform} "
                  f"(system-wide, {self.cpus} harts):")
        lines = [header, ""]
        columns = [f"cpu{cpu}" for cpu in range(self.cpus)] + ["total"]
        name_width = max([len("event")] +
                         [len(e.value) for e in self.events()] or [5])
        widths = {}
        rows: List[Tuple[str, List[str]]] = []
        for event in self.events():
            cells = [f"{int(self.count_on(cpu, event)):,}"
                     for cpu in range(self.cpus)]
            cells.append(f"{int(self.count(event)):,}")
            rows.append((event.value, cells))
        for index, column in enumerate(columns):
            widths[column] = max([len(column)] +
                                 [len(cells[index]) for _, cells in rows])
        lines.append("  " + "event".ljust(name_width) + "  " +
                     "  ".join(c.rjust(widths[c]) for c in columns))
        for name, cells in rows:
            lines.append("  " + name.ljust(name_width) + "  " +
                         "  ".join(cell.rjust(widths[column])
                                   for column, cell in zip(columns, cells)))
        if self.count(HwEvent.CYCLES) and self.count(HwEvent.INSTRUCTIONS):
            lines.append("")
            lines.append("  IPC (instructions per busy cycle, all harts): "
                         f"{self.ipc:.2f}")
        for event in self.unsupported:
            lines.append(f"  <not supported>  {event.value}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "platform": self.platform,
            "cpus": self.cpus,
            "per_hart": [result.to_dict() for result in self.per_hart],
            "aggregate": {event.value: int(self.count(event))
                          for event in self.events()},
            "ipc": round(self.ipc, 4),
            "unsupported": [event.value for event in self.unsupported],
        }
        if self.schedule is not None:
            payload["schedule"] = self.schedule.to_dict()
        return payload


def smp_stat(machine: MultiHartMachine,
             bodies: Sequence[Tuple[str, ThreadBody]],
             events: Sequence[HwEvent] = DEFAULT_STAT_EVENTS) -> SmpStatResult:
    """Count *events* on every hart while the scheduler runs *bodies*.

    Counting mode is where the fast-dispatch engines batch: no sampling
    counter is armed on any hart, so each quantum's machine ops retire
    through :meth:`~repro.platforms.machine.Machine.execute_batch` with one
    aggregated event-bus pulse per event per chunk.  The per-hart counters
    this function reads (and therefore the cross-hart aggregates) are
    bit-identical to per-op retirement -- only the publication fan-out is
    coalesced.
    """
    if not bodies:
        raise ValueError("smp_stat needs at least one thread body")
    opened, unsupported = machine.open_counting_events(list(events), cpu=-1)
    result = SmpStatResult(platform=machine.name, cpus=machine.cpus,
                           per_hart=[StatResult(platform=machine.name)
                                     for _ in range(machine.cpus)],
                           unsupported=unsupported)
    for handle in opened:
        handle.enable()
    result.schedule = run_threads(machine, bodies)
    for handle in opened:
        handle.disable()
    for handle in opened:
        read = handle.read()
        for cpu, value in read.per_cpu.items():
            result.per_hart[cpu].counts[handle.event] = (
                scale_multiplexed(handle.event.value, value))
        handle.close()
    for per_hart in result.per_hart:
        per_hart.unsupported = list(unsupported)
    return result


@dataclass
class SmpRecordingResult:
    """Samples from one system-wide ``record`` run across all harts."""

    platform: str
    cpus: int
    plan: GroupPlan
    #: One single-hart recording per hart, index == hart id.
    per_hart: List[RecordingResult] = field(default_factory=list)
    #: All harts' samples merged, ordered by (time, cpu); each sample's
    #: ``cpu`` field says which hart took it.
    samples: List[SampleRecord] = field(default_factory=list)
    schedule: Optional[ScheduleTrace] = None

    @property
    def sample_count(self) -> int:
        return len(self.samples)

    @property
    def lost(self) -> int:
        return sum(recording.lost for recording in self.per_hart)

    def samples_on(self, cpu: int) -> List[SampleRecord]:
        return [sample for sample in self.samples if sample.cpu == cpu]

    def total(self, event: HwEvent) -> int:
        """Aggregate final count of *event* across all harts."""
        return sum(recording.total(event) for recording in self.per_hart)

    @property
    def overall_ipc(self) -> float:
        cycles = self.total(HwEvent.CYCLES)
        instructions = self.total(HwEvent.INSTRUCTIONS)
        return instructions / cycles if cycles else 0.0

    @property
    def final_counts(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for recording in self.per_hart:
            for name, value in recording.final_counts.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def describe(self) -> str:
        per_hart = ", ".join(
            f"cpu{index}: {recording.sample_count}"
            for index, recording in enumerate(self.per_hart)
        )
        return (
            f"{self.platform} (system-wide, {self.cpus} harts): "
            f"{self.sample_count} samples ({per_hart}; {self.lost} lost), "
            f"plan: {self.plan.describe()}"
        )

    def to_dict(self, include_samples: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "platform": self.platform,
            "cpus": self.cpus,
            "sample_count": self.sample_count,
            "samples_per_hart": [recording.sample_count
                                 for recording in self.per_hart],
            "lost": self.lost,
            "overall_ipc": round(self.overall_ipc, 4),
            "final_counts": self.final_counts,
            "final_counts_per_hart": [dict(recording.final_counts)
                                      for recording in self.per_hart],
            "plan": {
                "leader": self.plan.leader_event.value,
                "members": [e.value for e in self.plan.member_events],
                "sample_period": self.plan.sample_period,
                "used_workaround": self.plan.used_workaround,
            },
        }
        if self.schedule is not None:
            payload["schedule"] = self.schedule.to_dict()
        if include_samples:
            payload["samples"] = [
                {
                    "cpu": sample.cpu,
                    "ip": sample.ip,
                    "time": sample.time,
                    "callchain": list(sample.callchain),
                    "group_values": dict(sample.group_values),
                }
                for sample in self.samples
            ]
        return payload

    # -- derived analyses --------------------------------------------------------

    def flame_graph(self, weight: str = "samples") -> FlameNode:
        """Merged flame graph; per-hart sub-graphs grafted under cpuN frames.

        Group readouts are cumulative *per hart*, so event-weighted graphs
        must be built per hart (delta streams do not interleave) and merged
        afterwards -- which is also what produces the per-hart frame labels.
        """
        named = {
            f"cpu{index}": build_flame_graph(recording.samples, weight=weight)
            for index, recording in enumerate(self.per_hart)
        }
        return merge_flame_graphs(named)

    def hotspots(self) -> HotspotReport:
        reports = [build_hotspot_report(recording)
                   for recording in self.per_hart]
        return merge_hotspot_reports(self.platform, reports,
                                     overall_ipc=self.overall_ipc)


def smp_record(machine: MultiHartMachine,
               bodies: Sequence[Tuple[str, ThreadBody]],
               events: Sequence[HwEvent] = (HwEvent.CYCLES, HwEvent.INSTRUCTIONS),
               sample_period: int = 50_000,
               callchain: bool = True) -> SmpRecordingResult:
    """Sample every hart while the scheduler runs *bodies*.

    The sampling group (with the X60 group-leader workaround where the
    identified CPU needs it) is opened once per hart; each hart's interrupt
    handler attributes samples to the thread currently scheduled there.
    Raises :class:`~repro.miniperf.groups.SamplingNotSupportedError` on parts
    that cannot sample at all (the U74), like the single-hart path.

    While the leaders are enabled, :meth:`MultiHartMachine.sampling_active`
    is true and every hart's batched retirement falls back to per-op
    retirement, so overflow interrupts fire at the exact triggering op and
    the merged sample stream is bit-identical whichever dispatch engine the
    thread bodies run.
    """
    if not bodies:
        raise ValueError("smp_record needs at least one thread body")
    cpu = identify_machine(machine.hart(0))
    plan = plan_sampling_group(cpu, list(events), sample_period)

    leader_fds: List[int] = []
    member_fds: List[List[int]] = []
    buffers = []
    for hart in machine.harts:
        swapper = machine.swapper_task(hart.hart_id)
        leader_fd = hart.perf.perf_event_open(plan.leader_attr(callchain), swapper)
        members: List[int] = []
        for attr in plan.member_attrs():
            try:
                members.append(
                    hart.perf.perf_event_open(attr, swapper, group_fd=leader_fd))
            except PerfEventOpenError:
                continue
        leader_fds.append(leader_fd)
        member_fds.append(members)
        buffers.append(hart.perf.mmap(leader_fd))

    for hart, leader_fd in zip(machine.harts, leader_fds):
        hart.perf.enable(leader_fd)
    schedule = run_threads(machine, bodies)
    for hart, leader_fd in zip(machine.harts, leader_fds):
        hart.perf.disable(leader_fd)

    per_hart: List[RecordingResult] = []
    for hart, leader_fd, members, buffer in zip(
            machine.harts, leader_fds, member_fds, buffers):
        final = hart.perf.read(leader_fd)
        per_hart.append(RecordingResult(
            platform=machine.name,
            plan=plan,
            samples=buffer.drain(),
            lost=buffer.lost,
            final_counts=dict(final.group),
        ))
        hart.perf.close(leader_fd)
        for fd in members:
            hart.perf.close(fd)

    merged = sorted(
        (sample for recording in per_hart for sample in recording.samples),
        key=lambda sample: (sample.time, sample.cpu),
    )
    return SmpRecordingResult(
        platform=machine.name,
        cpus=machine.cpus,
        plan=plan,
        per_hart=per_hart,
        samples=merged,
        schedule=schedule,
    )


def merge_hotspot_reports(platform: str, reports: Sequence[HotspotReport],
                          overall_ipc: Optional[float] = None) -> HotspotReport:
    """Merge per-hart hotspot tables into one system-wide table."""
    samples: Dict[str, int] = {}
    cycles: Dict[str, int] = {}
    instructions: Dict[str, int] = {}
    total_samples = 0
    for report in reports:
        total_samples += report.total_samples
        for row in report.rows:
            samples[row.function] = samples.get(row.function, 0) + row.samples
            cycles[row.function] = cycles.get(row.function, 0) + row.cycles
            instructions[row.function] = (
                instructions.get(row.function, 0) + row.instructions)
    rows = [
        HotspotRow(
            function=function,
            samples=count,
            total_percent=(100.0 * count / total_samples) if total_samples else 0.0,
            cycles=cycles.get(function, 0),
            instructions=instructions.get(function, 0),
        )
        for function, count in samples.items()
    ]
    rows.sort(key=lambda row: (-row.samples, row.function))
    if overall_ipc is None:
        total_cycles = sum(cycles.values())
        total_instructions = sum(instructions.values())
        overall_ipc = total_instructions / total_cycles if total_cycles else 0.0
    return HotspotReport(platform=f"{platform} (system-wide)", rows=rows,
                         total_samples=total_samples, overall_ipc=overall_ipc)


def aggregate_roofline(result: KernelRooflineResult, cpus: int,
                       shared_levels: Sequence[str] = ("DRAM",)
                       ) -> KernelRooflineResult:
    """Scale a single-hart roofline result to N-hart aggregate roofs.

    Compute scales with the hart count (each hart has its own FP datapath)
    and so do the private cache bandwidths; *shared* levels do not -- the
    memory controller and the shared LLC serve all harts together, which is
    exactly why SMP STREAM curves flatten.  ``shared_levels`` names the
    bandwidth roofs that stay put; the session passes DRAM plus the
    platform's last cache level, matching
    :class:`~repro.smp.memory.SharedMemorySystem`'s private/shared split.
    The measured kernel point is left untouched (it ran on one hart), so the
    plot shows the per-hart achievement against the aggregate ceilings.
    """
    if cpus <= 1:
        return result
    shared = set(shared_levels)
    bandwidth = {
        level: gbps if level in shared else gbps * cpus
        for level, gbps in result.roofs.bandwidth_gbps.items()
    }
    roofs = dataclasses.replace(
        result.roofs,
        peak_gflops=result.roofs.peak_gflops * cpus,
        bandwidth_gbps=bandwidth,
        source=f"{result.roofs.source}, aggregated over {cpus} harts",
    )
    return dataclasses.replace(result, roofs=roofs)
