"""The SBI PMU (hardware performance monitoring) extension.

This is the interface the kernel's RISC-V PMU driver uses to program counters
it is not privileged to touch itself.  The modelled function set follows the
SBI PMU extension: counter discovery, configure-matching, start, stop and
firmware read.  On configure, the firmware writes the vendor event code into
the corresponding ``mhpmevent`` CSR and clears the counter's
``mcountinhibit`` bit; it also sets the ``mcounteren`` bit so Supervisor mode
can subsequently read the counter without another ecall (the optimisation the
paper mentions in Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cpu.events import HwEvent
from repro.isa.csr import CsrFile
from repro.pmu.unit import PmuUnit
from repro.sbi.firmware import SbiError, SbiExtension, SbiRet

#: SBI PMU extension id (from the SBI specification).
SBI_EXT_PMU = 0x504D55  # "PMU"

# Function ids.
PMU_NUM_COUNTERS = 0
PMU_COUNTER_GET_INFO = 1
PMU_COUNTER_CFG_MATCHING = 2
PMU_COUNTER_START = 3
PMU_COUNTER_STOP = 4
PMU_COUNTER_FW_READ = 5

# Flags for counter_config_matching.
CFG_FLAG_SKIP_MATCH = 1 << 0
CFG_FLAG_CLEAR_VALUE = 1 << 1
CFG_FLAG_AUTO_START = 1 << 2

# Flags for counter_start.
START_FLAG_SET_INIT_VALUE = 1 << 0

# Flags for counter_stop.
STOP_FLAG_RESET = 1 << 0


@dataclass
class CounterInfo:
    """What ``PMU_COUNTER_GET_INFO`` reports for one counter."""

    index: int
    is_firmware: bool
    csr_address: int
    width_bits: int


class SbiPmuExtension(SbiExtension):
    """Firmware-side PMU management for one hart.

    The SBI PMU extension is inherently per-hart: counters, selectors and
    ``mcountinhibit`` live in the hart's own CSR file, so each hart of an SMP
    machine gets its own extension instance bound to its own PMU, identified
    by ``hart_id``.
    """

    extension_id = SBI_EXT_PMU

    def __init__(self, csr: CsrFile, pmu: PmuUnit, hart_id: int = 0):
        self.csr = csr
        self.pmu = pmu
        self.hart_id = hart_id
        #: raw selector code -> HwEvent, built from the PMU's vendor table.
        self._code_to_event: Dict[int, HwEvent] = {
            pmu.event_code(event): event for event in pmu.supported_events()
        }

    # -- dispatch -------------------------------------------------------------

    def handle(self, func_id: int, args: Sequence[int]) -> SbiRet:
        if func_id == PMU_NUM_COUNTERS:
            return SbiRet(SbiError.SUCCESS, len(self.pmu.counter_indices()))
        if func_id == PMU_COUNTER_GET_INFO:
            return self._counter_get_info(args)
        if func_id == PMU_COUNTER_CFG_MATCHING:
            return self._counter_config_matching(args)
        if func_id == PMU_COUNTER_START:
            return self._counter_start(args)
        if func_id == PMU_COUNTER_STOP:
            return self._counter_stop(args)
        if func_id == PMU_COUNTER_FW_READ:
            return self._counter_read(args)
        return SbiRet(SbiError.NOT_SUPPORTED)

    # -- helpers ---------------------------------------------------------------

    def event_for_code(self, code: int) -> Optional[HwEvent]:
        return self._code_to_event.get(code)

    def _counter_get_info(self, args: Sequence[int]) -> SbiRet:
        if not args:
            return SbiRet(SbiError.INVALID_PARAM)
        index = args[0]
        if index not in self.pmu.counter_indices():
            return SbiRet(SbiError.INVALID_PARAM)
        counter = self.pmu.counter(index)
        # Encode "width" and "sampling capable" the way tests need them:
        # value = width_bits | (sampling << 8).
        value = counter.width_bits | (int(counter.supports_sampling) << 8)
        return SbiRet(SbiError.SUCCESS, value)

    def _counter_config_matching(self, args: Sequence[int]) -> SbiRet:
        """args = [counter_base, counter_mask, flags, event_code]."""
        if len(args) < 4:
            return SbiRet(SbiError.INVALID_PARAM)
        counter_base, counter_mask, flags, event_code = args[:4]
        event = self.event_for_code(event_code)
        if event is None:
            return SbiRet(SbiError.NOT_SUPPORTED)

        candidates = self._candidate_indices(counter_base, counter_mask)
        chosen = self._match_counter(event, candidates)
        if chosen is None:
            return SbiRet(SbiError.NOT_SUPPORTED)

        # Program the event selector CSR for generic counters.
        if chosen >= PmuUnit.FIRST_GENERIC_INDEX:
            self.csr.set_event_selector(chosen, event_code)
        self.pmu.configure_counter(chosen, event)
        if flags & CFG_FLAG_CLEAR_VALUE:
            self.pmu.counter(chosen).reset()
            self.csr.set_counter_value(chosen, 0)
        # Delegate direct reads of this counter to Supervisor mode.
        self.csr.delegate_to_supervisor(chosen, True)
        self.csr.set_counter_inhibit(chosen, False)
        if flags & CFG_FLAG_AUTO_START:
            self.pmu.start_counter(chosen)
        return SbiRet(SbiError.SUCCESS, chosen)

    def _candidate_indices(self, base: int, mask: int) -> List[int]:
        implemented = set(self.pmu.counter_indices())
        out = []
        for bit in range(64):
            if mask & (1 << bit):
                index = base + bit
                if index in implemented:
                    out.append(index)
        return out

    def _match_counter(self, event: HwEvent, candidates: List[int]) -> Optional[int]:
        fixed = self.pmu.fixed_counter_for(event)
        if fixed is not None:
            return fixed if fixed in candidates else None
        for index in candidates:
            if index < PmuUnit.FIRST_GENERIC_INDEX:
                continue
            counter = self.pmu.counter(index)
            if counter.event is None and not counter.running:
                return index
        return None

    def _counter_start(self, args: Sequence[int]) -> SbiRet:
        """args = [counter_index, flags, initial_value]."""
        if not args:
            return SbiRet(SbiError.INVALID_PARAM)
        index = args[0]
        flags = args[1] if len(args) > 1 else 0
        initial = args[2] if len(args) > 2 else 0
        if index not in self.pmu.counter_indices():
            return SbiRet(SbiError.INVALID_PARAM)
        counter = self.pmu.counter(index)
        if counter.running:
            return SbiRet(SbiError.ALREADY_STARTED)
        if flags & START_FLAG_SET_INIT_VALUE:
            counter.reset(initial)
            self.csr.set_counter_value(index, initial)
        self.pmu.start_counter(index)
        return SbiRet(SbiError.SUCCESS)

    def _counter_stop(self, args: Sequence[int]) -> SbiRet:
        """args = [counter_index, flags]."""
        if not args:
            return SbiRet(SbiError.INVALID_PARAM)
        index = args[0]
        flags = args[1] if len(args) > 1 else 0
        if index not in self.pmu.counter_indices():
            return SbiRet(SbiError.INVALID_PARAM)
        counter = self.pmu.counter(index)
        if not counter.running:
            return SbiRet(SbiError.ALREADY_STOPPED)
        self.pmu.stop_counter(index)
        if flags & STOP_FLAG_RESET:
            self.pmu.release_counter(index)
        return SbiRet(SbiError.SUCCESS)

    def _counter_read(self, args: Sequence[int]) -> SbiRet:
        if not args:
            return SbiRet(SbiError.INVALID_PARAM)
        index = args[0]
        if index not in self.pmu.counter_indices():
            return SbiRet(SbiError.INVALID_PARAM)
        return SbiRet(SbiError.SUCCESS, self.pmu.read_counter(index))
