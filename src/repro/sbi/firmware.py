"""The OpenSBI firmware core: ecall dispatch and the base extension."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.isa.csr import CsrFile
from repro.isa.privilege import PrivilegeMode


class SbiError(enum.IntEnum):
    """SBI return error codes (subset of the SBI specification)."""

    SUCCESS = 0
    FAILED = -1
    NOT_SUPPORTED = -2
    INVALID_PARAM = -3
    DENIED = -4
    INVALID_ADDRESS = -5
    ALREADY_AVAILABLE = -6
    ALREADY_STARTED = -7
    ALREADY_STOPPED = -8


@dataclass(frozen=True)
class SbiRet:
    """The ``(error, value)`` pair every SBI call returns."""

    error: SbiError
    value: int = 0

    @property
    def ok(self) -> bool:
        return self.error is SbiError.SUCCESS


# Extension ids.
SBI_EXT_BASE = 0x10

# Base extension function ids.
BASE_GET_SPEC_VERSION = 0
BASE_GET_IMPL_ID = 1
BASE_GET_IMPL_VERSION = 2
BASE_PROBE_EXTENSION = 3
BASE_GET_MVENDORID = 4
BASE_GET_MARCHID = 5
BASE_GET_MIMPID = 6

#: OpenSBI's implementation id in the SBI spec registry.
OPENSBI_IMPL_ID = 1
#: Modelled SBI specification version (v2.0 encoded as major<<24 | minor).
SBI_SPEC_VERSION = (2 << 24) | 0


class SbiExtension:
    """Interface for SBI extensions registered with the firmware."""

    extension_id: int = 0

    def handle(self, func_id: int, args: Sequence[int]) -> SbiRet:
        raise NotImplementedError


class OpenSbi:
    """Machine-mode firmware for one hart.

    The firmware is the only agent allowed to touch machine-level CSRs; the
    kernel reaches it exclusively through :meth:`ecall`, mirroring the
    privilege boundary on real hardware.  On an SMP machine every hart runs
    its own firmware context (OpenSBI keeps per-hart scratch state); the
    ``hart_id`` identifies which hart this context serves.
    """

    def __init__(self, csr: CsrFile, hart_id: int = 0):
        self.csr = csr
        self.hart_id = hart_id
        self._extensions: Dict[int, SbiExtension] = {}
        self.ecall_count = 0

    def register_extension(self, extension: SbiExtension) -> None:
        self._extensions[extension.extension_id] = extension

    def has_extension(self, extension_id: int) -> bool:
        return extension_id in self._extensions or extension_id == SBI_EXT_BASE

    # -- the ecall boundary ------------------------------------------------------

    def ecall(
        self,
        extension_id: int,
        func_id: int,
        args: Sequence[int] = (),
        caller_mode: PrivilegeMode = PrivilegeMode.SUPERVISOR,
    ) -> SbiRet:
        """Handle an environment call from *caller_mode*.

        User mode cannot issue SBI calls directly (they trap to the kernel
        first); a call from U-mode is therefore denied here.
        """
        self.ecall_count += 1
        if caller_mode is PrivilegeMode.USER:
            return SbiRet(SbiError.DENIED)
        if extension_id == SBI_EXT_BASE:
            return self._handle_base(func_id, args)
        extension = self._extensions.get(extension_id)
        if extension is None:
            return SbiRet(SbiError.NOT_SUPPORTED)
        return extension.handle(func_id, list(args))

    # -- base extension ----------------------------------------------------------

    def _handle_base(self, func_id: int, args: Sequence[int]) -> SbiRet:
        if func_id == BASE_GET_SPEC_VERSION:
            return SbiRet(SbiError.SUCCESS, SBI_SPEC_VERSION)
        if func_id == BASE_GET_IMPL_ID:
            return SbiRet(SbiError.SUCCESS, OPENSBI_IMPL_ID)
        if func_id == BASE_GET_IMPL_VERSION:
            return SbiRet(SbiError.SUCCESS, 0x10004)
        if func_id == BASE_PROBE_EXTENSION:
            if not args:
                return SbiRet(SbiError.INVALID_PARAM)
            return SbiRet(SbiError.SUCCESS, 1 if self.has_extension(args[0]) else 0)
        if func_id == BASE_GET_MVENDORID:
            return SbiRet(SbiError.SUCCESS, self.csr.identity.mvendorid)
        if func_id == BASE_GET_MARCHID:
            return SbiRet(SbiError.SUCCESS, self.csr.identity.marchid)
        if func_id == BASE_GET_MIMPID:
            return SbiRet(SbiError.SUCCESS, self.csr.identity.mimpid)
        return SbiRet(SbiError.NOT_SUPPORTED)
