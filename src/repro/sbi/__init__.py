"""OpenSBI firmware model.

On RISC-V the Linux kernel (Supervisor mode) cannot touch machine-level PMU
CSRs, so it calls into Machine-mode firmware via the SBI ``ecall`` interface.
This package models that firmware layer: the SBI base extension, the PMU
(HPM) extension the kernel PMU driver uses, and the ``mcounteren`` delegation
that lets the kernel read counters directly afterwards (paper Section 3.2 and
Figure 1).
"""

from repro.sbi.firmware import OpenSbi, SbiRet, SbiError
from repro.sbi.pmu_ext import (
    SBI_EXT_PMU,
    PMU_COUNTER_CFG_MATCHING,
    PMU_COUNTER_START,
    PMU_COUNTER_STOP,
    PMU_COUNTER_FW_READ,
    PMU_NUM_COUNTERS,
    PMU_COUNTER_GET_INFO,
    SbiPmuExtension,
)

__all__ = [
    "OpenSbi",
    "SbiRet",
    "SbiError",
    "SbiPmuExtension",
    "SBI_EXT_PMU",
    "PMU_NUM_COUNTERS",
    "PMU_COUNTER_GET_INFO",
    "PMU_COUNTER_CFG_MATCHING",
    "PMU_COUNTER_START",
    "PMU_COUNTER_STOP",
    "PMU_COUNTER_FW_READ",
]
