"""Linux-like ``perf_event`` subsystem model.

The paper's PMU workaround is entirely a property of how the Linux
``perf_event`` subsystem schedules *event groups* onto hardware counters and
what it records when a sampling leader overflows.  This package implements
those semantics:

* :mod:`repro.kernel.task` -- the profiled task and its call-chain capture.
* :mod:`repro.kernel.ring_buffer` -- the mmap'd sample ring buffer.
* :mod:`repro.kernel.drivers` -- architecture PMU drivers (RISC-V via SBI,
  x86 direct).
* :mod:`repro.kernel.perf_event` -- ``perf_event_open``, event groups,
  enable/disable/read, sampling and overflow handling.
"""

from repro.kernel.task import Task, StackFrame
from repro.kernel.ring_buffer import RingBuffer, SampleRecord
from repro.kernel.drivers import PmuDriver, RiscvSbiPmuDriver, X86PmuDriver, EventInitError
from repro.kernel.perf_event import (
    PerfEventAttr,
    PerfEvent,
    PerfEventSubsystem,
    PerfEventOpenError,
    PerfReadValue,
    SampleType,
    ReadFormat,
)

__all__ = [
    "Task",
    "StackFrame",
    "RingBuffer",
    "SampleRecord",
    "PmuDriver",
    "RiscvSbiPmuDriver",
    "X86PmuDriver",
    "EventInitError",
    "PerfEventAttr",
    "PerfEvent",
    "PerfEventSubsystem",
    "PerfEventOpenError",
    "PerfReadValue",
    "SampleType",
    "ReadFormat",
]
