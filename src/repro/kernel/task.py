"""The profiled task and call-chain capture.

When a sampling counter overflows, the kernel's interrupt handler records the
interrupted context: program counter, pid/tid and -- when requested -- the
call chain.  In this model the execution engines (the IR interpreter and the
synthetic trace executor) keep an explicit call stack on the task, so the
"interrupt handler" can simply snapshot it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class StackFrame:
    """One frame of the profiled task's call stack."""

    function: str
    pc: int = 0
    source_file: str = ""
    line: int = 0

    def __str__(self) -> str:
        return self.function


class Task:
    """A profiled process/thread.

    The execution engine pushes and pops frames as the program calls and
    returns; :meth:`callchain` returns the leaf-first chain exactly like
    ``PERF_SAMPLE_CALLCHAIN`` does.
    """

    _next_pid = 1000

    def __init__(self, name: str, pid: Optional[int] = None, tid: Optional[int] = None):
        if pid is None:
            pid = Task._next_pid
            Task._next_pid += 1
        self.name = name
        self.pid = pid
        self.tid = tid if tid is not None else pid
        self._stack: List[StackFrame] = []
        self.current_pc = 0
        #: Set to True while the task executes in kernel context (so perf's
        #: exclude_kernel / exclude_user filters have something to act on).
        self.in_kernel = False

    # -- call stack maintenance (used by execution engines) -----------------------

    def push_frame(self, function: str, pc: int = 0, source_file: str = "",
                   line: int = 0) -> StackFrame:
        frame = StackFrame(function=function, pc=pc, source_file=source_file, line=line)
        self._stack.append(frame)
        return frame

    def pop_frame(self) -> StackFrame:
        if not self._stack:
            raise RuntimeError(f"task {self.name}: pop from empty call stack")
        return self._stack.pop()

    def set_pc(self, pc: int) -> None:
        self.current_pc = pc

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current_function(self) -> str:
        return self._stack[-1].function if self._stack else "<unknown>"

    # -- sampling-side API -----------------------------------------------------------

    def callchain(self) -> Tuple[str, ...]:
        """Return the call chain, leaf (currently executing function) first."""
        return tuple(frame.function for frame in reversed(self._stack))

    def callchain_frames(self) -> Tuple[StackFrame, ...]:
        return tuple(reversed(self._stack))

    def __repr__(self) -> str:
        return f"Task(name={self.name!r}, pid={self.pid}, depth={self.depth})"
