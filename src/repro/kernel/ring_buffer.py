"""The perf mmap ring buffer and sample records.

Real perf transfers samples to user space through a ring buffer mapped into
the profiler's address space; when the profiler cannot drain it fast enough,
records are dropped and accounted as "lost".  We keep that behaviour because
sampling-period ablations need to show the lost-sample cliff.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class SampleRecord:
    """One PERF_RECORD_SAMPLE."""

    ip: int
    pid: int
    tid: int
    time: int
    period: int
    event: str                               # name of the overflowing event
    callchain: Tuple[str, ...] = ()
    #: Group readout at sample time: event name -> count (PERF_SAMPLE_READ
    #: with PERF_FORMAT_GROUP).  This is what makes the X60 workaround give
    #: IPC per sample.
    group_values: Dict[str, int] = field(default_factory=dict)
    cpu: int = 0

    @property
    def leaf_function(self) -> str:
        return self.callchain[0] if self.callchain else "<unknown>"


class RingBuffer:
    """A bounded FIFO of sample records with lost-record accounting."""

    def __init__(self, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: Deque[SampleRecord] = deque()
        self.lost = 0
        self.total_written = 0

    def write(self, record: SampleRecord) -> bool:
        """Append a record; returns False (and counts it lost) when full."""
        if len(self._records) >= self.capacity:
            self.lost += 1
            return False
        self._records.append(record)
        self.total_written += 1
        return True

    def read(self) -> Optional[SampleRecord]:
        """Pop the oldest record, or None when empty."""
        if not self._records:
            return None
        return self._records.popleft()

    def drain(self) -> List[SampleRecord]:
        """Read and return every pending record."""
        out = list(self._records)
        self._records.clear()
        return out

    def peek_all(self) -> List[SampleRecord]:
        """Return pending records without consuming them."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SampleRecord]:
        return iter(list(self._records))

    def __repr__(self) -> str:
        return (
            f"RingBuffer(pending={len(self._records)}, written={self.total_written}, "
            f"lost={self.lost}, capacity={self.capacity})"
        )
