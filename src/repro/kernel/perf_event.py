"""The ``perf_event`` core: event groups, scheduling, sampling, reads.

This module reproduces the subset of Linux perf_event semantics the paper's
workaround depends on:

* ``perf_event_open()`` validates the request against the architecture PMU
  driver and returns a file descriptor; unsupported sampling requests fail
  with ``EOPNOTSUPP`` exactly like the real syscall does on the SpacemiT X60.
* Events form *groups*: a leader plus siblings that are scheduled onto the
  PMU together and can be read as a unit (``PERF_FORMAT_GROUP``).
* A sampling event (``sample_period > 0``) arms an overflow interrupt on its
  hardware counter.  When it fires, the "interrupt handler" records a sample:
  instruction pointer, call chain and -- when ``PERF_SAMPLE_READ`` is set --
  the values of *every* counter in the group.  That last part is the
  mechanism the paper exploits: make a sampling-capable vendor counter the
  leader and cycles/instructions ride along in each sample.
* Events that cannot all fit on hardware are multiplexed; reads report
  ``time_enabled``/``time_running`` so users can scale counts, and miniperf's
  correction layer does exactly that.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.cpu.events import HwEvent
from repro.kernel.drivers import AllocatedCounter, EventInitError, PmuDriver
from repro.kernel.ring_buffer import RingBuffer, SampleRecord
from repro.kernel.task import Task
from repro.pmu.counters import CounterOverflow


class SampleType(enum.Enum):
    """What gets recorded in each sample (PERF_SAMPLE_*)."""

    IP = "ip"
    TID = "tid"
    TIME = "time"
    CALLCHAIN = "callchain"
    READ = "read"
    PERIOD = "period"


class ReadFormat(enum.Enum):
    """How counter reads are formatted (PERF_FORMAT_*)."""

    GROUP = "group"
    TOTAL_TIME_ENABLED = "total_time_enabled"
    TOTAL_TIME_RUNNING = "total_time_running"


class PerfEventOpenError(OSError):
    """Raised when perf_event_open() fails; carries an errno name."""

    def __init__(self, errno_name: str, message: str):
        super().__init__(message)
        self.errno_name = errno_name

    def __reduce__(self):
        # A Run carries its failures across process boundaries (the parallel
        # run executor pickles Runs); rebuild with both constructor args --
        # the OSError default would replay only ``args`` and lose one.
        return (type(self), (self.errno_name, self.args[0]))


@dataclass(frozen=True)
class PerfEventAttr:
    """The subset of ``struct perf_event_attr`` the model needs."""

    event: HwEvent
    sample_period: int = 0
    sample_type: FrozenSet[SampleType] = frozenset()
    read_format: FrozenSet[ReadFormat] = frozenset()
    disabled: bool = True
    exclude_kernel: bool = False
    exclude_user: bool = False

    @property
    def is_sampling(self) -> bool:
        return self.sample_period > 0


@dataclass
class PerfReadValue:
    """Result of reading an event (or an event group)."""

    value: int
    time_enabled: int
    time_running: int
    #: Present when the event was read with PERF_FORMAT_GROUP: one entry per
    #: group member, leader first, keyed by event name.
    group: Dict[str, int] = field(default_factory=dict)

    @property
    def scaling_factor(self) -> float:
        """Multiplexing correction factor (1.0 when never descheduled)."""
        if self.time_running == 0:
            return 0.0
        return self.time_enabled / self.time_running

    @property
    def scaled_value(self) -> float:
        return self.value * self.scaling_factor


class _EventState(enum.Enum):
    OFF = "off"              # disabled
    INACTIVE = "inactive"    # enabled but not on hardware (multiplexed out)
    ACTIVE = "active"        # counting on hardware


class PerfEvent:
    """Kernel-side state of one opened perf event."""

    def __init__(self, fd: int, attr: PerfEventAttr, task: Task,
                 leader: Optional["PerfEvent"] = None):
        self.fd = fd
        self.attr = attr
        self.task = task
        self.leader = leader or self
        self.siblings: List["PerfEvent"] = []   # populated on the leader only
        self.state = _EventState.OFF
        self.allocated: Optional[AllocatedCounter] = None
        self.ring_buffer: Optional[RingBuffer] = None
        self.accumulated = 0                    # count carried over descheduling
        self.time_enabled = 0
        self.time_running = 0
        self._enable_timestamp = 0
        self._run_timestamp = 0
        self.samples_taken = 0

    @property
    def is_leader(self) -> bool:
        return self.leader is self

    def group_events(self) -> List["PerfEvent"]:
        """The whole group, leader first (valid on any member)."""
        return [self.leader] + self.leader.siblings

    def __repr__(self) -> str:
        return (
            f"PerfEvent(fd={self.fd}, event={self.attr.event.value}, "
            f"state={self.state.value}, leader_fd={self.leader.fd})"
        )


class PerfEventSubsystem:
    """The per-machine perf_event core.

    Parameters
    ----------
    driver:
        The architecture PMU driver for the machine.
    clock:
        A callable returning the current time in machine cycles; used for
        ``time_enabled``/``time_running`` accounting and sample timestamps.
    cpu:
        Logical CPU (hart) index this subsystem belongs to; stamped into
        every sample so multi-hart recordings keep per-hart streams apart.
    current_task:
        Optional provider of the task currently running on this CPU.  When
        it returns a task, sampling interrupts attribute to that task rather
        than the event's opening task -- the system-wide (``cpu=-1``-style)
        attribution semantics.  When None or returning None, samples
        attribute to the opening task exactly as before.
    """

    def __init__(self, driver: PmuDriver, clock: Callable[[], int],
                 cpu: int = 0,
                 current_task: Optional[Callable[[], Optional[Task]]] = None):
        self.driver = driver
        self.clock = clock
        self.cpu = cpu
        self.current_task = current_task
        self._events: Dict[int, PerfEvent] = {}
        self._fd_counter = itertools.count(3)
        self.overflow_interrupts = 0

    # -- syscall surface ---------------------------------------------------------

    def perf_event_open(self, attr: PerfEventAttr, task: Task,
                        group_fd: int = -1) -> int:
        """Open a new event; returns a file descriptor or raises.

        Mirrors the syscall's error behaviour: ``ENOENT`` for events the PMU
        does not expose, ``EOPNOTSUPP`` for sampling requests the hardware
        cannot honour, ``EBADF`` for a bogus group fd.
        """
        leader: Optional[PerfEvent] = None
        if group_fd != -1:
            leader = self._events.get(group_fd)
            if leader is None or not leader.is_leader:
                raise PerfEventOpenError("EBADF", f"invalid group fd {group_fd}")

        try:
            self.driver.event_init(attr.event, sampling=attr.is_sampling)
        except EventInitError as exc:
            raise PerfEventOpenError(exc.errno_name, str(exc))

        fd = next(self._fd_counter)
        event = PerfEvent(fd, attr, task, leader=leader)
        if leader is not None:
            leader.siblings.append(event)
        if attr.is_sampling:
            event.ring_buffer = RingBuffer()
        self._events[fd] = event
        return fd

    def event(self, fd: int) -> PerfEvent:
        try:
            return self._events[fd]
        except KeyError:
            raise PerfEventOpenError("EBADF", f"unknown perf fd {fd}")

    def mmap(self, fd: int) -> RingBuffer:
        """Return the ring buffer of a sampling event (perf's mmap step)."""
        event = self.event(fd)
        if event.ring_buffer is None:
            raise PerfEventOpenError(
                "EINVAL", f"fd {fd} is a counting event; it has no ring buffer"
            )
        return event.ring_buffer

    # -- enable / disable -----------------------------------------------------------

    def enable(self, fd: int, whole_group: bool = True) -> None:
        """PERF_EVENT_IOC_ENABLE (optionally with IOC_FLAG_GROUP semantics)."""
        event = self.event(fd)
        targets = event.group_events() if whole_group and event.is_leader else [event]
        for target in targets:
            self._enable_one(target)

    def disable(self, fd: int, whole_group: bool = True) -> None:
        event = self.event(fd)
        targets = event.group_events() if whole_group and event.is_leader else [event]
        for target in targets:
            self._disable_one(target)

    def close(self, fd: int) -> None:
        event = self._events.pop(fd, None)
        if event is None:
            return
        self._disable_one(event)
        if not event.is_leader and event in event.leader.siblings:
            event.leader.siblings.remove(event)

    def _enable_one(self, event: PerfEvent) -> None:
        if event.state is not _EventState.OFF:
            return
        now = self.clock()
        event._enable_timestamp = now
        event.state = _EventState.INACTIVE
        self._schedule(event)

    def _schedule(self, event: PerfEvent) -> None:
        """Try to put an enabled event onto a hardware counter."""
        if event.state is not _EventState.INACTIVE:
            return
        handler = None
        if event.attr.is_sampling:
            handler = self._make_overflow_handler(event)
        try:
            event.allocated = self.driver.add(
                event.attr.event,
                sample_period=event.attr.sample_period,
                overflow_handler=handler,
            )
        except EventInitError:
            # Could not get a counter right now: stays INACTIVE (multiplexed
            # out); time_enabled accrues while time_running does not.
            event.allocated = None
            return
        except RuntimeError:
            event.allocated = None
            return
        event.state = _EventState.ACTIVE
        event._run_timestamp = self.clock()

    def _disable_one(self, event: PerfEvent) -> None:
        if event.state is _EventState.OFF:
            return
        now = self.clock()
        event.time_enabled += now - event._enable_timestamp
        if event.state is _EventState.ACTIVE:
            event.time_running += now - event._run_timestamp
            assert event.allocated is not None
            event.accumulated += self.driver.read(event.allocated)
            self.driver.remove(event.allocated)
            event.allocated = None
        event.state = _EventState.OFF

    def rotate(self) -> None:
        """Multiplexing rotation: deschedule active events, schedule waiting ones.

        The real kernel does this from a timer tick; callers that open more
        events than the PMU has counters should invoke it periodically.
        """
        now = self.clock()
        active = [e for e in self._events.values() if e.state is _EventState.ACTIVE]
        waiting = [e for e in self._events.values() if e.state is _EventState.INACTIVE]
        if not waiting:
            return
        for event in active:
            event.time_running += now - event._run_timestamp
            assert event.allocated is not None
            event.accumulated += self.driver.read(event.allocated)
            self.driver.remove(event.allocated)
            event.allocated = None
            event.state = _EventState.INACTIVE
        for event in waiting + active:
            self._schedule(event)

    # -- reads -------------------------------------------------------------------------

    def read(self, fd: int) -> PerfReadValue:
        event = self.event(fd)
        value = self._current_count(event)
        enabled, running = self._current_times(event)
        group: Dict[str, int] = {}
        if ReadFormat.GROUP in event.attr.read_format:
            for member in event.group_events():
                group[member.attr.event.value] = self._current_count(member)
        return PerfReadValue(
            value=value, time_enabled=enabled, time_running=running, group=group
        )

    def _current_count(self, event: PerfEvent) -> int:
        value = event.accumulated
        if event.state is _EventState.ACTIVE and event.allocated is not None:
            value += self.driver.read(event.allocated)
        return value

    def _current_times(self, event: PerfEvent):
        now = self.clock()
        enabled = event.time_enabled
        running = event.time_running
        if event.state is not _EventState.OFF:
            enabled += now - event._enable_timestamp
        if event.state is _EventState.ACTIVE:
            running += now - event._run_timestamp
        return enabled, running

    # -- sampling ------------------------------------------------------------------------

    def _make_overflow_handler(self, event: PerfEvent):
        def handler(overflow: CounterOverflow) -> None:
            self._record_sample(event, overflow)
        return handler

    def _record_sample(self, event: PerfEvent, overflow: CounterOverflow) -> None:
        """The PMU interrupt handler: snapshot context, write a sample."""
        self.overflow_interrupts += 1
        task = event.task
        if self.current_task is not None:
            running = self.current_task()
            if running is not None:
                task = running
        if event.attr.exclude_kernel and task.in_kernel:
            return
        if event.attr.exclude_user and not task.in_kernel:
            return

        callchain = ()
        if SampleType.CALLCHAIN in event.attr.sample_type:
            callchain = task.callchain()

        group_values: Dict[str, int] = {}
        if SampleType.READ in event.attr.sample_type:
            members = (
                event.group_events()
                if ReadFormat.GROUP in event.attr.read_format
                else [event]
            )
            for member in members:
                group_values[member.attr.event.value] = self._current_count(member)

        record = SampleRecord(
            ip=task.current_pc,
            pid=task.pid,
            tid=task.tid,
            time=self.clock(),
            period=overflow.period,
            event=event.attr.event.value,
            callchain=callchain,
            group_values=group_values,
            cpu=self.cpu,
        )
        buffer = event.ring_buffer
        if buffer is None:
            buffer = event.leader.ring_buffer
        if buffer is not None:
            buffer.write(record)
            event.samples_taken += 1

    # -- diagnostics ---------------------------------------------------------------------

    def open_events(self) -> List[PerfEvent]:
        return list(self._events.values())

    def __repr__(self) -> str:
        return (
            f"PerfEventSubsystem(driver={self.driver.name}, "
            f"open_events={len(self._events)}, interrupts={self.overflow_interrupts})"
        )
