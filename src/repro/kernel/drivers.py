"""Architecture PMU drivers.

The ``perf_event`` core is architecture-agnostic; the architecture driver is
what actually programs counters.  Two drivers are modelled:

* :class:`RiscvSbiPmuDriver` -- the upstream RISC-V driver: counter
  configuration goes through SBI ecalls (the kernel cannot write machine-level
  CSRs itself), counter reads use the delegated user/supervisor shadow CSRs
  when ``mcounteren`` allows it and fall back to ``PMU_COUNTER_FW_READ``
  otherwise.  Overflow-interrupt capability is taken from the hardware, so the
  SpacemiT X60 quirk (no sampling on cycles/instret) surfaces here as
  ``EventInitError(EOPNOTSUPP)`` -- exactly the errno real perf reports.
* :class:`X86PmuDriver` -- the comparator platform's driver, which programs
  counters directly (no firmware hop) and supports sampling on everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cpu.events import HwEvent
from repro.isa.csr import CsrFile, user_counter_csr
from repro.isa.privilege import PrivilegeMode
from repro.pmu.counters import CounterOverflow, SamplingUnsupportedError
from repro.pmu.unit import PmuUnit
from repro.sbi.firmware import OpenSbi, SbiError
from repro.sbi.pmu_ext import (
    CFG_FLAG_AUTO_START,
    CFG_FLAG_CLEAR_VALUE,
    PMU_COUNTER_CFG_MATCHING,
    PMU_COUNTER_FW_READ,
    PMU_COUNTER_START,
    PMU_COUNTER_STOP,
    SBI_EXT_PMU,
    STOP_FLAG_RESET,
)


class EventInitError(Exception):
    """Raised when the driver cannot initialise an event.

    ``errno_name`` mirrors the errno real perf_event_open() would return:
    ``ENOENT`` for an unsupported event, ``EOPNOTSUPP`` when sampling is
    requested but the counter cannot raise overflow interrupts.
    """

    def __init__(self, errno_name: str, message: str):
        super().__init__(message)
        self.errno_name = errno_name


#: Handler invoked by the driver when an armed counter overflows.
DriverOverflowHandler = Callable[[CounterOverflow], None]


@dataclass
class AllocatedCounter:
    """Book-keeping for one hardware counter the driver has claimed."""

    index: int
    event: HwEvent
    base_value: int = 0


class PmuDriver:
    """Interface the perf_event core expects from an architecture driver."""

    #: Human-readable driver name (shows up in diagnostics).
    name = "generic"

    def supports_event(self, event: HwEvent) -> bool:
        raise NotImplementedError

    def event_supports_sampling(self, event: HwEvent) -> bool:
        raise NotImplementedError

    def event_init(self, event: HwEvent, sampling: bool) -> None:
        """Validate that *event* can be counted (and sampled if requested)."""
        raise NotImplementedError

    def add(self, event: HwEvent, sample_period: int = 0,
            overflow_handler: Optional[DriverOverflowHandler] = None) -> AllocatedCounter:
        """Allocate, configure and start a hardware counter for *event*."""
        raise NotImplementedError

    def remove(self, allocated: AllocatedCounter) -> None:
        """Stop and release a previously added counter."""
        raise NotImplementedError

    def read(self, allocated: AllocatedCounter) -> int:
        """Read the current raw value of the counter."""
        raise NotImplementedError

    @property
    def num_counters(self) -> int:
        raise NotImplementedError


class RiscvSbiPmuDriver(PmuDriver):
    """The RISC-V perf driver: SBI-mediated counter management.

    Parameters
    ----------
    sbi / csr / pmu:
        The firmware, CSR file and PMU of the hart being driven.
    vendor_driver:
        Whether vendor kernel patches are present.  Platforms with no
        upstream support (SpacemiT X60) expose their vendor-specific events
        (the mode-cycle counters) only when this is True; without it the
        driver behaves like a stock kernel that merely counts cycles and
        instructions and cannot sample anything on such parts.
    """

    name = "riscv-sbi-pmu"

    def __init__(self, sbi: OpenSbi, csr: CsrFile, pmu: PmuUnit,
                 vendor_driver: bool = True, hart_id: int = 0):
        self.sbi = sbi
        self.csr = csr
        self.pmu = pmu
        self.vendor_driver = vendor_driver
        #: Which hart's counters this driver instance programs (the real
        #: driver keeps per-CPU state for exactly this reason).
        self.hart_id = hart_id
        self.sbi_read_fallbacks = 0
        self.direct_reads = 0

    # -- capability -------------------------------------------------------------

    def _event_visible(self, event: HwEvent) -> bool:
        if not self.pmu.supports_event(event):
            return False
        if not self.vendor_driver:
            # A stock kernel only knows about the architecturally defined
            # events; vendor-specific raw events need the vendor driver.
            return event.value in (
                "cycles", "instructions", "cache-references", "cache-misses",
                "branch-instructions", "branch-misses",
            )
        return True

    def supports_event(self, event: HwEvent) -> bool:
        return self._event_visible(event)

    def event_supports_sampling(self, event: HwEvent) -> bool:
        if not self._event_visible(event):
            return False
        return self.pmu.event_supports_sampling(event)

    def event_init(self, event: HwEvent, sampling: bool) -> None:
        if not self._event_visible(event):
            raise EventInitError(
                "ENOENT",
                f"{self.pmu.capabilities.core}: event {event.value} is not exposed "
                f"by the {'vendor' if self.vendor_driver else 'upstream'} driver",
            )
        if sampling and not self.pmu.event_supports_sampling(event):
            raise EventInitError(
                "EOPNOTSUPP",
                f"{self.pmu.capabilities.core}: counter for {event.value} cannot "
                "generate overflow interrupts; sampling is not possible",
            )

    # -- counter management ------------------------------------------------------

    def add(self, event: HwEvent, sample_period: int = 0,
            overflow_handler: Optional[DriverOverflowHandler] = None) -> AllocatedCounter:
        self.event_init(event, sampling=sample_period > 0)
        try:
            index = self.pmu.allocate_counter(event, need_sampling=sample_period > 0)
        except SamplingUnsupportedError as exc:
            raise EventInitError("EOPNOTSUPP", str(exc))

        code = self.pmu.event_code(event)
        ret = self.sbi.ecall(
            SBI_EXT_PMU,
            PMU_COUNTER_CFG_MATCHING,
            [index, 1, CFG_FLAG_CLEAR_VALUE, code],
            caller_mode=PrivilegeMode.SUPERVISOR,
        )
        if not ret.ok:
            raise EventInitError(
                "EINVAL", f"SBI counter_config_matching failed: {ret.error.name}"
            )
        chosen = ret.value
        if sample_period > 0 and overflow_handler is not None:
            self.pmu.arm_sampling(chosen, sample_period, overflow_handler)
        start = self.sbi.ecall(
            SBI_EXT_PMU, PMU_COUNTER_START, [chosen, 0, 0],
            caller_mode=PrivilegeMode.SUPERVISOR,
        )
        if not start.ok and start.error is not SbiError.ALREADY_STARTED:
            raise EventInitError("EINVAL", f"SBI counter_start failed: {start.error.name}")
        base = self.pmu.read_counter(chosen)
        return AllocatedCounter(index=chosen, event=event, base_value=base)

    def remove(self, allocated: AllocatedCounter) -> None:
        self.pmu.counter(allocated.index).disarm_sampling()
        self.sbi.ecall(
            SBI_EXT_PMU, PMU_COUNTER_STOP, [allocated.index, STOP_FLAG_RESET],
            caller_mode=PrivilegeMode.SUPERVISOR,
        )

    def read(self, allocated: AllocatedCounter) -> int:
        """Read the counter delta since it was added.

        Prefers the delegated shadow CSR (a direct Supervisor-mode read, no
        ecall); falls back to the SBI firmware read when not delegated.
        """
        index = allocated.index
        raw: int
        if self.csr.supervisor_can_read(index):
            self.direct_reads += 1
            raw = self.pmu.read_counter(index)
        else:
            self.sbi_read_fallbacks += 1
            ret = self.sbi.ecall(
                SBI_EXT_PMU, PMU_COUNTER_FW_READ, [index],
                caller_mode=PrivilegeMode.SUPERVISOR,
            )
            raw = ret.value if ret.ok else 0
        return max(0, raw - allocated.base_value)

    @property
    def num_counters(self) -> int:
        return len(self.pmu.counter_indices())


class X86PmuDriver(PmuDriver):
    """The comparator platform's driver: direct counter programming, no firmware."""

    name = "x86-core-pmu"

    def __init__(self, pmu: PmuUnit, hart_id: int = 0):
        self.pmu = pmu
        self.hart_id = hart_id

    def supports_event(self, event: HwEvent) -> bool:
        return self.pmu.supports_event(event)

    def event_supports_sampling(self, event: HwEvent) -> bool:
        return self.pmu.supports_event(event) and self.pmu.event_supports_sampling(event)

    def event_init(self, event: HwEvent, sampling: bool) -> None:
        if not self.pmu.supports_event(event):
            raise EventInitError(
                "ENOENT",
                f"{self.pmu.capabilities.core}: event {event.value} is not supported",
            )
        if sampling and not self.pmu.event_supports_sampling(event):
            raise EventInitError(
                "EOPNOTSUPP",
                f"{self.pmu.capabilities.core}: event {event.value} cannot be sampled",
            )

    def add(self, event: HwEvent, sample_period: int = 0,
            overflow_handler: Optional[DriverOverflowHandler] = None) -> AllocatedCounter:
        self.event_init(event, sampling=sample_period > 0)
        try:
            index = self.pmu.allocate_counter(event, need_sampling=sample_period > 0)
        except SamplingUnsupportedError as exc:
            raise EventInitError("EOPNOTSUPP", str(exc))
        self.pmu.configure_counter(index, event)
        if sample_period > 0 and overflow_handler is not None:
            self.pmu.arm_sampling(index, sample_period, overflow_handler)
        self.pmu.start_counter(index)
        return AllocatedCounter(index=index, event=event,
                                base_value=self.pmu.read_counter(index))

    def remove(self, allocated: AllocatedCounter) -> None:
        self.pmu.release_counter(allocated.index)

    def read(self, allocated: AllocatedCounter) -> int:
        return max(0, self.pmu.read_counter(allocated.index) - allocated.base_value)

    @property
    def num_counters(self) -> int:
        return len(self.pmu.counter_indices())
