"""Performance Monitoring Unit hardware models.

This package models the PMU *hardware* layer of the paper's Figure 1 stack:
counters, event selectors, overflow interrupts and -- crucially -- the
per-vendor differences in capability and compliance that motivate the whole
paper (Table 1).  The kernel-side driver that programs these units lives in
:mod:`repro.kernel`; the firmware that proxies machine-level accesses lives in
:mod:`repro.sbi`.
"""

from repro.pmu.counters import HardwareCounter, CounterOverflow, SamplingUnsupportedError
from repro.pmu.unit import PmuUnit, PmuCapabilities
from repro.pmu.vendors import (
    SiFiveU74Pmu,
    TheadC910Pmu,
    SpacemitX60Pmu,
    IntelTigerLakePmu,
    pmu_for_identity,
)

__all__ = [
    "HardwareCounter",
    "CounterOverflow",
    "SamplingUnsupportedError",
    "PmuUnit",
    "PmuCapabilities",
    "SiFiveU74Pmu",
    "TheadC910Pmu",
    "SpacemitX60Pmu",
    "IntelTigerLakePmu",
    "pmu_for_identity",
]
