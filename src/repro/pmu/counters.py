"""Individual hardware performance counters.

A :class:`HardwareCounter` models one ``mhpmcounter`` (or the fixed
``mcycle``/``minstret`` pair): it accumulates pulses of the event its selector
is programmed with, and -- when the hardware supports it and sampling is armed
-- raises an overflow notification every ``sample_period`` pulses, which is
what drives sampling-based profiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cpu.events import HwEvent

COUNTER_MASK = (1 << 64) - 1


class SamplingUnsupportedError(Exception):
    """Raised when sampling is requested on a counter that cannot overflow-interrupt.

    This is the hardware condition at the heart of the paper's SpacemiT X60
    workaround: ``mcycle``/``minstret`` on that part count fine but cannot
    generate overflow interrupts, so the kernel refuses to sample them
    directly (the perf syscall returns ``EOPNOTSUPP``).
    """


@dataclass
class CounterOverflow:
    """Description of one overflow occurrence passed to the handler."""

    counter_index: int
    event: HwEvent
    count_at_overflow: int
    period: int


#: Signature of the overflow handler installed by the kernel driver.
OverflowHandler = Callable[[CounterOverflow], None]


class HardwareCounter:
    """One hardware performance counter.

    Parameters
    ----------
    index:
        The architectural counter index (0 = cycle, 2 = instret, 3..31 = HPM).
    supports_sampling:
        Whether the silicon can raise an overflow interrupt from this counter
        (i.e. whether the Sscofpmf overflow path is wired up for it).
    width_bits:
        Counter width; values wrap at this width like hardware.
    """

    def __init__(self, index: int, supports_sampling: bool, width_bits: int = 64):
        if width_bits <= 0 or width_bits > 64:
            raise ValueError("width_bits must be in (0, 64]")
        self.index = index
        self.supports_sampling = supports_sampling
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1

        self.event: Optional[HwEvent] = None
        self.running = False
        self.value = 0

        self._sample_period = 0
        self._since_overflow = 0
        self._overflow_handler: Optional[OverflowHandler] = None

    # -- configuration -------------------------------------------------------

    def configure(self, event: HwEvent) -> None:
        """Program the event selector for this counter."""
        self.event = event

    def arm_sampling(self, period: int, handler: OverflowHandler) -> None:
        """Arm overflow notification every *period* event pulses.

        Raises :class:`SamplingUnsupportedError` if the silicon cannot raise
        overflow interrupts from this counter.
        """
        if not self.supports_sampling:
            raise SamplingUnsupportedError(
                f"counter {self.index} cannot generate overflow interrupts"
            )
        if period <= 0:
            raise ValueError("sample period must be positive")
        self._sample_period = period
        self._since_overflow = 0
        self._overflow_handler = handler

    def disarm_sampling(self) -> None:
        self._sample_period = 0
        self._since_overflow = 0
        self._overflow_handler = None

    @property
    def sampling_armed(self) -> bool:
        return self._sample_period > 0 and self._overflow_handler is not None

    @property
    def sample_period(self) -> int:
        return self._sample_period

    # -- control ---------------------------------------------------------------

    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    def reset(self, value: int = 0) -> None:
        self.value = value & self._mask
        self._since_overflow = 0

    def read(self) -> int:
        return self.value

    # -- counting ----------------------------------------------------------------

    def count(self, event: HwEvent, amount: int) -> int:
        """Accumulate *amount* pulses of *event* if this counter tracks it.

        Pulses may arrive one at a time or in coalesced chunks (the core's
        batched retirement publishes one increment per event per chunk); the
        overflow loop below handles both identically, raising one
        notification per period boundary the increment crosses.

        Returns the number of overflow notifications raised (0 almost always;
        can exceed 1 when a single large increment spans several periods).
        """
        if not self.running or self.event is not event or amount <= 0:
            return 0
        self.value = (self.value + amount) & self._mask
        if self._sample_period <= 0 or self._overflow_handler is None:
            return 0
        self._since_overflow += amount
        overflows = 0
        while self._since_overflow >= self._sample_period:
            self._since_overflow -= self._sample_period
            overflows += 1
            handler = self._overflow_handler
            if handler is not None:
                handler(
                    CounterOverflow(
                        counter_index=self.index,
                        event=self.event,
                        count_at_overflow=self.value,
                        period=self._sample_period,
                    )
                )
        return overflows

    def __repr__(self) -> str:
        event = self.event.value if self.event else "<unprogrammed>"
        state = "running" if self.running else "stopped"
        return (
            f"HardwareCounter(idx={self.index}, event={event}, {state}, "
            f"value={self.value}, sampling={'on' if self.sampling_armed else 'off'})"
        )
