"""Vendor-specific PMU implementations and quirks.

The four cores the paper studies differ exactly where it hurts (Table 1):

=================  ==========  ============  ============  ==============
Property           SiFive U74  T-Head C910   SpacemiT X60  Intel i5-1135G7
=================  ==========  ============  ============  ==============
Out-of-order       No          Yes           No            Yes
RVV version        --          0.7.1         1.0           (AVX2)
Overflow IRQ       No          Yes           Limited       Yes
Upstream Linux     Yes         Partial       No            Yes
=================  ==========  ============  ============  ==============

"Limited" on the X60 means: the fixed cycle / instret counters cannot raise
overflow interrupts, but three vendor-specific events (``u_mode_cycle``,
``s_mode_cycle``, ``m_mode_cycle``) counted on generic HPM counters can.
That asymmetry is what the paper's miniperf workaround exploits.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cpu.events import EventBus, HwEvent
from repro.isa.csr import CpuIdentity
from repro.pmu.unit import PmuCapabilities, PmuUnit

# JEDEC-style vendor ids used by the identification CSRs.  The values are the
# ones real parts report (SiFive 0x489, T-Head 0x5b7, SpacemiT 0x710) so the
# miniperf cpuid tables look like the real thing; the Intel comparator gets a
# synthetic id since x86 has no mvendorid.
SIFIVE_MVENDORID = 0x489
THEAD_MVENDORID = 0x5B7
SPACEMIT_MVENDORID = 0x710
INTEL_SYNTHETIC_VENDORID = 0x8086

U74_MARCHID = 0x8000000000000007
C910_MARCHID = 0x0000000000000910
X60_MARCHID = 0x8000000058000060
TIGERLAKE_MARCHID = 0x000806C1  # family/model/stepping style value

U74_IDENTITY = CpuIdentity(SIFIVE_MVENDORID, U74_MARCHID, 0x20181004)
C910_IDENTITY = CpuIdentity(THEAD_MVENDORID, C910_MARCHID, 0x1000000049772200)
X60_IDENTITY = CpuIdentity(SPACEMIT_MVENDORID, X60_MARCHID, 0x1000000020230910)
TIGERLAKE_IDENTITY = CpuIdentity(INTEL_SYNTHETIC_VENDORID, TIGERLAKE_MARCHID, 0x1)


_COMMON_RISCV_EVENTS: Dict[HwEvent, int] = {
    HwEvent.CYCLES: 0x01,
    HwEvent.INSTRUCTIONS: 0x02,
    HwEvent.CACHE_REFERENCES: 0x10,
    HwEvent.CACHE_MISSES: 0x11,
    HwEvent.BRANCH_INSTRUCTIONS: 0x12,
    HwEvent.BRANCH_MISSES: 0x13,
    HwEvent.L1D_LOADS: 0x20,
    HwEvent.L1D_LOAD_MISSES: 0x21,
    HwEvent.L1D_STORES: 0x22,
    HwEvent.L1D_STORE_MISSES: 0x23,
    HwEvent.LOADS_RETIRED: 0x24,
    HwEvent.STORES_RETIRED: 0x25,
}


class SiFiveU74Pmu(PmuUnit):
    """SiFive U74: in-order, no vector unit, no overflow interrupts at all.

    Good upstream Linux support, but sampling-based profiling is architecturally
    impossible: every ``perf record`` attempt fails.
    """

    CAPABILITIES = PmuCapabilities(
        vendor="SiFive",
        core="SiFive U74",
        out_of_order=False,
        rvv_version=None,
        overflow_interrupt_support="no",
        upstream_linux="yes",
        num_generic_counters=2,
        sampling_capable_events=(),
    )

    def __init__(self, bus: EventBus):
        events = dict(_COMMON_RISCV_EVENTS)
        super().__init__(
            bus,
            self.CAPABILITIES,
            events,
            fixed_counters_support_sampling=False,
            generic_counters_support_sampling=False,
        )


class TheadC910Pmu(PmuUnit):
    """T-Head C910: out-of-order, RVV 0.7.1, full overflow-interrupt support.

    The catch is software, not hardware: the part needs vendor kernel patches
    ("partial" upstream support), which our kernel driver models as a
    requirement for a vendor driver flag.
    """

    CAPABILITIES = PmuCapabilities(
        vendor="T-Head",
        core="T-Head C910",
        out_of_order=True,
        rvv_version="0.7.1",
        overflow_interrupt_support="yes",
        upstream_linux="partial",
        num_generic_counters=8,
        sampling_capable_events=(
            HwEvent.CYCLES,
            HwEvent.INSTRUCTIONS,
            HwEvent.CACHE_MISSES,
            HwEvent.BRANCH_MISSES,
        ),
    )

    def __init__(self, bus: EventBus):
        events = dict(_COMMON_RISCV_EVENTS)
        events.update({
            HwEvent.STALLED_CYCLES_FRONTEND: 0x30,
            HwEvent.STALLED_CYCLES_BACKEND: 0x31,
            HwEvent.L2_REFERENCES: 0x32,
            HwEvent.L2_MISSES: 0x33,
        })
        super().__init__(
            bus,
            self.CAPABILITIES,
            events,
            fixed_counters_support_sampling=True,
            generic_counters_support_sampling=True,
        )


class SpacemitX60Pmu(PmuUnit):
    """SpacemiT X60: in-order, RVV 1.0, *limited* overflow-interrupt support.

    The defining quirk (paper Section 3.3): ``mcycle`` and ``minstret`` cannot
    raise overflow interrupts, so the standard perf sampling path fails with
    ``EOPNOTSUPP``.  Three vendor events -- ``u_mode_cycle``, ``s_mode_cycle``
    and ``m_mode_cycle`` -- are counted on generic HPM counters that *do*
    support overflow interrupts.  Configuring one of those as a perf group
    leader makes the whole group (cycles and instructions included) get
    sampled at the leader's overflow, which is the workaround miniperf
    automates.  There is no upstream Linux support; the event list comes from
    the vendor (Bianbu) kernel tree.
    """

    #: Vendor selector codes of the non-standard mode-cycle events.
    U_MODE_CYCLE_CODE = 0x8001
    S_MODE_CYCLE_CODE = 0x8002
    M_MODE_CYCLE_CODE = 0x8003

    CAPABILITIES = PmuCapabilities(
        vendor="SpacemiT",
        core="SpacemiT X60",
        out_of_order=False,
        rvv_version="1.0",
        overflow_interrupt_support="limited",
        upstream_linux="no",
        num_generic_counters=6,
        sampling_capable_events=(
            HwEvent.U_MODE_CYCLE,
            HwEvent.S_MODE_CYCLE,
            HwEvent.M_MODE_CYCLE,
        ),
    )

    def __init__(self, bus: EventBus):
        events = dict(_COMMON_RISCV_EVENTS)
        events.update({
            HwEvent.U_MODE_CYCLE: self.U_MODE_CYCLE_CODE,
            HwEvent.S_MODE_CYCLE: self.S_MODE_CYCLE_CODE,
            HwEvent.M_MODE_CYCLE: self.M_MODE_CYCLE_CODE,
        })
        super().__init__(
            bus,
            self.CAPABILITIES,
            events,
            # The hardware defect: fixed counters count but cannot interrupt.
            fixed_counters_support_sampling=False,
            # Generic counters (where the mode-cycle events land) can.
            generic_counters_support_sampling=True,
        )


class IntelTigerLakePmu(PmuUnit):
    """Intel Core i5-1135G7 comparator: mature PMU, everything just works."""

    CAPABILITIES = PmuCapabilities(
        vendor="Intel",
        core="Intel Core i5-1135G7",
        out_of_order=True,
        rvv_version=None,  # x86: AVX2/AVX-512, reported separately
        overflow_interrupt_support="yes",
        upstream_linux="yes",
        num_generic_counters=8,
        sampling_capable_events=(
            HwEvent.CYCLES,
            HwEvent.INSTRUCTIONS,
            HwEvent.CACHE_MISSES,
            HwEvent.BRANCH_MISSES,
        ),
    )

    def __init__(self, bus: EventBus):
        events = dict(_COMMON_RISCV_EVENTS)
        events.update({
            HwEvent.STALLED_CYCLES_FRONTEND: 0x9C,
            HwEvent.STALLED_CYCLES_BACKEND: 0xA2,
            HwEvent.L2_REFERENCES: 0x24,
            HwEvent.L2_MISSES: 0x25,
            HwEvent.FP_OPS_RETIRED: 0xC7,
        })
        super().__init__(
            bus,
            self.CAPABILITIES,
            events,
            fixed_counters_support_sampling=True,
            generic_counters_support_sampling=True,
        )


_PMU_BY_VENDORID = {
    SIFIVE_MVENDORID: SiFiveU74Pmu,
    THEAD_MVENDORID: TheadC910Pmu,
    SPACEMIT_MVENDORID: SpacemitX60Pmu,
    INTEL_SYNTHETIC_VENDORID: IntelTigerLakePmu,
}


def pmu_for_identity(identity: CpuIdentity, bus: EventBus) -> PmuUnit:
    """Instantiate the right PMU model from the CPU identification registers.

    miniperf's "identify by CSR, not by perf event discovery" policy starts
    here: given an identity we can build the exact PMU model with its quirks.
    """
    try:
        cls = _PMU_BY_VENDORID[identity.mvendorid]
    except KeyError:
        raise KeyError(
            f"unknown mvendorid {identity.mvendorid:#x}; "
            "no PMU model registered for this vendor"
        )
    return cls(bus)


def all_capabilities() -> Dict[str, PmuCapabilities]:
    """Capability descriptors of every modelled core, keyed by core name."""
    return {
        cls.CAPABILITIES.core: cls.CAPABILITIES
        for cls in (SiFiveU74Pmu, TheadC910Pmu, SpacemitX60Pmu, IntelTigerLakePmu)
    }
