"""The per-core PMU unit: a set of counters plus a capability description.

The unit subscribes to the core's :class:`~repro.cpu.events.EventBus` and
routes every published event increment to the running counters programmed for
that event.  Vendor subclasses (see :mod:`repro.pmu.vendors`) define which
events exist, their raw selector codes, how many generic counters are
implemented, and which counters can raise overflow interrupts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cpu.events import EventBus, HwEvent
from repro.pmu.counters import HardwareCounter, OverflowHandler, SamplingUnsupportedError


@dataclass(frozen=True)
class PmuCapabilities:
    """The capability summary the paper's Table 1 compares across cores."""

    vendor: str
    core: str
    out_of_order: bool
    rvv_version: Optional[str]              # None when vectors are unsupported
    overflow_interrupt_support: str          # "no" | "limited" | "yes"
    upstream_linux: str                      # "yes" | "partial" | "no"
    num_generic_counters: int
    sampling_capable_events: Sequence[HwEvent] = field(default_factory=tuple)

    def as_row(self) -> Dict[str, str]:
        """Render this capability set as a Table-1-style row."""
        return {
            "Core": self.core,
            "Out-of-Order": "Yes" if self.out_of_order else "No",
            "RVV version": self.rvv_version or "Not supported",
            "Overflow interrupt support": self.overflow_interrupt_support.capitalize(),
            "Upstream Linux support": self.upstream_linux.capitalize(),
        }


class PmuUnit:
    """Base class for a core's PMU.

    Parameters
    ----------
    bus:
        The event bus of the core this PMU observes.
    capabilities:
        Static capability description.
    event_codes:
        Mapping from :class:`HwEvent` to the vendor's raw selector code
        (what would be written into ``mhpmevent``).
    fixed_counter_events:
        Events served by fixed-function counters (index -> event); on RISC-V
        these are mcycle (0) and minstret (2).
    fixed_counters_support_sampling:
        Whether the fixed-function counters can raise overflow interrupts.
        This is the knob that is *False* on the SpacemiT X60 and creates the
        need for the paper's workaround.
    generic_counters_support_sampling:
        Whether the generic HPM counters can raise overflow interrupts.
    """

    FIXED_CYCLE_INDEX = 0
    FIXED_INSTRET_INDEX = 2
    FIRST_GENERIC_INDEX = 3

    def __init__(
        self,
        bus: EventBus,
        capabilities: PmuCapabilities,
        event_codes: Dict[HwEvent, int],
        fixed_counter_events: Optional[Dict[int, HwEvent]] = None,
        fixed_counters_support_sampling: bool = True,
        generic_counters_support_sampling: bool = True,
    ):
        self.bus = bus
        self.capabilities = capabilities
        self._event_codes = dict(event_codes)
        self._counters: Dict[int, HardwareCounter] = {}

        fixed = fixed_counter_events
        if fixed is None:
            fixed = {
                self.FIXED_CYCLE_INDEX: HwEvent.CYCLES,
                self.FIXED_INSTRET_INDEX: HwEvent.INSTRUCTIONS,
            }
        self._fixed_events = dict(fixed)
        for index, event in fixed.items():
            counter = HardwareCounter(index, fixed_counters_support_sampling)
            counter.configure(event)
            self._counters[index] = counter

        for offset in range(capabilities.num_generic_counters):
            index = self.FIRST_GENERIC_INDEX + offset
            self._counters[index] = HardwareCounter(
                index, generic_counters_support_sampling
            )

        self._dispatch: Dict[HwEvent, List[HardwareCounter]] = {}
        self._rebuild_dispatch()
        bus.subscribe(self._on_event)

    # -- bus integration ----------------------------------------------------------

    def _rebuild_dispatch(self) -> None:
        """Rebuild the event -> counters routing index.

        Every published pulse used to probe all counters; the index narrows
        that to the counters whose selector is programmed with the event
        (usually zero to two).  :meth:`HardwareCounter.count` keeps its own
        event/running guards, so a conservative index can never over-count --
        it only skips counters that would have ignored the pulse anyway.
        Called whenever a selector is (re)programmed or released.
        """
        index: Dict[HwEvent, List[HardwareCounter]] = {}
        for counter_index in sorted(self._counters):
            counter = self._counters[counter_index]
            if counter.event is not None:
                index.setdefault(counter.event, []).append(counter)
        self._dispatch = index

    def _on_event(self, event: HwEvent, amount: int) -> None:
        counters = self._dispatch.get(event)
        if counters:
            for counter in counters:
                counter.count(event, amount)

    def sampling_active(self) -> bool:
        """True when any running counter has an overflow handler armed.

        The machine's batched retirement path consults this before each
        chunk: with sampling armed every op is a potential overflow boundary
        and retirement must stay per-op.
        """
        for counter in self._counters.values():
            if counter.running and counter.sampling_armed:
                return True
        return False

    def detach(self) -> None:
        """Stop observing the event bus (used when tearing a machine down)."""
        self.bus.unsubscribe(self._on_event)

    # -- capability queries ----------------------------------------------------------

    def supported_events(self) -> List[HwEvent]:
        return sorted(self._event_codes.keys(), key=lambda e: e.value)

    def supports_event(self, event: HwEvent) -> bool:
        return event in self._event_codes

    def event_code(self, event: HwEvent) -> int:
        """Raw ``mhpmevent`` selector code for *event*."""
        try:
            return self._event_codes[event]
        except KeyError:
            raise KeyError(f"{self.capabilities.core} does not expose event {event.value}")

    def counter_indices(self) -> List[int]:
        return sorted(self._counters)

    def counter(self, index: int) -> HardwareCounter:
        return self._counters[index]

    def fixed_counter_for(self, event: HwEvent) -> Optional[int]:
        for index, fixed_event in self._fixed_events.items():
            if fixed_event is event:
                return index
        return None

    def event_supports_sampling(self, event: HwEvent) -> bool:
        """Can *event* be sampled on this PMU on at least one counter?

        A fixed-function event can be sampled only if its fixed counter
        supports overflow interrupts; any other supported event can be sampled
        whenever the generic counters support overflow interrupts.
        """
        if not self.supports_event(event):
            return False
        fixed_index = self.fixed_counter_for(event)
        if fixed_index is not None:
            return self._counters[fixed_index].supports_sampling
        generic = [
            c for i, c in self._counters.items() if i >= self.FIRST_GENERIC_INDEX
        ]
        return any(c.supports_sampling for c in generic)

    # -- counter allocation (used by the kernel driver) -------------------------------

    def allocate_counter(self, event: HwEvent, need_sampling: bool) -> int:
        """Pick a hardware counter able to count *event*.

        Fixed-function events go to their fixed counter.  Other events take
        the lowest-numbered free generic counter.  When *need_sampling* is set
        the chosen counter must support overflow interrupts, otherwise
        :class:`SamplingUnsupportedError` is raised -- this is exactly the
        failure the standard ``perf`` flow hits on the X60.
        """
        if not self.supports_event(event):
            raise KeyError(f"{self.capabilities.core} does not expose event {event.value}")
        fixed_index = self.fixed_counter_for(event)
        if fixed_index is not None:
            counter = self._counters[fixed_index]
            if need_sampling and not counter.supports_sampling:
                raise SamplingUnsupportedError(
                    f"{self.capabilities.core}: fixed counter for {event.value} "
                    "cannot generate overflow interrupts"
                )
            return fixed_index
        for index in sorted(self._counters):
            if index < self.FIRST_GENERIC_INDEX:
                continue
            counter = self._counters[index]
            if counter.running or counter.event is not None:
                continue
            if need_sampling and not counter.supports_sampling:
                continue
            return index
        if need_sampling:
            raise SamplingUnsupportedError(
                f"{self.capabilities.core}: no sampling-capable generic counter available"
            )
        raise RuntimeError(f"{self.capabilities.core}: all generic counters are busy")

    def configure_counter(self, index: int, event: HwEvent) -> None:
        self._counters[index].configure(event)
        self._rebuild_dispatch()

    def release_counter(self, index: int) -> None:
        counter = self._counters[index]
        counter.stop()
        counter.disarm_sampling()
        counter.reset()
        if index not in self._fixed_events:
            counter.event = None
            self._rebuild_dispatch()

    def start_counter(self, index: int) -> None:
        self._counters[index].start()

    def stop_counter(self, index: int) -> None:
        self._counters[index].stop()

    def read_counter(self, index: int) -> int:
        return self._counters[index].read()

    def arm_sampling(self, index: int, period: int, handler: OverflowHandler) -> None:
        self._counters[index].arm_sampling(period, handler)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(core={self.capabilities.core!r}, "
            f"counters={len(self._counters)})"
        )
