"""KernelC sources for the compiled workloads.

``MATMUL_TILED_SOURCE`` is, modulo the TILE_SIZE literal, the exact kernel
printed in the paper's Section 5.2.
"""

from __future__ import annotations

import random
from functools import partial
from typing import List, Sequence

from repro.vm.memory import Memory

#: The paper's tiled matmul kernel (TILE_SIZE = 32).
MATMUL_TILED_SOURCE = """
void matmul_tiled(float* A, float* B, float* C, long n) {
  for (long ii = 0; ii < n; ii += 32) {
    for (long jj = 0; jj < n; jj += 32) {
      for (long kk = 0; kk < n; kk += 32) {
        for (long i = ii; i < ii + 32 && i < n; i++) {
          for (long j = jj; j < jj + 32 && j < n; j++) {
            float sum = C[i * n + j];
            for (long k = kk; k < kk + 32 && k < n; k++) {
              sum += A[i * n + k] * B[k * n + j];
            }
            C[i * n + j] = sum;
          }
        }
      }
    }
  }
}
"""

#: Untiled baseline used by the tiling ablation.
MATMUL_NAIVE_SOURCE = """
void matmul_naive(float* A, float* B, float* C, long n) {
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) {
      float sum = 0.0f;
      for (long k = 0; k < n; k++) {
        sum += A[i * n + k] * B[k * n + j];
      }
      C[i * n + j] = sum;
    }
  }
}
"""

DOT_PRODUCT_SOURCE = """
float dot(float* a, float* b, long n) {
  float sum = 0.0f;
  for (long i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}
"""

STREAM_TRIAD_SOURCE = """
void triad(float* a, float* b, float* c, float scalar, long n) {
  for (long i = 0; i < n; i++) {
    a[i] = b[i] + scalar * c[i];
  }
}
"""

STENCIL_SOURCE = """
void stencil3(float* dst, float* src, long n) {
  for (long i = 1; i < n - 1; i++) {
    dst[i] = 0.25f * src[i - 1] + 0.5f * src[i] + 0.25f * src[i + 1];
  }
}
"""

MEMSET_SOURCE = """
void fill(float* dst, float value, long n) {
  for (long i = 0; i < n; i++) {
    dst[i] = value;
  }
}
"""


def _random_floats(count: int, seed: int) -> List[float]:
    generator = random.Random(seed)
    return [generator.random() for _ in range(count)]


# Args builders are functools.partial applications of module-level functions
# (not closures) so a CompiledKernelWorkload pickles cleanly -- the parallel
# run executor ships workload objects to worker processes.

def _matmul_args(n: int, seed: int, memory: Memory) -> Sequence[object]:
    a = memory.alloc_float_array(_random_floats(n * n, seed))
    b = memory.alloc_float_array(_random_floats(n * n, seed + 1))
    c = memory.alloc_float_array([0.0] * (n * n))
    return [a, b, c, n]


def matmul_args_builder(n: int, seed: int = 7):
    """Args builder for the matmul kernels: allocates A, B, C of size n x n."""
    return partial(_matmul_args, n, seed)


def _dot_args(n: int, seed: int, memory: Memory) -> Sequence[object]:
    a = memory.alloc_float_array(_random_floats(n, seed))
    b = memory.alloc_float_array(_random_floats(n, seed + 1))
    return [a, b, n]


def dot_args_builder(n: int, seed: int = 11):
    return partial(_dot_args, n, seed)


def _triad_args(n: int, scalar: float, seed: int,
                memory: Memory) -> Sequence[object]:
    a = memory.alloc_float_array([0.0] * n)
    b = memory.alloc_float_array(_random_floats(n, seed))
    c = memory.alloc_float_array(_random_floats(n, seed + 1))
    return [a, b, c, scalar, n]


def triad_args_builder(n: int, scalar: float = 3.0, seed: int = 13):
    return partial(_triad_args, n, scalar, seed)


def _stencil_args(n: int, seed: int, memory: Memory) -> Sequence[object]:
    dst = memory.alloc_float_array([0.0] * n)
    src = memory.alloc_float_array(_random_floats(n, seed))
    return [dst, src, n]


def stencil_args_builder(n: int, seed: int = 17):
    return partial(_stencil_args, n, seed)


def _memset_args(n: int, value: float, memory: Memory) -> Sequence[object]:
    dst = memory.alloc_float_array([0.0] * n)
    return [dst, value, n]


def memset_args_builder(n: int, value: float = 1.0):
    return partial(_memset_args, n, value)


def analytic_matmul_counts(n: int) -> dict:
    """Closed-form operation counts for an n x n x n matmul.

    Used by tests to check the IR-derived instrumentation counts: 2*n^3
    floating-point operations (one multiply and one add per inner iteration).
    """
    return {
        "fp_ops": 2 * n ** 3,
        "inner_iterations": n ** 3,
    }
