"""KernelC sources for the compiled workloads.

``MATMUL_TILED_SOURCE`` is, modulo the TILE_SIZE literal, the exact kernel
printed in the paper's Section 5.2.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.vm.memory import Memory

#: The paper's tiled matmul kernel (TILE_SIZE = 32).
MATMUL_TILED_SOURCE = """
void matmul_tiled(float* A, float* B, float* C, long n) {
  for (long ii = 0; ii < n; ii += 32) {
    for (long jj = 0; jj < n; jj += 32) {
      for (long kk = 0; kk < n; kk += 32) {
        for (long i = ii; i < ii + 32 && i < n; i++) {
          for (long j = jj; j < jj + 32 && j < n; j++) {
            float sum = C[i * n + j];
            for (long k = kk; k < kk + 32 && k < n; k++) {
              sum += A[i * n + k] * B[k * n + j];
            }
            C[i * n + j] = sum;
          }
        }
      }
    }
  }
}
"""

#: Untiled baseline used by the tiling ablation.
MATMUL_NAIVE_SOURCE = """
void matmul_naive(float* A, float* B, float* C, long n) {
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) {
      float sum = 0.0f;
      for (long k = 0; k < n; k++) {
        sum += A[i * n + k] * B[k * n + j];
      }
      C[i * n + j] = sum;
    }
  }
}
"""

DOT_PRODUCT_SOURCE = """
float dot(float* a, float* b, long n) {
  float sum = 0.0f;
  for (long i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}
"""

STREAM_TRIAD_SOURCE = """
void triad(float* a, float* b, float* c, float scalar, long n) {
  for (long i = 0; i < n; i++) {
    a[i] = b[i] + scalar * c[i];
  }
}
"""

STENCIL_SOURCE = """
void stencil3(float* dst, float* src, long n) {
  for (long i = 1; i < n - 1; i++) {
    dst[i] = 0.25f * src[i - 1] + 0.5f * src[i] + 0.25f * src[i + 1];
  }
}
"""

MEMSET_SOURCE = """
void fill(float* dst, float value, long n) {
  for (long i = 0; i < n; i++) {
    dst[i] = value;
  }
}
"""


def _random_floats(count: int, seed: int) -> List[float]:
    generator = random.Random(seed)
    return [generator.random() for _ in range(count)]


def matmul_args_builder(n: int, seed: int = 7):
    """Args builder for the matmul kernels: allocates A, B, C of size n x n."""

    def build(memory: Memory) -> Sequence[object]:
        a = memory.alloc_float_array(_random_floats(n * n, seed))
        b = memory.alloc_float_array(_random_floats(n * n, seed + 1))
        c = memory.alloc_float_array([0.0] * (n * n))
        return [a, b, c, n]

    return build


def dot_args_builder(n: int, seed: int = 11):
    def build(memory: Memory) -> Sequence[object]:
        a = memory.alloc_float_array(_random_floats(n, seed))
        b = memory.alloc_float_array(_random_floats(n, seed + 1))
        return [a, b, n]

    return build


def triad_args_builder(n: int, scalar: float = 3.0, seed: int = 13):
    def build(memory: Memory) -> Sequence[object]:
        a = memory.alloc_float_array([0.0] * n)
        b = memory.alloc_float_array(_random_floats(n, seed))
        c = memory.alloc_float_array(_random_floats(n, seed + 1))
        return [a, b, c, scalar, n]

    return build


def stencil_args_builder(n: int, seed: int = 17):
    def build(memory: Memory) -> Sequence[object]:
        dst = memory.alloc_float_array([0.0] * n)
        src = memory.alloc_float_array(_random_floats(n, seed))
        return [dst, src, n]

    return build


def memset_args_builder(n: int, value: float = 1.0):
    def build(memory: Memory) -> Sequence[object]:
        dst = memory.alloc_float_array([0.0] * n)
        return [dst, value, n]

    return build


def analytic_matmul_counts(n: int) -> dict:
    """Closed-form operation counts for an n x n x n matmul.

    Used by tests to check the IR-derived instrumentation counts: 2*n^3
    floating-point operations (one multiply and one add per inner iteration).
    """
    return {
        "fp_ops": 2 * n ** 3,
        "inner_iterations": n ** 3,
    }
