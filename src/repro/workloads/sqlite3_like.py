"""A sqlite3-shaped synthetic workload (for Table 2 / Figure 3).

The paper profiles the sqlite3 benchmark from the LLVM test suite; its top
hotspots on both platforms are ``sqlite3VdbeExec`` (the bytecode interpreter,
~18-20% of time), ``patternCompare`` (LIKE/GLOB matching, ~12-19%) and
``sqlite3BtreeParseCellPtr`` (b-tree cell decoding, ~6-10%), with a long tail
of b-tree, pager and parser functions below them.

This module builds a synthetic call tree with the same function names,
similar relative weights, and instruction mixes chosen to match each
function's character (interpreter dispatch is branchy and load-heavy; pattern
matching is byte loads plus compares; cell parsing is loads plus shifts).
Weights are calibrated so the *sample-share ordering and rough magnitudes* of
Table 2 are reproduced; exact percentages depend on the timing model.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.synthetic import InstructionMix, SyntheticFunction, SyntheticWorkload

#: The functions the paper's Table 2 reports, in order.
SQLITE3_HOT_FUNCTIONS = (
    "sqlite3VdbeExec",
    "patternCompare",
    "sqlite3BtreeParseCellPtr",
)

#: Instruction-count ratio between the x86 and RISC-V builds of sqlite3 in
#: the paper (Table 2: ~6.7e9 vs ~3.6e9 instructions for sqlite3VdbeExec).
X86_INSTRUCTION_FACTOR = 1.85


def sqlite3_like_workload(scale: int = 1) -> SyntheticWorkload:
    """Build the workload; ``scale`` multiplies every function's work."""
    workload = SyntheticWorkload(name="sqlite3-bench", entry="main")

    def add(name: str, ops: int, mix: InstructionMix, callees=None) -> None:
        workload.add(SyntheticFunction(
            name=name,
            ops_per_call=ops * scale,
            mix=mix,
            callees=list(callees or []),
        ))

    interpreter_mix = InstructionMix(
        int_alu=0.40, int_mul=0.01, loads=0.28, stores=0.08, branches=0.23,
        working_set_bytes=24 * 1024, locality=0.88,
        branch_taken_fraction=0.55, branch_predictability=0.96,
    )
    pattern_mix = InstructionMix(
        int_alu=0.38, loads=0.34, stores=0.02, branches=0.26,
        working_set_bytes=8 * 1024, locality=0.95,
        branch_taken_fraction=0.5, branch_predictability=0.97,
    )
    btree_mix = InstructionMix(
        int_alu=0.45, loads=0.35, stores=0.05, branches=0.15,
        working_set_bytes=24 * 1024, locality=0.85,
        branch_predictability=0.96,
    )
    pager_mix = InstructionMix(
        int_alu=0.35, loads=0.30, stores=0.18, branches=0.17,
        working_set_bytes=48 * 1024, locality=0.8,
        branch_predictability=0.95,
    )
    parser_mix = InstructionMix(
        int_alu=0.5, loads=0.25, stores=0.08, branches=0.17,
        working_set_bytes=24 * 1024, locality=0.85,
        branch_predictability=0.94,
    )
    glue_mix = InstructionMix(
        int_alu=0.5, loads=0.22, stores=0.12, branches=0.16,
        working_set_bytes=32 * 1024, locality=0.8,
        branch_predictability=0.94,
    )

    # Leaf and mid-level functions (weights chosen to land near Table 2).
    add("patternCompare", 5200, pattern_mix)
    add("sqlite3BtreeParseCellPtr", 4600, btree_mix)
    add("sqlite3VdbeSerialGet", 1500, btree_mix)
    add("sqlite3VdbeMemGrow", 900, pager_mix)
    add("sqlite3PcacheFetch", 1100, pager_mix)
    add("sqlite3BtreeMovetoUnpacked", 1700, btree_mix,
        callees=[("sqlite3BtreeParseCellPtr", 1)])
    add("balance_nonroot", 1300, pager_mix)
    add("sqlite3GetToken", 1200, parser_mix)
    add("sqlite3RunParser", 1500, parser_mix, callees=[("sqlite3GetToken", 2)])
    add("likeFunc", 700, glue_mix, callees=[("patternCompare", 3)])

    # The VDBE interpreter: the biggest self-time plus calls into helpers.
    add("sqlite3VdbeExec", 8200, interpreter_mix, callees=[
        ("likeFunc", 1),
        ("sqlite3BtreeMovetoUnpacked", 1),
        ("sqlite3VdbeSerialGet", 2),
        ("sqlite3PcacheFetch", 1),
        ("sqlite3VdbeMemGrow", 1),
        ("sqlite3BtreeParseCellPtr", 1),
    ])

    add("sqlite3_step", 600, glue_mix, callees=[("sqlite3VdbeExec", 1)])
    add("sqlite3_exec", 500, glue_mix, callees=[
        ("sqlite3RunParser", 1),
        ("sqlite3_step", 3),
    ])
    add("speedtest_run", 400, glue_mix, callees=[
        ("sqlite3_exec", 2),
        ("balance_nonroot", 1),
    ])
    add("main", 200, glue_mix, callees=[("speedtest_run", 1)])

    return workload


def instruction_factor_for(arch: str) -> float:
    """Per-ISA instruction scaling (x86 executes more instructions for sqlite)."""
    return X86_INSTRUCTION_FACTOR if arch == "x86_64" else 1.0
