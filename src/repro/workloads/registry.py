"""Named workload registry: discoverable workloads for the session API.

``registry["sqlite3-like"]`` builds the Table-2 synthetic workload;
``registry["matmul-tiled"]`` the paper's tiled matmul kernel.  Entries are
*factories*: ``registry.create(name, **params)`` passes workload-specific
parameters (``scale`` for synthetic trees, ``n`` for kernels) and
``registry.params(name)`` lists what a factory accepts, which is how the CLI
forwards only applicable flags.

Third-party code can add its own entries with :meth:`WorkloadRegistry.register`.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterator, List, Mapping, Tuple

from repro.workloads.kernels import (
    DOT_PRODUCT_SOURCE,
    MATMUL_NAIVE_SOURCE,
    MATMUL_TILED_SOURCE,
    MEMSET_SOURCE,
    STENCIL_SOURCE,
    STREAM_TRIAD_SOURCE,
    dot_args_builder,
    matmul_args_builder,
    memset_args_builder,
    stencil_args_builder,
    triad_args_builder,
)
from repro.workloads.sqlite3_like import sqlite3_like_workload
from repro.workloads.synthetic import InstructionMix, SyntheticFunction, SyntheticWorkload


class WorkloadRegistry(Mapping[str, object]):
    """Name -> workload-factory mapping with convenience constructors."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., object]] = {}
        self._descriptions: Dict[str, str] = {}
        self._populated = False

    # -- registration -------------------------------------------------------------------

    def register(self, name: str, factory: Callable[..., object],
                 description: str = "") -> None:
        # Populate builtins first so a third-party registration under a
        # builtin name sticks instead of being clobbered by the lazy fill.
        self._ensure_builtins()
        self._factories[name] = factory
        self._descriptions[name] = description

    def _ensure_builtins(self) -> None:
        if not self._populated:
            self._populated = True
            _register_builtins(self)

    # -- lookup -------------------------------------------------------------------------

    def create(self, name: str, **params: object):
        """Instantiate a workload, passing factory-specific parameters."""
        self._ensure_builtins()
        factory = self._factories.get(name)
        if factory is None:
            raise KeyError(
                f"unknown workload {name!r}; available: {', '.join(sorted(self))}"
            )
        return factory(**params)

    def __getitem__(self, name: str):
        return self.create(name)

    def __iter__(self) -> Iterator[str]:
        """Iterate names in sorted order (stable CLI listings and errors)."""
        self._ensure_builtins()
        return iter(sorted(self._factories))

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._factories)

    def params(self, name: str) -> Tuple[str, ...]:
        """Names of the parameters *name*'s factory accepts."""
        self._ensure_builtins()
        factory = self._factories.get(name)
        if factory is None:
            raise KeyError(
                f"unknown workload {name!r}; available: {', '.join(sorted(self))}"
            )
        return tuple(inspect.signature(factory).parameters)

    def description(self, name: str) -> str:
        self._ensure_builtins()
        return self._descriptions.get(name, "")

    def describe(self) -> str:
        """A name/kind/description table of every registered workload."""
        self._ensure_builtins()
        rows: List[Tuple[str, str, str]] = []
        for name in sorted(self._factories):
            workload = self.create(name)
            rows.append((name, getattr(workload, "kind", "?"),
                         self._descriptions.get(name, "")))
        name_width = max(len(r[0]) for r in rows)
        kind_width = max(len(r[1]) for r in rows)
        lines = [f"{'Name'.ljust(name_width)}  {'Kind'.ljust(kind_width)}  Description"]
        lines.append(f"{'-' * name_width}  {'-' * kind_width}  {'-' * 11}")
        for name, kind, description in rows:
            lines.append(f"{name.ljust(name_width)}  {kind.ljust(kind_width)}  "
                         f"{description}")
        return "\n".join(lines)


def _require_positive(name: str, parameter: str, value: int) -> int:
    """Validate a factory size parameter up front, with the valid range.

    Catches bad ``--scale``/``-n`` values at workload construction instead
    of deep inside trace generation or kernel compilation.
    """
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(
            f"workload {name!r}: parameter {parameter!r} must be a positive "
            f"integer >= 1 (got {value!r})"
        )
    return value


def micro_calltree_workload(scale: int = 1) -> SyntheticWorkload:
    """A three-function call tree, small enough for sub-second smoke runs."""
    workload = SyntheticWorkload(name="micro-calltree", entry="main")
    leaf_mix = InstructionMix(int_alu=0.5, loads=0.3, stores=0.05, branches=0.15,
                              working_set_bytes=4 * 1024, locality=0.9)
    workload.add(SyntheticFunction("hot_leaf", 900 * scale, leaf_mix))
    workload.add(SyntheticFunction("helper", 300 * scale, InstructionMix(),
                                   callees=[("hot_leaf", 2)]))
    workload.add(SyntheticFunction("main", 150 * scale, InstructionMix(),
                                   callees=[("helper", 2)]))
    return workload


def _register_builtins(reg: WorkloadRegistry) -> None:
    # Imported here, not at module level: repro.api.workload itself imports
    # the workload leaf modules, so a top-level import would be circular when
    # ``repro.api`` is imported first.
    from repro.api.workload import CompiledKernelWorkload, SyntheticTraceWorkload
    from repro.workloads.parallel import (
        ForkJoinCalltreeWorkload,
        MatmulParallelWorkload,
        StreamTriadMtWorkload,
    )

    def add_synthetic(name: str, tree_factory: Callable[..., SyntheticWorkload],
                      description: str) -> None:
        def factory(scale: int = 1):
            _require_positive(name, "scale", scale)
            return SyntheticTraceWorkload(tree=tree_factory(scale=scale),
                                          description=description)
        reg.register(name, factory, description)

    def add_kernel(name: str, source: str, function: str, args_builder_factory,
                   default_n: int, description: str) -> None:
        def factory(n: int = default_n):
            _require_positive(name, "n", n)
            return CompiledKernelWorkload(
                name=name, source=source, function=function,
                args_builder=args_builder_factory(n),
                filename=f"{function}.c", description=description,
            )
        reg.register(name, factory, description)

    def add_parallel(name: str, workload_factory, parameter: str,
                     description: str) -> None:
        def factory(**params):
            value = params.get(parameter)
            if value is not None:
                _require_positive(name, parameter, value)
                return workload_factory(**{parameter: value})
            return workload_factory()
        # Give the factory an inspectable signature for registry.params().
        import inspect
        factory.__signature__ = inspect.Signature([
            inspect.Parameter(parameter, inspect.Parameter.KEYWORD_ONLY,
                              default=None)
        ])
        reg.register(name, factory, description)

    add_synthetic("sqlite3-like", sqlite3_like_workload,
                  "sqlite3-shaped call tree (Table 2 / Figure 3 hotspots)")
    add_synthetic("micro-calltree", micro_calltree_workload,
                  "tiny 3-function call tree for smoke tests")
    add_kernel("matmul-tiled", MATMUL_TILED_SOURCE, "matmul_tiled",
               matmul_args_builder, 32,
               "the paper's tiled matmul kernel (Section 5.2 / Figure 4)")
    add_kernel("matmul-naive", MATMUL_NAIVE_SOURCE, "matmul_naive",
               matmul_args_builder, 32, "untiled matmul baseline")
    add_kernel("dot-product", DOT_PRODUCT_SOURCE, "dot", dot_args_builder,
               4096, "single-loop dot product")
    add_kernel("stream-triad", STREAM_TRIAD_SOURCE, "triad", triad_args_builder,
               4096, "STREAM triad (bandwidth-bound)")
    add_kernel("stencil3", STENCIL_SOURCE, "stencil3", stencil_args_builder,
               4096, "3-point stencil")
    add_kernel("memset", MEMSET_SOURCE, "fill", memset_args_builder,
               8192, "store-only fill loop")
    add_parallel("matmul-parallel", MatmulParallelWorkload, "n",
                 "row-sharded parallel matmul (strong scaling, --cpus N)")
    add_parallel("stream-triad-mt", StreamTriadMtWorkload, "n",
                 "multi-threaded STREAM triad (weak scaling, LLC contention)")
    add_parallel("forkjoin-calltree", ForkJoinCalltreeWorkload, "scale",
                 "fork-join call-tree replay, 2 worker threads per hart")


#: The process-wide default registry the session API and CLI consult.
registry = WorkloadRegistry()
