"""Multi-threaded workloads for the SMP subsystem.

Three parallel workloads behind one small :class:`ParallelWorkload` protocol:

* ``matmul-parallel`` -- the paper's matmul, sharded by row blocks: every
  thread computes a contiguous block of output rows of one *shared* matrix
  set (all threads allocate identically, so A/B/C occupy the same addresses
  on every hart -- B is constructively shared in the LLC, C/A row blocks are
  disjoint).  Strong scaling: the matrix size is fixed, more harts split it.
* ``stream-triad-mt`` -- contended memory streams: every thread runs STREAM
  triad over its own slice, placed at a disjoint address range, for several
  passes.  Weak scaling: per-thread slices are fixed, more harts add
  footprint until the combined slices overflow the shared LLC -- which is
  exactly the contention the scaling benchmark measures.
* ``forkjoin-calltree`` -- a fork-join synthetic call tree: worker threads
  (more workers than harts, so runqueues actually time-slice) each replay a
  seeded subtree with its own address-space offset; samples carry per-worker
  call chains for the per-hart flame graphs.

A parallel workload is also a plain :class:`~repro.api.workload.Workload`:
``executable()`` runs every shard sequentially on one machine, which is what
``cpus=1`` means and keeps these workloads usable by every single-hart code
path (and bit-deterministic there).

The compiled-kernel shards execute through
:meth:`~repro.vm.engine.ExecutionEngine.run_yielding`: the engine itself is
the quantum generator, yielding to the scheduler every ``quantum`` executed
IR instructions at the next block boundary -- so a thread is preempted
*mid-function* without losing predecode state, and the whole quantum retires
through ``Machine.execute_batch``.  ``spec.fast_dispatch`` picks the engine
(predecoded thunks by default; the reference interpreter for differential
runs); quantum boundaries are identical in both modes, which keeps SMP
schedules, counters and sample streams bit-identical across them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Protocol, Sequence, Tuple, runtime_checkable

from repro.analysis.races import KernelShardPlan, TraceShardPlan
from repro.compiler.cache import compile_source_cached
from repro.compiler.targets import target_for_platform
from repro.kernel.task import Task
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.vm import ExecutionEngine, Memory
from repro.workloads.kernels import _random_floats
from repro.workloads.sqlite3_like import instruction_factor_for
from repro.workloads.synthetic import (
    InstructionMix,
    SyntheticFunction,
    SyntheticWorkload,
    TraceExecutor,
)

#: A thread body, as the SMP scheduler consumes it: bound to (hart machine,
#: task), yields between quanta.  (Type kept structural so this module does
#: not depend on :mod:`repro.smp`.)
ThreadBody = Callable[[Machine, Task], Iterator[None]]

#: Address-space stride between software threads (16 MiB): working sets of
#: different threads never alias unless they genuinely share data.
THREAD_ADDRESS_STRIDE = 0x0100_0000


@runtime_checkable
class ParallelWorkload(Protocol):
    """What the SMP session path needs beyond the base Workload protocol."""

    name: str

    def threads(self, cpus: int, spec) -> List[Tuple[str, ThreadBody]]:
        """Shard the workload into named thread bodies for *cpus* harts."""
        ...


#: Row-sharded matmul: each thread computes output rows [lo, hi).
MATMUL_ROWS_SOURCE = """
void matmul_rows(float* A, float* B, float* C, long n, long lo, long hi) {
  for (long i = lo; i < hi; i++) {
    for (long j = 0; j < n; j++) {
      float sum = 0.0f;
      for (long k = 0; k < n; k++) {
        sum += A[i * n + k] * B[k * n + j];
      }
      C[i * n + j] = sum;
    }
  }
}
"""


def _drain(bodies: Sequence[Tuple[str, ThreadBody]], machine: Machine,
           task: Task) -> None:
    """Run thread bodies to completion, one after another (cpus=1 semantics)."""
    for _, body in bodies:
        for _ in body(machine, task):
            pass


def _fast_dispatch(spec) -> bool:
    """The spec's engine selection (default on, like the engine itself)."""
    return getattr(spec, "fast_dispatch", True)


def _block_delta(spec) -> bool:
    """The spec's block-delta retirement toggle (default on)."""
    return getattr(spec, "block_delta", True)


@dataclass
class MatmulParallelWorkload:
    """``matmul-parallel``: one n x n matmul sharded by output-row blocks."""

    n: int = 32
    #: Scheduler time slice in executed IR instructions; 0 uses the engine's
    #: default quantum.
    quantum: int = 0
    description: str = ("row-sharded parallel matmul over shared matrices "
                        "(strong scaling)")
    name: str = field(default="matmul-parallel", init=False)
    kind: str = field(default="parallel-kernel", init=False)

    def _allocate(self, memory: Memory) -> List[object]:
        n = self.n
        a = memory.alloc_float_array(_random_floats(n * n, 7))
        b = memory.alloc_float_array(_random_floats(n * n, 8))
        c = memory.alloc_float_array([0.0] * (n * n))
        return [a, b, c, n]

    def _body(self, lo: int, hi: int, spec) -> ThreadBody:
        def body(machine: Machine, task: Task) -> Iterator[None]:
            module = compile_source_cached(MATMUL_ROWS_SOURCE, "matmul_rows.c",
                                           machine.descriptor,
                                           spec.enable_vectorizer,
                                           verify_ir=getattr(spec, "verify_ir",
                                                             False))
            target = target_for_platform(machine.descriptor)
            memory = Memory()
            base_args = self._allocate(memory)
            engine = ExecutionEngine(module, machine, target, task=task,
                                     memory=memory,
                                     fast_dispatch=_fast_dispatch(spec),
                                     block_delta=_block_delta(spec))
            # The engine is the quantum generator: it yields every `quantum`
            # executed IR instructions, so preemption lands mid-function.
            yield from engine.run_yielding("matmul_rows",
                                           base_args + [lo, hi],
                                           quantum=self.quantum or None)
        return body

    def threads(self, cpus: int, spec) -> List[Tuple[str, ThreadBody]]:
        shards = max(1, cpus)
        rows_per = (self.n + shards - 1) // shards
        out: List[Tuple[str, ThreadBody]] = []
        for index in range(shards):
            lo = index * rows_per
            hi = min(self.n, lo + rows_per)
            if lo >= hi:
                break
            out.append((f"matmul-worker-{index}", self._body(lo, hi, spec)))
        return out

    def shard_plans(self, cpus: int, spec) -> List[KernelShardPlan]:
        """Describe the shards for the static race detector.

        Every thread body builds a fresh :class:`Memory` and allocates
        identically, so one allocation here reproduces the addresses every
        thread sees -- A/B/C are genuinely shared across threads.
        """
        base_args = self._allocate(Memory())
        plans: List[KernelShardPlan] = []
        for index, (name, _body) in enumerate(self.threads(cpus, spec)):
            shards = max(1, cpus)
            rows_per = (self.n + shards - 1) // shards
            lo = index * rows_per
            hi = min(self.n, lo + rows_per)
            plans.append(KernelShardPlan(
                thread=name, source=MATMUL_ROWS_SOURCE,
                filename="matmul_rows.c", function="matmul_rows",
                args=tuple(base_args + [lo, hi]),
            ))
        return plans

    def executable(self, machine: Machine, task: Task,
                   spec) -> Callable[[], None]:
        def run() -> None:
            for _ in range(max(1, spec.invocations)):
                _drain(self.threads(1, spec), machine, task)
        return run

    @property
    def supports_roofline(self) -> bool:
        return True

    def roofline(self, descriptor: PlatformDescriptor, spec):
        from repro.roofline.runner import RooflineRunner
        runner = RooflineRunner(
            descriptor,
            enable_vectorizer=spec.enable_vectorizer,
            vendor_driver=spec.vendor_driver is not False,
            block_delta=_block_delta(spec),
            fast_cache=getattr(spec, "fast_cache", True),
        )
        def args_builder(memory: Memory) -> Sequence[object]:
            return self._allocate(memory) + [0, self.n]
        return runner.run_source(MATMUL_ROWS_SOURCE, "matmul_rows",
                                 args_builder, repeats=spec.repeats,
                                 filename="matmul_rows.c")


#: Per-slice STREAM triad (each thread owns a private slice, so the plain
#: single-array kernel is the whole shard).
TRIAD_SLICE_SOURCE = """
void triad(float* a, float* b, float* c, float scalar, long n) {
  for (long i = 0; i < n; i++) {
    a[i] = b[i] + scalar * c[i];
  }
}
"""


@dataclass
class StreamTriadMtWorkload:
    """``stream-triad-mt``: per-thread triad slices, repeated passes.

    Per-thread footprint is ``3 * n * 4`` bytes at a thread-private address
    range.  One slice fits the shared LLC of every modelled platform at the
    default size, so a lone thread hits in LLC from pass two onward; several
    threads overflow it and evict each other -- the contended-memory-stream
    scenario, with the contention visible in per-hart cache-miss counters.
    """

    n: int = 16384
    passes: int = 3
    #: Scheduler time slice in executed IR instructions; 0 uses the engine's
    #: default quantum.
    quantum: int = 0
    description: str = ("multi-threaded STREAM triad over per-thread slices "
                        "(weak scaling, LLC contention)")
    name: str = field(default="stream-triad-mt", init=False)
    kind: str = field(default="parallel-kernel", init=False)

    def _body(self, index: int, spec) -> ThreadBody:
        def body(machine: Machine, task: Task) -> Iterator[None]:
            module = compile_source_cached(TRIAD_SLICE_SOURCE, "triad.c",
                                           machine.descriptor,
                                           spec.enable_vectorizer,
                                           verify_ir=getattr(spec, "verify_ir",
                                                             False))
            target = target_for_platform(machine.descriptor)
            memory = Memory()
            if index:
                # Shift this thread's slice to a disjoint address range.
                memory.malloc(index * THREAD_ADDRESS_STRIDE)
            a = memory.alloc_float_array([0.0] * self.n)
            b = memory.alloc_float_array(_random_floats(self.n, 13 + index))
            c = memory.alloc_float_array(_random_floats(self.n, 14 + index))
            engine = ExecutionEngine(module, machine, target, task=task,
                                     memory=memory,
                                     fast_dispatch=_fast_dispatch(spec),
                                     block_delta=_block_delta(spec))
            for _ in range(self.passes):
                # Quantum yields mid-pass, plus one boundary per pass (the
                # slice walks are what the LLC-contention model interleaves).
                yield from engine.run_yielding("triad", [a, b, c, 3.0, self.n],
                                               quantum=self.quantum or None)
                yield
        return body

    def threads(self, cpus: int, spec) -> List[Tuple[str, ThreadBody]]:
        return [(f"triad-worker-{index}", self._body(index, spec))
                for index in range(max(1, cpus))]

    def shard_plans(self, cpus: int, spec) -> List[KernelShardPlan]:
        """Describe the shards for the static race detector.

        Mirrors ``_body``'s per-thread allocation exactly (including the
        address-stride shift), so the plan addresses are the ones the
        threads will load and store through.
        """
        plans: List[KernelShardPlan] = []
        for index in range(max(1, cpus)):
            memory = Memory()
            if index:
                memory.malloc(index * THREAD_ADDRESS_STRIDE)
            a = memory.alloc_float_array([0.0] * self.n)
            b = memory.alloc_float_array(_random_floats(self.n, 13 + index))
            c = memory.alloc_float_array(_random_floats(self.n, 14 + index))
            plans.append(KernelShardPlan(
                thread=f"triad-worker-{index}", source=TRIAD_SLICE_SOURCE,
                filename="triad.c", function="triad",
                args=(a, b, c, 3.0, self.n),
            ))
        return plans

    def executable(self, machine: Machine, task: Task,
                   spec) -> Callable[[], None]:
        def run() -> None:
            for _ in range(max(1, spec.invocations)):
                _drain(self.threads(1, spec), machine, task)
        return run

    @property
    def supports_roofline(self) -> bool:
        return True

    def roofline(self, descriptor: PlatformDescriptor, spec):
        from repro.roofline.runner import RooflineRunner
        runner = RooflineRunner(
            descriptor,
            enable_vectorizer=spec.enable_vectorizer,
            vendor_driver=spec.vendor_driver is not False,
            block_delta=_block_delta(spec),
            fast_cache=getattr(spec, "fast_cache", True),
        )
        def args_builder(memory: Memory) -> Sequence[object]:
            a = memory.alloc_float_array([0.0] * self.n)
            b = memory.alloc_float_array(_random_floats(self.n, 13))
            c = memory.alloc_float_array(_random_floats(self.n, 14))
            return [a, b, c, 3.0, self.n]
        return runner.run_source(TRIAD_SLICE_SOURCE, "triad", args_builder,
                                 repeats=spec.repeats, filename="triad.c")


def forkjoin_tree(scale: int = 1) -> SyntheticWorkload:
    """The subtree each fork-join worker replays."""
    tree = SyntheticWorkload(name="forkjoin-worker", entry="fork_main")
    compute_mix = InstructionMix(int_alu=0.55, int_mul=0.05, loads=0.2,
                                 stores=0.05, branches=0.15,
                                 working_set_bytes=8 * 1024, locality=0.9)
    stream_mix = InstructionMix(int_alu=0.2, loads=0.45, stores=0.15,
                                branches=0.2, working_set_bytes=96 * 1024,
                                locality=0.85)
    tree.add(SyntheticFunction("hot_leaf", 600 * scale, compute_mix))
    tree.add(SyntheticFunction("merge_results", 250 * scale, stream_mix))
    tree.add(SyntheticFunction("fan_out", 150 * scale, InstructionMix(),
                               callees=[("hot_leaf", 2), ("merge_results", 1)]))
    tree.add(SyntheticFunction("fork_main", 100 * scale, InstructionMix(),
                               callees=[("fan_out", 2)]))
    return tree


@dataclass
class ForkJoinCalltreeWorkload:
    """``forkjoin-calltree``: worker threads replaying seeded call subtrees.

    Spawns ``workers_per_hart`` threads *per hart*, so every hart's runqueue
    holds more than one runnable task and the round-robin time-slicing is
    actually exercised.  Worker *t* seeds its trace generator with
    ``spec.seed + 101 * t`` and offsets its address space, so per-worker
    streams are distinct but fully deterministic.
    """

    scale: int = 1
    workers_per_hart: int = 2
    repeats: int = 3
    description: str = ("fork-join call-tree replay, multiple worker threads "
                        "per hart")
    name: str = field(default="forkjoin-calltree", init=False)
    kind: str = field(default="parallel-synthetic", init=False)

    def _body(self, index: int, spec) -> ThreadBody:
        tree = forkjoin_tree(self.scale)

        def body(machine: Machine, task: Task) -> Iterator[None]:
            executor = TraceExecutor(
                machine, task,
                seed=spec.seed + 101 * index,
                instruction_factor=instruction_factor_for(machine.descriptor.arch),
                address_offset=index * THREAD_ADDRESS_STRIDE,
            )
            for _ in range(self.repeats):
                executor.run(tree, invocations=1)
                yield
        return body

    def threads(self, cpus: int, spec) -> List[Tuple[str, ThreadBody]]:
        count = max(1, cpus) * self.workers_per_hart
        return [(f"forkjoin-worker-{index}", self._body(index, spec))
                for index in range(count)]

    def shard_plans(self, cpus: int, spec) -> List[TraceShardPlan]:
        """Describe the shards for the static race detector.

        A :class:`~repro.workloads.synthetic.TraceExecutor` lays function
        working sets out from ``0x2000_0000 + address_offset``, advancing by
        ``max(working_set_bytes, 4096) * 2`` per function, so a worker's
        whole footprint fits the summed envelope regardless of the order in
        which its seeded trace first touches each function.
        """
        tree = forkjoin_tree(self.scale)
        extent = sum(max(f.mix.working_set_bytes, 4096) * 2
                     for f in tree.functions.values())
        count = max(1, cpus) * self.workers_per_hart
        return [TraceShardPlan(
                    thread=f"forkjoin-worker-{index}",
                    base=0x2000_0000 + index * THREAD_ADDRESS_STRIDE,
                    extent=extent)
                for index in range(count)]

    def executable(self, machine: Machine, task: Task,
                   spec) -> Callable[[], None]:
        def run() -> None:
            for _ in range(max(1, spec.invocations)):
                _drain(self.threads(1, spec), machine, task)
        return run

    @property
    def supports_roofline(self) -> bool:
        return False

    def roofline(self, descriptor: PlatformDescriptor, spec):
        raise NotImplementedError(
            f"workload {self.name!r} is a synthetic trace replay; the "
            "compiler-driven roofline flow needs a compiled kernel"
        )
