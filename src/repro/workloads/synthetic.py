"""Synthetic call-tree workloads and their trace executor.

The paper profiles sqlite3 from the LLVM test suite -- billions of dynamic
instructions through a deep call tree.  Interpreting that much real code is
out of reach for a Python substrate, so hotspot/flame-graph experiments use
*synthetic workloads*: a call tree whose functions have configurable
instruction mixes, working-set sizes and relative weights.  The
:class:`TraceExecutor` walks the tree and drives the very same machine model
(caches, branch predictor, PMU, sampling interrupts) the compiled kernels
use, pushing and popping real task stack frames so perf samples carry real
call chains.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.machine_ops import MachineOp, OpClass
from repro.kernel.task import Task
from repro.platforms.machine import Machine


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of each operation class in a function's body.

    The fractions need not sum to one; they are normalised.  Loads/stores get
    addresses generated over a working set of ``working_set_bytes`` with a
    mix of sequential and pseudo-random accesses (``locality`` = fraction of
    sequential accesses), which is what determines cache behaviour.
    """

    int_alu: float = 0.45
    int_mul: float = 0.02
    loads: float = 0.25
    stores: float = 0.08
    branches: float = 0.15
    fp: float = 0.0
    calls: float = 0.0
    working_set_bytes: int = 64 * 1024
    locality: float = 0.7
    branch_taken_fraction: float = 0.6
    branch_predictability: float = 0.9

    def normalised(self) -> List[Tuple[str, float]]:
        entries = [
            ("int_alu", self.int_alu), ("int_mul", self.int_mul),
            ("loads", self.loads), ("stores", self.stores),
            ("branches", self.branches), ("fp", self.fp),
        ]
        total = sum(weight for _, weight in entries) or 1.0
        return [(name, weight / total) for name, weight in entries]


@dataclass
class SyntheticFunction:
    """One function in the synthetic call tree."""

    name: str
    #: Units of work done per invocation (each unit is one machine op).
    ops_per_call: int
    mix: InstructionMix = field(default_factory=InstructionMix)
    #: Child calls per invocation: (callee name, how many calls).
    callees: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class SyntheticWorkload:
    """A named call tree with an entry point."""

    name: str
    entry: str
    functions: Dict[str, SyntheticFunction] = field(default_factory=dict)
    #: Multiplier applied to ops_per_call, used to model ISAs that need more
    #: instructions for the same work (the paper's x86 build of sqlite3
    #: retires ~1.8x more instructions than the RISC-V build).
    instruction_factor: float = 1.0

    def add(self, function: SyntheticFunction) -> SyntheticFunction:
        self.functions[function.name] = function
        return self

    def function(self, name: str) -> SyntheticFunction:
        return self.functions[name]

    def scaled(self, factor: float) -> "SyntheticWorkload":
        clone = SyntheticWorkload(self.name, self.entry,
                                  dict(self.functions), factor)
        return clone


class TraceExecutor:
    """Executes a synthetic workload on a machine model."""

    def __init__(self, machine: Machine, task: Task, seed: int = 42,
                 instruction_factor: Optional[float] = None,
                 address_offset: int = 0):
        self.machine = machine
        self.task = task
        self.random = random.Random(seed)
        self.instruction_factor = instruction_factor
        self._base_addresses: Dict[str, int] = {}
        # Parallel workloads give every software thread its own offset so
        # per-thread working sets occupy disjoint address ranges (threads of
        # one process share an address space but not their heaps); a zero
        # offset keeps single-thread traces byte-identical to before.
        self._next_base = 0x2000_0000 + address_offset
        self._sequential_cursor: Dict[str, int] = {}
        self._pc_counter = 0x0100_0000

    # -- address generation -------------------------------------------------------------

    def _address_for(self, function: SyntheticFunction) -> int:
        base = self._base_addresses.get(function.name)
        if base is None:
            base = self._next_base
            self._base_addresses[function.name] = base
            self._next_base += max(function.mix.working_set_bytes, 4096) * 2
            self._sequential_cursor[function.name] = 0
        working_set = max(64, function.mix.working_set_bytes)
        if self.random.random() < function.mix.locality:
            cursor = self._sequential_cursor[function.name]
            self._sequential_cursor[function.name] = (cursor + 8) % working_set
            return base + cursor
        return base + (self.random.randrange(working_set) & ~0x7)

    def _pc(self, function: SyntheticFunction, slot: int) -> int:
        # crc32, not hash(): str hashing is randomised per process
        # (PYTHONHASHSEED), and synthetic pcs must be reproducible across
        # processes for the golden-file CLI tests (and any cross-run diff).
        digest = zlib.crc32(function.name.encode("utf-8"))
        return (digest & 0xFFFF) * 0x100 + (slot % 64) * 4 + 0x0100_0000

    # -- execution -------------------------------------------------------------------------

    def run(self, workload: SyntheticWorkload, invocations: int = 1) -> None:
        factor = (
            self.instruction_factor
            if self.instruction_factor is not None
            else workload.instruction_factor
        )
        for _ in range(invocations):
            self._run_function(workload, workload.function(workload.entry), factor)

    def _run_function(self, workload: SyntheticWorkload,
                      function: SyntheticFunction, factor: float) -> None:
        machine = self.machine
        task = self.task
        task.push_frame(function.name)
        machine.execute(MachineOp(OpClass.CALL, taken=True,
                                  pc=self._pc(function, 0)), task)
        try:
            ops = max(1, int(function.ops_per_call * factor))
            entries = function.mix.normalised()
            callees = list(function.callees)
            # Interleave child calls evenly through the body.
            call_points = set()
            total_calls = sum(count for _, count in callees)
            if total_calls:
                stride = max(1, ops // (total_calls + 1))
                position = stride
                for callee_name, count in callees:
                    for _ in range(count):
                        call_points.add((position, callee_name))
                        position += stride

            pending_calls = sorted(call_points)
            next_call_index = 0
            for slot in range(ops):
                while (next_call_index < len(pending_calls)
                       and pending_calls[next_call_index][0] == slot):
                    callee_name = pending_calls[next_call_index][1]
                    next_call_index += 1
                    self._run_function(workload, workload.function(callee_name), factor)
                self._emit_op(function, entries, slot)
            # Any calls scheduled past the body length still happen.
            while next_call_index < len(pending_calls):
                callee_name = pending_calls[next_call_index][1]
                next_call_index += 1
                self._run_function(workload, workload.function(callee_name), factor)
        finally:
            machine.execute(MachineOp(OpClass.RET, taken=True,
                                      pc=self._pc(function, 1)), task)
            task.pop_frame()

    def _emit_op(self, function: SyntheticFunction,
                 entries: Sequence[Tuple[str, float]], slot: int) -> None:
        draw = self.random.random()
        cumulative = 0.0
        kind = entries[-1][0]
        for name, weight in entries:
            cumulative += weight
            if draw <= cumulative:
                kind = name
                break
        pc = self._pc(function, slot)
        machine = self.machine
        task = self.task
        mix = function.mix
        if kind == "int_alu":
            machine.execute(MachineOp(OpClass.INT_ALU, pc=pc), task)
        elif kind == "int_mul":
            machine.execute(MachineOp(OpClass.INT_MUL, pc=pc), task)
        elif kind == "loads":
            machine.execute(MachineOp(OpClass.LOAD, size_bytes=8,
                                      address=self._address_for(function), pc=pc), task)
        elif kind == "stores":
            machine.execute(MachineOp(OpClass.STORE, size_bytes=8,
                                      address=self._address_for(function), pc=pc), task)
        elif kind == "fp":
            machine.execute(MachineOp(OpClass.FP_MUL, pc=pc), task)
        else:  # branches
            predictable = self.random.random() < mix.branch_predictability
            taken = (
                self.random.random() < mix.branch_taken_fraction
                if not predictable
                else (slot % 8) != 0
            )
            machine.execute(MachineOp(OpClass.BRANCH, taken=taken,
                                      target=pc + 16, pc=pc), task)
