"""Workloads used by the evaluation.

Two families:

* **Compiled kernels** (:mod:`repro.workloads.kernels`) -- KernelC sources
  (the paper's tiled matmul, plus dot product, STREAM triad, stencil and
  memset) that run through the full compiler + VM pipeline; used by the
  roofline experiments (Figure 4).
* **Synthetic call-tree workloads** (:mod:`repro.workloads.synthetic` and
  :mod:`repro.workloads.sqlite3_like`) -- trace generators that drive the
  machine model with a realistic call-stack structure and instruction mix;
  the sqlite3-like workload reproduces the hotspot distribution of the
  paper's Table 2 / Figure 3 without needing the real sqlite3 amalgamation.

Both families are discoverable by name through :data:`registry`
(:mod:`repro.workloads.registry`), which is what the session API
(:mod:`repro.api`) and the CLI consume::

    from repro.workloads import registry
    workload = registry["sqlite3-like"]          # defaults
    workload = registry.create("matmul-tiled", n=32)
"""

from repro.workloads.kernels import (
    MATMUL_TILED_SOURCE,
    MATMUL_NAIVE_SOURCE,
    DOT_PRODUCT_SOURCE,
    STREAM_TRIAD_SOURCE,
    STENCIL_SOURCE,
    MEMSET_SOURCE,
    matmul_args_builder,
    dot_args_builder,
    triad_args_builder,
    stencil_args_builder,
    memset_args_builder,
)
from repro.workloads.synthetic import (
    SyntheticFunction,
    SyntheticWorkload,
    InstructionMix,
    TraceExecutor,
)
from repro.workloads.sqlite3_like import sqlite3_like_workload, SQLITE3_HOT_FUNCTIONS
from repro.workloads.registry import WorkloadRegistry, micro_calltree_workload, registry

__all__ = [
    "MATMUL_TILED_SOURCE",
    "MATMUL_NAIVE_SOURCE",
    "DOT_PRODUCT_SOURCE",
    "STREAM_TRIAD_SOURCE",
    "STENCIL_SOURCE",
    "MEMSET_SOURCE",
    "matmul_args_builder",
    "dot_args_builder",
    "triad_args_builder",
    "stencil_args_builder",
    "memset_args_builder",
    "SyntheticFunction",
    "SyntheticWorkload",
    "InstructionMix",
    "TraceExecutor",
    "sqlite3_like_workload",
    "SQLITE3_HOT_FUNCTIONS",
    "WorkloadRegistry",
    "micro_calltree_workload",
    "registry",
]
