"""The ``repro serve`` daemon: asyncio HTTP/1.1, admission control, caching.

A dependency-free profiling service (``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 reader/writer -- the repo takes no third-party
packages).  Request lifecycle::

    client ──► admission ──► result cache ──► warm pool ──► cache fill ──► client
                  │               │
                  │               └─ hit: serve cached bytes, no worker
                  └─ queue full: 429 + Retry-After

Endpoints:

* ``POST /run``     -- one JSON-shaped :class:`~repro.api.executor.RunRequest`;
  responds ``{"run": ..., "renderings": ...}``.
* ``POST /plan``    -- ``{"requests": [...]}``; each item is served from the
  same per-request cache, misses execute concurrently across the pool.
* ``POST /compare`` -- ``{"platforms": [...], "workload": ..., "spec": ...}``;
  responds ``{"comparison": ..., "report": ...}``.
* ``POST /analyze`` -- ``{"platform": ..., "workload"|"all": ...}``; the
  static-analysis report.
* ``GET /metrics``  -- JSON, or Prometheus text with ``?format=prometheus``.
* ``GET /healthz``, ``GET /capabilities``.

Backpressure: at most ``queue_limit`` requests may be admitted (executing +
waiting) at once; past that the daemon answers 429 with a ``Retry-After``
hint instead of queueing unboundedly.  Admitted requests run under a
concurrency semaphore sized to the worker pool and a per-request timeout
(504 on expiry; the slot is held until the worker actually finishes, so a
timed-out request cannot hide load from admission control).  A worker
process dying fails only the in-flight requests (structured 500s) and
respawns the pool once.

Identical concurrent requests are coalesced: the second request awaits the
first's execution instead of occupying a second worker, then both are
served the same bytes -- the same dedup the result cache provides, extended
to the in-flight window.

Responses carry ``X-Repro-Cache: hit|miss|bypass|coalesced``,
``X-Repro-Elapsed-Ms`` and per-request ``X-Repro-Trace-Id`` headers; cached
*bodies* are byte-identical across hit and fill, which the end-to-end
determinism tests assert.

``GET /metrics`` is built on the unified telemetry registry
(:mod:`repro.telemetry`): worker processes ship each request's registry
delta back alongside the cacheable payload and the daemon merges it, so
block-delta, fast-cache, compile-cache and pool series are served next to
the service's own request counters (JSON under the ``engine`` key;
Prometheus appended after the service families).
"""

from __future__ import annotations

import asyncio
import json
import signal
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro import faults as _faults
from repro import telemetry as _telemetry
from repro.api.executor import RunRequest
from repro.service import pool as pool_module
from repro.service import wire
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.pool import WarmPool, WorkerCrash
from repro.service.resilience import (
    PROBE,
    REFUSE_OPEN,
    REFUSE_QUARANTINED,
    CircuitBreaker,
)


def _now() -> float:
    """Host wall-clock, for served-latency metrics only.

    Latency histograms and Retry-After hints are observability, not model
    state: nothing here feeds modelled time, cached bodies or any golden
    output (the metrics goldens normalize latency fields).  Every clock
    read in the service funnels through this one audited site.
    """
    return perf_counter()  # repro-lint: allow[wall-clock] -- served-latency metrics and Retry-After hints only; never modelled time or cached bytes


#: Upper bound on accepted request bodies (a plan of a few thousand requests
#: fits; anything bigger is a client bug, answered with 413).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Header clients set to skip the cache lookup (the fill still happens).
BYPASS_HEADER = "x-repro-no-cache"


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` is configured by."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: Worker processes; 0 executes inline on one daemon-side thread.
    workers: int = 2
    #: Admission bound: executing + queued requests past this get 429.
    queue_limit: int = 32
    #: Per-request execution timeout in seconds (504 past it).
    request_timeout: float = 300.0
    #: Result-cache entry bound.
    cache_entries: int = 256
    #: Platforms whose machines/kernels the pool initializer pre-warms.
    warm_platforms: Tuple[str, ...] = ("SpacemiT X60",)
    #: Hart counts to pre-build machines for, per warm platform.
    warm_cpus: Tuple[int, ...] = (1,)
    #: Whether the initializer precompiles every registry kernel workload.
    warm_kernels: bool = True
    #: Optional disk-store root backing the result cache: filled entries
    #: persist content-addressed under this directory, so a restarted
    #: daemon (and ``repro sweep`` against the same store) serves them as
    #: hits without re-executing.  None keeps the cache memory-only.
    cache_dir: Optional[str] = None
    #: Graceful-drain budget in seconds: on SIGTERM/SIGINT/:meth:`close`
    #: the daemon stops accepting and lets in-flight requests finish; past
    #: this deadline they get a clean 503 instead of a hung connection.
    drain_timeout: float = 10.0
    #: Crash-loop breaker: this many worker crashes within
    #: ``breaker_window`` seconds open it (degraded cache-only mode).
    breaker_threshold: int = 3
    breaker_window: float = 30.0
    #: Seconds an open breaker waits before half-open probing.
    breaker_cooldown: float = 5.0
    #: Crashes of one cache key before that key is quarantined outright.
    quarantine_after: int = 2


class _DrainAborted(Exception):
    """An in-flight request outlived the drain deadline (internal)."""


class _Reject(Exception):
    """An error response decided before/without executing (status + body)."""

    def __init__(self, status: int, payload: dict,
                 headers: Optional[dict] = None):
        super().__init__(payload.get("error", {}).get("message", ""))
        self.status = status
        self.payload = payload
        self.headers = dict(headers or {})


@dataclass
class _HttpRequest:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes


class ReproService:
    """One daemon instance: server socket, cache, metrics, warm pool."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        store = None
        if config.cache_dir:
            from repro.cache.store import DiskCache
            store = DiskCache(config.cache_dir)
        self.cache = ResultCache(config.cache_entries, store=store)
        self.metrics = ServiceMetrics()
        warm_configs = [(self._canonical_platform(name), True, cpus)
                        for name in config.warm_platforms
                        for cpus in config.warm_cpus]
        kernel_plan = (pool_module.warm_kernel_plan(
            [self._canonical_platform(name)
             for name in config.warm_platforms])
            if config.warm_kernels else ())
        self.pool = WarmPool(config.workers, warm_configs, kernel_plan)
        self._slots = asyncio.Semaphore(self.pool.concurrency)
        self._admitted = 0
        self._in_flight = 0
        #: Monotonic request ordinal; renders the X-Repro-Trace-Id header.
        self._request_seq = 0
        #: Recent pool service times in seconds (executed requests only,
        #: cache hits excluded) -- the observed service rate Retry-After
        #: hints are derived from.
        self._service_seconds: "deque[float]" = deque(maxlen=32)
        self._pending: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            window=config.breaker_window,
            cooldown=config.breaker_cooldown,
            quarantine_after=config.quarantine_after,
            clock=_now)
        self._draining = False
        self._closed = False
        #: Set while no requests are admitted; the drain waits on it.
        self._idle = asyncio.Event()
        self._idle.set()
        #: Set once the drain deadline passes: in-flight awaits abort to 503.
        self._drain_abort = asyncio.Event()
        #: Open connection handlers (the drain waits for responses to flush).
        self._open_connections = 0
        self._no_connections = asyncio.Event()
        self._no_connections.set()

    # -- lifecycle ----------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    @property
    def port(self) -> int:
        """The bound port (differs from the config's when it asked for 0)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: Optional[float] = None) -> dict:
        """Graceful drain: stop accepting, finish (or 503) in-flight work,
        flush the write-through cache.

        In-flight requests get the full ``drain_timeout`` (or *timeout*) to
        complete and write their responses; past the deadline each one is
        answered with a clean 503 ``ShuttingDown`` -- never a hung
        connection or a truncated body.  Returns a small summary dict.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        budget = self.config.drain_timeout if timeout is None else timeout
        aborted = False
        if self._admitted:
            try:
                await asyncio.wait_for(self._idle.wait(), max(0.0, budget))
            except asyncio.TimeoutError:
                aborted = True
                self._drain_abort.set()
        # Whether requests completed or were aborted, wait (bounded) for
        # their connection handlers to write and close -- that is what makes
        # "completes or gets a clean 503" true, not just likely.
        try:
            await asyncio.wait_for(self._no_connections.wait(), 5.0)
        except asyncio.TimeoutError:
            pass
        flushed = self.cache.flush()
        return {"aborted_in_flight": aborted, "cache_flushed": flushed}

    async def close(self, drain_timeout: Optional[float] = None) -> None:
        """Drain gracefully, then shut the worker pool down."""
        if self._closed:
            return
        self._closed = True
        await self.drain(drain_timeout)
        self.pool.shutdown()

    # -- HTTP plumbing ------------------------------------------------------------------

    @staticmethod
    def _canonical_platform(name: str) -> str:
        from repro.platforms import platform_by_name
        return platform_by_name(name).name

    async def _read_request(self, reader: asyncio.StreamReader) -> _HttpRequest:
        request_line = await reader.readline()
        if not request_line.strip():
            raise _Reject(400, wire.error_payload(
                "BadRequest", "empty request line"))
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2))
        except ValueError:
            raise _Reject(400, wire.error_payload(
                "BadRequest", "malformed request line")) from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 100:
                raise _Reject(400, wire.error_payload(
                    "BadRequest", "too many headers"))
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _Reject(400, wire.error_payload(
                "BadRequest", "malformed Content-Length")) from None
        if length > MAX_BODY_BYTES:
            raise _Reject(413, wire.error_payload(
                "PayloadTooLarge",
                f"request body exceeds {MAX_BODY_BYTES} bytes"))
        body = await reader.readexactly(length) if length else b""
        path, _sep, query_string = target.partition("?")
        query: Dict[str, str] = {}
        for pair in query_string.split("&"):
            if pair:
                key, _sep, value = pair.partition("=")
                query[key] = value
        return _HttpRequest(method=method, path=path, query=query,
                            headers=headers, body=body)

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        body: bytes, content_type: str = "application/json",
                        headers: Optional[dict] = None) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._open_connections += 1
        self._no_connections.clear()
        try:
            await self._handle_connection_body(reader, writer)
        finally:
            self._open_connections -= 1
            if self._open_connections == 0:
                self._no_connections.set()

    async def _handle_connection_body(self, reader: asyncio.StreamReader,
                                      writer: asyncio.StreamWriter) -> None:
        status, body = 500, wire.encode_body(
            wire.error_payload("Internal", "unhandled service error"))
        content_type, extra = "application/json", {}
        started = _now()
        endpoint = "unknown"
        self._request_seq += 1
        trace_id = f"req-{self._request_seq:06d}"
        try:
            request = await self._read_request(reader)
            endpoint = f"{request.method} {request.path}"
            status, body, content_type, extra = await self._dispatch(request)
        except _Reject as reject:
            status, body = reject.status, wire.encode_body(reject.payload)
            extra = reject.headers
            if reject.status == 429:
                self.metrics.rejected += 1
                _telemetry.REGISTRY.counter(
                    "repro_service_rejected_total",
                    "Requests bounced with 429 by admission control").inc()
            else:
                self.metrics.errors += 1
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as error:  # a daemon bug must not kill the server
            status = 500
            body = wire.encode_body(wire.error_payload(
                type(error).__name__, str(error)))
            self.metrics.errors += 1
        elapsed = _now() - started
        self.metrics.count_request(endpoint)
        self.metrics.observe_latency(endpoint, elapsed)
        # Interleaved asyncio requests would corrupt a span stack, so each
        # request records as a flat root (no-op while tracing is off).
        _telemetry.record("service_request", cat="service",
                          wall_dur_us=int(elapsed * 1_000_000),
                          trace_id=trace_id, endpoint=endpoint, status=status)
        extra = dict(extra)
        extra.setdefault("X-Repro-Elapsed-Ms", f"{elapsed * 1000:.3f}")
        extra.setdefault("X-Repro-Trace-Id", trace_id)
        # Injected transport faults: both cost the client a retry, never
        # wrong bytes -- a dropped connection surfaces as Unreachable, a
        # stalled response merely delays the identical payload.
        injector = _faults.active()
        if injector is not None:
            if injector.fire("daemon.conn_drop"):
                writer.close()
                return
            if injector.fire("daemon.stall_response"):
                spec = injector.spec_for("daemon.stall_response")
                await asyncio.sleep(spec.ms / 1000.0)
        try:
            self._write_response(writer, status, body, content_type, extra)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    # -- routing ------------------------------------------------------------------------

    async def _dispatch(self, request: _HttpRequest):
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, wire.encode_body(self._healthz()), "application/json", {}
        if route == ("GET", "/metrics"):
            return self._metrics_response(request)
        if route == ("GET", "/capabilities"):
            return 200, wire.encode_body(self._capabilities()), \
                "application/json", {}
        if route == ("POST", "/run"):
            return await self._handle_run(request)
        if route == ("POST", "/plan"):
            return await self._handle_plan(request)
        if route == ("POST", "/compare"):
            return await self._handle_compare(request)
        if route == ("POST", "/analyze"):
            return await self._handle_analyze(request)
        known_paths = {"/healthz", "/metrics", "/capabilities", "/run",
                       "/plan", "/compare", "/analyze"}
        if request.path in known_paths:
            raise _Reject(405, wire.error_payload(
                "MethodNotAllowed",
                f"{request.method} not supported on {request.path}"))
        raise _Reject(404, wire.error_payload(
            "NotFound", f"unknown path {request.path}"))

    # -- simple GET endpoints -----------------------------------------------------------

    def _gauges(self) -> dict:
        return {
            "queue_depth": max(0, self._admitted - self._in_flight),
            "in_flight": self._in_flight,
            "queue_limit": self.config.queue_limit,
        }

    def _healthz(self) -> dict:
        if self._draining:
            status = "draining"
        elif self.breaker.state() != "closed":
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "workers": self.config.workers,
            "worker_restarts": self.pool.restarts,
            "admitted": self._admitted,
            "queue_limit": self.config.queue_limit,
            "breaker": self.breaker.to_dict(),
        }

    def _sync_registry_gauges(self) -> None:
        """Mirror point-in-time service state into the unified registry.

        Counter-shaped series (admissions, rejections, pool restocks,
        engine tallies) accumulate where they happen; gauges are sampled
        here, right before a render, so ``/metrics`` reports the state at
        serving time whichever format is asked for.
        """
        registry = _telemetry.REGISTRY
        queue = registry.gauge("repro_service_queue",
                               "Admission-control occupancy by state")
        for name, value in self._gauges().items():
            queue.set(value, state=name)
        pool_gauge = registry.gauge("repro_service_pool",
                                    "Worker-pool state")
        pool_gauge.set(self.pool.workers, state="workers")
        pool_gauge.set(self.pool.restarts, state="restarts")
        cache_gauge = registry.gauge("repro_result_cache",
                                     "Result-cache state by stat")
        for name, value in self.cache.stats().items():
            cache_gauge.set(value, state=name)
        breaker_gauge = registry.gauge("repro_service_breaker",
                                       "Crash-loop breaker state")
        breaker_gauge.set(0 if self.breaker.state() == "closed" else 1,
                          state="open")
        breaker_gauge.set(len(self.breaker.quarantined), state="quarantined")
        breaker_gauge.set(self.breaker.opens, state="opens")

    def _metrics_response(self, request: _HttpRequest):
        wants_prometheus = (
            request.query.get("format") == "prometheus"
            or "text/plain" in request.headers.get("accept", ""))
        self.metrics.worker_restarts = self.pool.restarts
        self._sync_registry_gauges()
        if wants_prometheus:
            # Service families first (their tested lines stay byte-stable),
            # then the unified registry: engine tallies merged back from
            # workers, pool restocks, queue/cache gauges.
            text = (self.metrics.prometheus(self._gauges(),
                                            self.cache.stats())
                    + _telemetry.REGISTRY.prometheus())
            return 200, text.encode("utf-8"), \
                "text/plain; version=0.0.4; charset=utf-8", {}
        payload = self.metrics.to_dict(self._gauges(), self.cache.stats())
        payload["engine"] = _telemetry.REGISTRY.to_dict()
        return 200, wire.encode_body(payload), "application/json", {}

    def _capabilities(self) -> dict:
        from repro.platforms import all_platforms
        from repro.pmu.vendors import all_capabilities
        from repro.workloads import registry
        capabilities = all_capabilities()
        return {
            "capabilities": [capabilities[d.name].as_row()
                             for d in all_platforms() if d.is_riscv],
            "platforms": [
                {"name": d.name, "arch": d.arch, "board": d.board,
                 "harts": d.harts,
                 "vector": d.vector.extension or "none"}
                for d in all_platforms()
            ],
            "workloads": list(registry),
            "endpoints": ["/run", "/plan", "/compare", "/analyze",
                          "/metrics", "/healthz", "/capabilities"],
        }

    # -- executing endpoints ------------------------------------------------------------

    def _parse_json(self, request: _HttpRequest) -> dict:
        try:
            payload = json.loads(request.body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _Reject(400, wire.error_payload(
                "BadRequest", f"request body is not valid JSON: {error}"
            )) from None
        if not isinstance(payload, dict):
            raise _Reject(400, wire.error_payload(
                "BadRequest", "request body must be a JSON object"))
        return payload

    def _canonical_run_request(self, payload: dict) -> dict:
        """Validate + canonicalize one run request (platform alias, spec
        defaults, workload existence) so equivalent spellings share a cache
        key and bad requests fail with 400 before touching a worker."""
        from repro.workloads import registry
        try:
            request = RunRequest.from_dict(payload)
            canonical = request.to_dict()
            canonical["platform"] = self._canonical_platform(
                canonical["platform"])
            if canonical["workload"] not in registry:
                raise ValueError(
                    f"unknown workload {canonical['workload']!r}; "
                    f"available: {', '.join(sorted(registry))}")
        except (KeyError, ValueError, TypeError) as error:
            raise _Reject(400, wire.error_payload(
                "BadRequest", str(error))) from None
        return canonical

    def _bypass(self, request: _HttpRequest) -> bool:
        return request.headers.get(BYPASS_HEADER, "") not in ("", "0")

    def _retry_after_hint(self, slots_needed: int = 1) -> float:
        """A load-derived Retry-After: how long until the queue has drained
        enough to admit *slots_needed* more requests.

        The backlog (everything admitted plus the rejected request's slots)
        drains in waves of ``pool.concurrency`` at the recently observed
        mean service time, so the hint scales with actual load instead of
        being a constant.  Before any request has completed there is no
        observed rate; fall back to a tenth of the request timeout.
        Clamped to [0.1s, request_timeout] -- fractional, so lightly loaded
        daemons hint sub-second retries; clients parse it as a float from
        header and body alike.
        """
        if not self._service_seconds:
            return float(max(1, int(self.config.request_timeout / 10)))
        mean = sum(self._service_seconds) / len(self._service_seconds)
        backlog = self._admitted + slots_needed
        waves = -(-backlog // self.pool.concurrency)  # ceil division
        return min(self.config.request_timeout,
                   max(0.1, round(waves * mean, 3)))

    def _check_admission(self, slots_needed: int = 1) -> None:
        if self._draining:
            raise _Reject(503, wire.error_payload(
                "ShuttingDown",
                "the service is draining and no longer accepts work",
                retry_after=self.config.drain_timeout),
                headers={"Retry-After": f"{self.config.drain_timeout:g}"})
        if self._admitted + slots_needed > self.config.queue_limit:
            retry_after = self._retry_after_hint(slots_needed)
            raise _Reject(
                429,
                wire.error_payload(
                    "Overloaded",
                    f"admission queue is full ({self._admitted} admitted, "
                    f"limit {self.config.queue_limit}); retry later",
                    retry_after=retry_after),
                # The same fractional value in the header and the error
                # body: ServiceClient reads either source identically.
                headers={"Retry-After": f"{retry_after:g}"})

    async def _pool_result(self, future, loop):
        """Await a pool future, racing the drain-abort signal.

        Past the drain deadline the drain sets ``_drain_abort``; every
        in-flight await loses the race and surfaces :class:`_DrainAborted`
        so its request is answered with a clean 503 instead of hanging
        until the worker (which may be mid-simulation) finishes.
        """
        wrapped = asyncio.ensure_future(
            asyncio.wrap_future(future, loop=loop))
        abort = asyncio.ensure_future(self._drain_abort.wait())
        try:
            done, _pending = await asyncio.wait(
                {wrapped, abort}, timeout=self.config.request_timeout,
                return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            wrapped.cancel()
            raise
        finally:
            abort.cancel()
        if wrapped in done:
            return wrapped.result()
        wrapped.cancel()
        if abort.done():
            raise _DrainAborted()
        raise asyncio.TimeoutError()

    async def _execute_job(self, endpoint: str,
                           fn: Callable[[dict], dict],
                           payload: dict, key: Optional[str] = None,
                           probe: bool = False) -> dict:
        """Run one admitted job on the pool under slot + timeout control.

        The admission slot and the concurrency slot are both released when
        the worker *finishes* (future done callback), not when the await
        ends -- a timed-out request keeps occupying capacity until its
        worker is actually free, so admission control never oversubscribes.

        ``key`` (the cache key, when there is one) and ``probe`` feed the
        crash-loop breaker: clean completions and worker crashes are
        reported so it can open, quarantine and close.
        """
        loop = asyncio.get_running_loop()
        self._admitted += 1
        self._idle.clear()
        _telemetry.REGISTRY.counter(
            "repro_service_admitted_total",
            "Requests admitted past admission control").inc(endpoint=endpoint)
        await self._slots.acquire()
        self._in_flight += 1
        generation = self.pool.generation
        try:
            future = self.pool.submit(fn, payload)
        except Exception as error:
            self._release_job()
            self.pool.respawn(generation)
            raise _Reject(503, wire.error_payload(
                "WorkerPoolUnavailable",
                f"could not submit to the worker pool: {error}")) from None
        def _release_when_done(_future) -> None:
            try:
                loop.call_soon_threadsafe(self._release_job)
            except RuntimeError:
                pass  # loop already closed at shutdown; nothing to release

        future.add_done_callback(_release_when_done)
        self.metrics.count_execution(endpoint)
        submitted = _now()
        try:
            result = await self._pool_result(future, loop)
            # Completed executions feed the observed service rate that
            # sizes Retry-After hints under load.
            self._service_seconds.append(_now() - submitted)
            if key is not None:
                self.breaker.record_success(key, probe=probe)
            return result
        except _DrainAborted:
            if probe:
                self.breaker.abort_probe()
            raise _Reject(503, wire.error_payload(
                "ShuttingDown",
                "the service shut down before this request finished; "
                "retry against a live instance",
                retry_after=self.config.drain_timeout),
                headers={"Retry-After":
                         f"{self.config.drain_timeout:g}"}) from None
        except asyncio.TimeoutError:
            if probe:
                self.breaker.abort_probe()
            self.metrics.timeouts += 1
            raise _Reject(504, wire.error_payload(
                "Timeout",
                f"request exceeded the {self.config.request_timeout:g}s "
                "execution timeout")) from None
        except WorkerCrash:
            if self.pool.respawn(generation):
                note = "the worker pool was respawned"
            else:
                note = "the worker pool had already been respawned"
            if key is not None:
                self.breaker.record_crash(key, probe=probe)
            raise _Reject(500, wire.error_payload(
                "WorkerCrashed",
                f"a worker process died executing this request; {note}; "
                "retry the request")) from None
        except (KeyError, ValueError) as error:
            if probe:
                self.breaker.abort_probe()
            raise _Reject(400, wire.error_payload(
                "BadRequest", str(error))) from None
        except Exception as error:
            if probe:
                self.breaker.abort_probe()
            raise _Reject(500, wire.error_payload(
                type(error).__name__, str(error))) from None

    def _merge_worker_telemetry(self, endpoint: str,
                                shipped: Optional[dict]) -> None:
        """Fold a worker's shipped telemetry into the daemon's registry.

        Only when the body ran in a separate worker process: inline mode
        (``workers=0``) executes in this process, so its tallies already
        landed in the daemon's registry and merging would double-count.
        """
        if not shipped or self.pool.workers == 0:
            return
        _telemetry.REGISTRY.merge(shipped["metrics"])
        if shipped.get("spans"):
            parent = _telemetry.record("service_worker", cat="service",
                                       endpoint=endpoint)
            if parent is not None:
                _telemetry.TRACER.attach_wire(shipped["spans"], parent=parent)

    def _release_job(self) -> None:
        self._admitted = max(0, self._admitted - 1)
        self._in_flight = max(0, self._in_flight - 1)
        self._slots.release()
        if self._admitted == 0:
            self._idle.set()

    async def _execute_cached(self, endpoint: str, kind: str,
                              fn: Callable[[dict], dict], canonical: dict,
                              bypass: bool) -> Tuple[bytes, str]:
        """Serve one canonical request through cache -> coalesce -> pool."""
        key = wire.cache_key(kind, canonical)
        if bypass:
            self.cache.note_bypass()
        else:
            cached = self.cache.get(key)
            if cached is not None:
                return cached, "hit"
            pending = self._pending.get(key)
            if pending is not None:
                self.metrics.coalesced += 1
                body = await asyncio.shield(pending)
                return body, "coalesced"
        # Cache hits are served above even while degraded; only an actual
        # execution consults the crash-loop breaker.
        verdict, hint = self.breaker.admit(key)
        if verdict == REFUSE_QUARANTINED:
            raise _Reject(503, wire.error_payload(
                "Quarantined",
                "this request crashed worker processes repeatedly and is "
                "quarantined; it will not be retried by this instance"))
        if verdict == REFUSE_OPEN:
            raise _Reject(503, wire.error_payload(
                "Degraded",
                "the service is in degraded cache-only mode after repeated "
                "worker crashes; cache hits are still served, retry later",
                retry_after=hint),
                headers={"Retry-After": f"{hint:g}"})
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        if not bypass:
            self._pending[key] = waiter
        try:
            result = await self._execute_job(endpoint, fn, canonical,
                                             key=key, probe=verdict == PROBE)
            self._merge_worker_telemetry(endpoint, result.get("telemetry"))
            body = wire.encode_body(result["payload"])
            self.cache.put(key, body)
            if not waiter.done():
                waiter.set_result(body)
            return body, "bypass" if bypass else "miss"
        except BaseException as error:
            if not waiter.done():
                waiter.set_exception(error)
            # A coalesced waiter that never awaits must not warn on teardown.
            waiter.exception() if waiter.done() else None
            raise
        finally:
            if self._pending.get(key) is waiter:
                del self._pending[key]

    async def _handle_run(self, request: _HttpRequest):
        canonical = self._canonical_run_request(self._parse_json(request))
        bypass = self._bypass(request)
        if not bypass and wire.cache_key("run", canonical) not in self.cache \
                and wire.cache_key("run", canonical) not in self._pending:
            self._check_admission()
        elif bypass:
            self._check_admission()
        body, cache_state = await self._execute_cached(
            "POST /run", "run", pool_module.execute_run_payload,
            canonical, bypass)
        return 200, body, "application/json", {"X-Repro-Cache": cache_state}

    async def _handle_plan(self, request: _HttpRequest):
        payload = self._parse_json(request)
        requests = payload.get("requests")
        if not isinstance(requests, list) or not requests:
            raise _Reject(400, wire.error_payload(
                "BadRequest",
                "a plan needs a non-empty 'requests' list"))
        canonicals = [self._canonical_run_request(item) for item in requests]
        bypass = self._bypass(request)
        keys = [wire.cache_key("run", canonical) for canonical in canonicals]
        misses = len(keys) if bypass else sum(
            1 for key in keys
            if key not in self.cache and key not in self._pending)
        self._check_admission(misses)

        async def serve_one(canonical: dict):
            try:
                return await self._execute_cached(
                    "POST /plan", "run", pool_module.execute_run_payload,
                    canonical, bypass)
            except _Reject as reject:
                return wire.encode_body(reject.payload), "error"

        results = await asyncio.gather(
            *(serve_one(canonical) for canonical in canonicals))
        entries = [json.loads(body.decode("utf-8")) for body, _state in results]
        states = [state for _body, state in results]
        body = wire.encode_body({"runs": entries, "cache": states})
        return 200, body, "application/json", \
            {"X-Repro-Cache": ",".join(states)}

    async def _handle_compare(self, request: _HttpRequest):
        payload = self._parse_json(request)
        from repro.workloads import registry
        try:
            platforms = payload.get("platforms")
            if not isinstance(platforms, list) or len(platforms) < 1:
                raise ValueError("compare needs a 'platforms' list")
            workload = payload.get("workload")
            if workload not in registry:
                raise ValueError(
                    f"unknown workload {workload!r}; available: "
                    f"{', '.join(sorted(registry))}")
            canonical = {
                "platforms": [self._canonical_platform(p) for p in platforms],
                "workload": workload,
                "params": dict(payload.get("params", {})),
                "spec": __import__("repro.api.spec", fromlist=["ProfileSpec"])
                .ProfileSpec.from_dict(payload.get("spec", {})).to_dict(),
            }
        except (KeyError, ValueError, TypeError) as error:
            raise _Reject(400, wire.error_payload(
                "BadRequest", str(error))) from None
        bypass = self._bypass(request)
        if bypass or wire.cache_key("compare", canonical) not in self.cache:
            self._check_admission()
        body, cache_state = await self._execute_cached(
            "POST /compare", "compare", pool_module.execute_compare_payload,
            canonical, bypass)
        return 200, body, "application/json", {"X-Repro-Cache": cache_state}

    async def _handle_analyze(self, request: _HttpRequest):
        payload = self._parse_json(request)
        from repro.workloads import registry
        try:
            canonical = {
                "platform": self._canonical_platform(
                    payload.get("platform", "SpacemiT X60")),
                "cpus": int(payload.get("cpus", 1)),
                "workload": payload.get("workload"),
                "params": dict(payload.get("params", {})),
                "all": bool(payload.get("all", False)),
            }
            if not canonical["all"]:
                if canonical["workload"] not in registry:
                    raise ValueError(
                        f"unknown workload {canonical['workload']!r}; "
                        f"available: {', '.join(sorted(registry))}")
        except (KeyError, ValueError, TypeError) as error:
            raise _Reject(400, wire.error_payload(
                "BadRequest", str(error))) from None
        bypass = self._bypass(request)
        if bypass or wire.cache_key("analyze", canonical) not in self.cache:
            self._check_admission()
        body, cache_state = await self._execute_cached(
            "POST /analyze", "analyze", pool_module.execute_analyze_payload,
            canonical, bypass)
        return 200, body, "application/json", {"X-Repro-Cache": cache_state}


# -- entry points -------------------------------------------------------------------------


async def _serve(config: ServiceConfig,
                 ready: Optional[Callable[[ReproService], None]] = None) -> None:
    service = ReproService(config)
    await service.start()
    if ready is not None:
        ready(service)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            continue  # non-main thread or unsupported platform
        installed.append(signum)
    try:
        if installed:
            # The server is already accepting (start() above); sleep until
            # a signal asks for the graceful drain.
            await stop.wait()
        else:
            await service.serve_forever()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await service.close()


def serve(config: ServiceConfig,
          announce: Optional[Callable[[str], None]] = None) -> None:
    """Run the daemon until interrupted (the ``repro serve`` body)."""

    def _ready(service: ReproService) -> None:
        if announce is not None:
            announce(service.address)

    try:
        asyncio.run(_serve(config, _ready))
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """A daemon running on a background thread -- tests and benchmarks.

    Use as a context manager::

        with BackgroundServer(ServiceConfig(port=0, workers=0)) as server:
            client = ServiceClient(server.address)

    ``port=0`` binds an ephemeral port; :attr:`address` reports the real one
    once the server is up.  The service object itself is reachable as
    :attr:`service` for white-box assertions (cache stats, restart counts).
    """

    def __init__(self, config: ServiceConfig, startup_timeout: float = 60.0):
        self.config = config
        self.startup_timeout = startup_timeout
        self.service: Optional[ReproService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        #: Exceptions the server thread died with.  Checked -- and re-raised
        #: -- by :attr:`address` and ``__exit__``, so a server that failed
        #: *after* startup (not just during it) cannot fail silently.
        self._failure: list = []

    def _check_failure(self) -> None:
        if self._failure:
            raise self._failure[0]

    @property
    def address(self) -> str:
        self._check_failure()
        if self.service is None:
            raise RuntimeError("server is not running")
        return self.service.address

    def drain(self, timeout: Optional[float] = None) -> dict:
        """Drain the service from the caller's thread (tests exercise the
        graceful-shutdown path without sending a signal)."""
        self._check_failure()
        if self.service is None or self._loop is None:
            raise RuntimeError("server is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(timeout), self._loop)
        return future.result(self.startup_timeout)

    def __enter__(self) -> "BackgroundServer":
        import threading
        started = threading.Event()
        failure = self._failure

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                service = ReproService(self.config)
                loop.run_until_complete(service.start())
                self.service = service
                started.set()
                loop.run_forever()
                loop.run_until_complete(service.close())
            except Exception as error:
                failure.append(error)
                started.set()
            finally:
                loop.close()

        self._thread = __import__("threading").Thread(
            target=_run, name="repro-serve", daemon=True)
        self._thread.start()
        if not started.wait(self.startup_timeout):
            raise RuntimeError("service did not start in time")
        self._check_failure()
        return self

    def __exit__(self, *_exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=self.startup_timeout)
        # A failure on the server thread -- including one raised during the
        # post-loop close() -- must surface, not vanish with the thread.
        if _exc_info[0] is None:
            self._check_failure()
