"""ServiceClient: the programmatic (and CLI ``--server``) client.

Stdlib-only (``urllib.request``), matching the daemon's stdlib-only HTTP.
Every method returns the parsed JSON payload; HTTP errors surface as
:class:`ServiceError` carrying the status code and the daemon's structured
``{"error": {...}}`` body, so callers can branch on ``status`` / ``retry_after``
instead of parsing prose.

The responses' serving metadata travels in headers (``X-Repro-Cache``,
``X-Repro-Elapsed-Ms``); :meth:`ServiceClient.run` exposes it via the
``Response``-style tuple-free :class:`ServiceReply` wrapper only when asked
(``with_meta=True``) so the common path stays a plain dict.

Retries are opt-in: construct the client with a :class:`RetryPolicy` and
transient failures (429/5xx, an unreachable or dropped connection) are
retried with deterministic exponential backoff, honoring the daemon's
Retry-After hints.  Retrying is safe unconditionally here because every
request is idempotent by content-addressing -- re-POSTing a ``/run`` either
hits the cache or recomputes the identical bytes.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Sequence


class ServiceError(RuntimeError):
    """An HTTP-level failure from the daemon, with its structured body."""

    def __init__(self, status: int, payload: dict,
                 headers: Optional[dict] = None):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or f"service returned HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        self.kind = error.get("type", "Unknown")
        self.headers = dict(headers or {})
        # The daemon sends the same (possibly fractional) hint in the error
        # body and the Retry-After header; honor either source identically,
        # preferring the structured body and matching the header name
        # case-insensitively (HTTP header names are).
        retry = error.get("retry_after")
        if retry is None:
            for name, value in self.headers.items():
                if name.lower() == "retry-after":
                    retry = value
                    break
        try:
            self.retry_after: Optional[float] = (
                float(retry) if retry is not None else None)
        except (TypeError, ValueError):
            self.retry_after = None


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry budgets for transient service failures.

    ``attempts`` is the *total* number of tries (1 = no retry).  The delay
    before retry ``n`` (0-based) is ``base_delay * multiplier**n`` capped at
    ``max_delay`` -- or the server's Retry-After hint when it gives one,
    capped the same way.  ``deadline`` bounds the *cumulative planned
    backoff* (not wall clock, so a policy's behavior is a pure function of
    the error sequence): when the next delay would push the total past it,
    the error surfaces instead.

    Retryable failures: ``status`` in ``statuses`` (throttling and server
    errors), plus ``status == 0`` (unreachable / dropped connection) when
    ``retry_unreachable`` is set.  Client errors (4xx) never retry -- the
    request itself is wrong.
    """

    attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    deadline: Optional[float] = 60.0
    statuses: FrozenSet[int] = field(
        default_factory=lambda: frozenset({429, 500, 502, 503, 504}))
    retry_unreachable: bool = True

    def retryable(self, error: "ServiceError") -> bool:
        if error.status == 0:
            return self.retry_unreachable
        return error.status in self.statuses

    def delay(self, retry_index: int,
              retry_after: Optional[float] = None) -> float:
        planned = self.base_delay * (self.multiplier ** retry_index)
        if retry_after is not None and retry_after > planned:
            planned = retry_after
        return min(planned, self.max_delay)


@dataclass
class ServiceReply:
    """A parsed response plus its serving metadata headers."""

    payload: dict
    #: ``hit`` / ``miss`` / ``bypass`` / ``coalesced`` (absent on GETs).
    cache: Optional[str]
    #: Daemon-side service time in milliseconds.
    elapsed_ms: Optional[float]
    #: Per-request trace ID (``X-Repro-Trace-Id``), e.g. ``req-000004``.
    trace_id: Optional[str] = None


class ServiceClient:
    """Talk to one ``repro serve`` daemon.

    >>> client = ServiceClient("http://127.0.0.1:8787")
    >>> result = client.run({"platform": "x60", "workload": "memset",
    ...                      "spec": {"events": ["cycles", "instructions"]}})
    >>> result["run"]["stat"]["counts"]  # doctest: +SKIP
    """

    def __init__(self, base_url: str, timeout: float = 600.0,
                 retry: Optional[RetryPolicy] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self._sleep = sleep

    # -- transport ----------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None) -> ServiceReply:
        policy = self.retry
        if policy is None:
            return self._request_once(method, path, body, headers)
        slept = 0.0
        retry_index = 0
        while True:
            try:
                return self._request_once(method, path, body, headers)
            except ServiceError as error:
                if (not policy.retryable(error)
                        or retry_index + 1 >= policy.attempts):
                    raise
                delay = policy.delay(retry_index, error.retry_after)
                if (policy.deadline is not None
                        and slept + delay > policy.deadline):
                    raise
                from repro import telemetry as _telemetry
                _telemetry.REGISTRY.counter(
                    "repro_client_retries_total",
                    "ServiceClient retries by failure status").inc(
                        status=str(error.status))
                self._sleep(delay)
                slept += delay
                retry_index += 1

    def _request_once(self, method: str, path: str,
                      body: Optional[dict] = None,
                      headers: Optional[Dict[str, str]] = None
                      ) -> ServiceReply:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json",
                     **(headers or {})})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read()
                reply_headers = dict(response.headers.items())
                status = response.status
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": {"type": "Unknown",
                                     "message": raw.decode("utf-8",
                                                           "replace")}}
            raise ServiceError(error.code, payload,
                               dict(error.headers.items())) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, {"error": {
                "type": "Unreachable",
                "message": f"could not reach {self.base_url}: "
                           f"{error.reason}"}}) from None
        except (http.client.HTTPException, ConnectionError) as error:
            # urllib only wraps send-side OSErrors in URLError; a server
            # that drops the connection mid-response surfaces raw
            # (RemoteDisconnected, ConnectionResetError).  Same structured
            # shape so RetryPolicy treats a dropped response like an
            # unreachable daemon.
            raise ServiceError(0, {"error": {
                "type": "Unreachable",
                "message": f"connection to {self.base_url} dropped: "
                           f"{error!r}"}}) from None
        if raw and reply_headers.get("Content-Type",
                                     "").startswith("application/json"):
            payload = json.loads(raw.decode("utf-8"))
        else:
            payload = {"text": raw.decode("utf-8", "replace")}
        elapsed = reply_headers.get("X-Repro-Elapsed-Ms")
        return ServiceReply(
            payload=payload,
            cache=reply_headers.get("X-Repro-Cache"),
            elapsed_ms=float(elapsed) if elapsed else None,
            trace_id=reply_headers.get("X-Repro-Trace-Id"))

    @staticmethod
    def _bypass_headers(bypass_cache: bool) -> Dict[str, str]:
        return {"X-Repro-No-Cache": "1"} if bypass_cache else {}

    # -- profiling endpoints ------------------------------------------------------------

    def run(self, request: dict, bypass_cache: bool = False,
            with_meta: bool = False):
        """Execute one JSON-shaped RunRequest; returns the run payload."""
        reply = self._request("POST", "/run", request,
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    def plan(self, requests: Sequence[dict], bypass_cache: bool = False,
             with_meta: bool = False):
        """Execute a batch of RunRequests; misses run concurrently."""
        reply = self._request("POST", "/plan", {"requests": list(requests)},
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    def compare(self, platforms: Sequence[str], workload: str,
                spec: Optional[dict] = None,
                params: Optional[dict] = None,
                bypass_cache: bool = False, with_meta: bool = False):
        body = {"platforms": list(platforms), "workload": workload,
                "spec": spec or {}, "params": params or {}}
        reply = self._request("POST", "/compare", body,
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    def analyze(self, platform: str, workload: Optional[str] = None,
                cpus: int = 1, params: Optional[dict] = None,
                all_workloads: bool = False,
                bypass_cache: bool = False, with_meta: bool = False):
        body = {"platform": platform, "workload": workload, "cpus": cpus,
                "params": params or {}, "all": all_workloads}
        reply = self._request("POST", "/analyze", body,
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    # -- introspection endpoints --------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz").payload

    def capabilities(self) -> dict:
        return self._request("GET", "/capabilities").payload

    def metrics(self, format: str = "json"):
        """The daemon's metrics -- a dict, or Prometheus text when asked."""
        if format == "prometheus":
            reply = self._request("GET", "/metrics?format=prometheus")
            return reply.payload["text"]
        return self._request("GET", "/metrics").payload
