"""ServiceClient: the programmatic (and CLI ``--server``) client.

Stdlib-only (``urllib.request``), matching the daemon's stdlib-only HTTP.
Every method returns the parsed JSON payload; HTTP errors surface as
:class:`ServiceError` carrying the status code and the daemon's structured
``{"error": {...}}`` body, so callers can branch on ``status`` / ``retry_after``
instead of parsing prose.

The responses' serving metadata travels in headers (``X-Repro-Cache``,
``X-Repro-Elapsed-Ms``); :meth:`ServiceClient.run` exposes it via the
``Response``-style tuple-free :class:`ServiceReply` wrapper only when asked
(``with_meta=True``) so the common path stays a plain dict.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, Optional, Sequence


class ServiceError(RuntimeError):
    """An HTTP-level failure from the daemon, with its structured body."""

    def __init__(self, status: int, payload: dict,
                 headers: Optional[dict] = None):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or f"service returned HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        self.kind = error.get("type", "Unknown")
        self.headers = dict(headers or {})
        # The daemon sends the same (possibly fractional) hint in the error
        # body and the Retry-After header; honor either source identically,
        # preferring the structured body and matching the header name
        # case-insensitively (HTTP header names are).
        retry = error.get("retry_after")
        if retry is None:
            for name, value in self.headers.items():
                if name.lower() == "retry-after":
                    retry = value
                    break
        try:
            self.retry_after: Optional[float] = (
                float(retry) if retry is not None else None)
        except (TypeError, ValueError):
            self.retry_after = None


@dataclass
class ServiceReply:
    """A parsed response plus its serving metadata headers."""

    payload: dict
    #: ``hit`` / ``miss`` / ``bypass`` / ``coalesced`` (absent on GETs).
    cache: Optional[str]
    #: Daemon-side service time in milliseconds.
    elapsed_ms: Optional[float]
    #: Per-request trace ID (``X-Repro-Trace-Id``), e.g. ``req-000004``.
    trace_id: Optional[str] = None


class ServiceClient:
    """Talk to one ``repro serve`` daemon.

    >>> client = ServiceClient("http://127.0.0.1:8787")
    >>> result = client.run({"platform": "x60", "workload": "memset",
    ...                      "spec": {"events": ["cycles", "instructions"]}})
    >>> result["run"]["stat"]["counts"]  # doctest: +SKIP
    """

    def __init__(self, base_url: str, timeout: float = 600.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None) -> ServiceReply:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json",
                     **(headers or {})})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read()
                reply_headers = dict(response.headers.items())
                status = response.status
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": {"type": "Unknown",
                                     "message": raw.decode("utf-8",
                                                           "replace")}}
            raise ServiceError(error.code, payload,
                               dict(error.headers.items())) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, {"error": {
                "type": "Unreachable",
                "message": f"could not reach {self.base_url}: "
                           f"{error.reason}"}}) from None
        if raw and reply_headers.get("Content-Type",
                                     "").startswith("application/json"):
            payload = json.loads(raw.decode("utf-8"))
        else:
            payload = {"text": raw.decode("utf-8", "replace")}
        elapsed = reply_headers.get("X-Repro-Elapsed-Ms")
        return ServiceReply(
            payload=payload,
            cache=reply_headers.get("X-Repro-Cache"),
            elapsed_ms=float(elapsed) if elapsed else None,
            trace_id=reply_headers.get("X-Repro-Trace-Id"))

    @staticmethod
    def _bypass_headers(bypass_cache: bool) -> Dict[str, str]:
        return {"X-Repro-No-Cache": "1"} if bypass_cache else {}

    # -- profiling endpoints ------------------------------------------------------------

    def run(self, request: dict, bypass_cache: bool = False,
            with_meta: bool = False):
        """Execute one JSON-shaped RunRequest; returns the run payload."""
        reply = self._request("POST", "/run", request,
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    def plan(self, requests: Sequence[dict], bypass_cache: bool = False,
             with_meta: bool = False):
        """Execute a batch of RunRequests; misses run concurrently."""
        reply = self._request("POST", "/plan", {"requests": list(requests)},
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    def compare(self, platforms: Sequence[str], workload: str,
                spec: Optional[dict] = None,
                params: Optional[dict] = None,
                bypass_cache: bool = False, with_meta: bool = False):
        body = {"platforms": list(platforms), "workload": workload,
                "spec": spec or {}, "params": params or {}}
        reply = self._request("POST", "/compare", body,
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    def analyze(self, platform: str, workload: Optional[str] = None,
                cpus: int = 1, params: Optional[dict] = None,
                all_workloads: bool = False,
                bypass_cache: bool = False, with_meta: bool = False):
        body = {"platform": platform, "workload": workload, "cpus": cpus,
                "params": params or {}, "all": all_workloads}
        reply = self._request("POST", "/analyze", body,
                              self._bypass_headers(bypass_cache))
        return reply if with_meta else reply.payload

    # -- introspection endpoints --------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz").payload

    def capabilities(self) -> dict:
        return self._request("GET", "/capabilities").payload

    def metrics(self, format: str = "json"):
        """The daemon's metrics -- a dict, or Prometheus text when asked."""
        if format == "prometheus":
            reply = self._request("GET", "/metrics?format=prometheus")
            return reply.payload["text"]
        return self._request("GET", "/metrics").payload
