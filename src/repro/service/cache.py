"""Content-addressed result cache: bounded LRU over serialized responses.

The cache maps :func:`repro.service.wire.cache_key` digests to the exact
response bytes a previous execution produced.  Because every export the
service serves is byte-reproducible (``Run.deterministic_dict`` -- the
golden and differential suites enforce it), serving a hit is correctness-
equivalent to re-running the request; the cache is purely a throughput
lever, so its policy can stay simple: least-recently-used eviction under a
fixed entry bound.

An optional disk store (:class:`repro.cache.store.DiskCache`) backs the
memory layer: fills are written through content-addressed under the
``result`` kind, and a memory miss consults the store before executing.
Entries persist across daemon restarts -- and across *processes*: a
``repro sweep`` filling the same store leaves hits for the daemon and vice
versa.  A corrupt or truncated disk entry is detected by the store's
integrity check and falls through to execution, so disk damage costs time,
never correctness.

Accounting distinguishes *hits* (served from cache -- memory or disk),
*misses* (executed, then filled) and *bypasses* (client sent the no-cache
header: executed and re-filled without consulting the cache), plus
evictions -- the numbers ``GET /metrics`` reports.  Disk-backed caches
additionally report the disk layer's hit/miss split.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.keys import RESULT_KIND


class ResultCache:
    """Bounded LRU of ``key -> response bytes`` with hit/miss accounting."""

    def __init__(self, max_entries: int = 256, store=None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 (got {max_entries})")
        self.max_entries = max_entries
        self.store = store
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[bytes]:
        """The cached bytes for *key*, refreshing recency; counts hit/miss.

        Memory first, then the disk store (when configured); a disk hit is
        promoted into the memory layer and counted as a hit.
        """
        body = self._entries.get(key)
        if body is None and self.store is not None:
            body = self.store.get(RESULT_KIND, key)
            if body is None:
                self.disk_misses += 1
            else:
                self.disk_hits += 1
                self._fill_memory(key, body)
        if body is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return body

    def put(self, key: str, body: bytes) -> None:
        """Fill (or refresh) *key*, evicting the LRU tail past the bound."""
        self._fill_memory(key, body)
        if self.store is not None:
            self.store.put(RESULT_KIND, key, body)

    def _fill_memory(self, key: str, body: bytes) -> None:
        self._entries[key] = body
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def flush(self) -> int:
        """Write every memory entry through to the disk store (drain path).

        Fills already write through, so this is a safety net for entries
        whose disk write failed transiently (full disk, injected fault):
        the drain gives each one a second chance to persist.  Returns how
        many entries were written; a store-less cache flushes nothing.
        """
        if self.store is None:
            return 0
        written = 0
        for key, body in list(self._entries.items()):
            if self.store.put(RESULT_KIND, key, body):
                written += 1
        return written

    def note_bypass(self) -> None:
        """Record a request that skipped the lookup on client request."""
        self.bypasses += 1

    def clear(self) -> None:
        """Drop the memory layer (disk entries, if any, are left in place)."""
        self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def stats(self) -> dict:
        stats = {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "hit_ratio": round(self.hit_ratio, 6),
        }
        if self.store is not None:
            stats["disk_hits"] = self.disk_hits
            stats["disk_misses"] = self.disk_misses
        return stats
