"""Content-addressed result cache: bounded LRU over serialized responses.

The cache maps :func:`repro.service.wire.cache_key` digests to the exact
response bytes a previous execution produced.  Because every export the
service serves is byte-reproducible (``Run.deterministic_dict`` -- the
golden and differential suites enforce it), serving a hit is correctness-
equivalent to re-running the request; the cache is purely a throughput
lever, so its policy can stay simple: least-recently-used eviction under a
fixed entry bound.

Accounting distinguishes *hits* (served from cache), *misses* (executed,
then filled) and *bypasses* (client sent the no-cache header: executed and
re-filled without consulting the cache), plus evictions -- the numbers
``GET /metrics`` reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class ResultCache:
    """Bounded LRU of ``key -> response bytes`` with hit/miss accounting."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 (got {max_entries})")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[bytes]:
        """The cached bytes for *key*, refreshing recency; counts hit/miss."""
        body = self._entries.get(key)
        if body is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return body

    def put(self, key: str, body: bytes) -> None:
        """Fill (or refresh) *key*, evicting the LRU tail past the bound."""
        self._entries[key] = body
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def note_bypass(self) -> None:
        """Record a request that skipped the lookup on client request."""
        self.bypasses += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "hit_ratio": round(self.hit_ratio, 6),
        }
