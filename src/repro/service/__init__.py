"""Profiling-as-a-service: the ``repro serve`` daemon and its client.

The service turns the profiler into a long-lived process: warm worker
pools (pre-built machines, warmed compile caches), a content-addressed
result cache over the byte-reproducible run exports, bounded admission
with backpressure, and stdlib-only HTTP on both ends.  See
``docs/architecture.md`` ("Service layer") for the request lifecycle.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError, ServiceReply
from repro.service.daemon import (
    BackgroundServer,
    ReproService,
    ServiceConfig,
    serve,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.pool import WarmPool, warm_kernel_plan, warm_worker
from repro.service.wire import cache_key, canonical_json

__all__ = [
    "BackgroundServer",
    "LatencyHistogram",
    "ReproService",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceReply",
    "WarmPool",
    "cache_key",
    "canonical_json",
    "serve",
    "warm_kernel_plan",
    "warm_worker",
]
