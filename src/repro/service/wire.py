"""Wire format helpers: canonical payloads, cache keys, structured errors.

Everything the service caches or sends is a JSON document.  The helpers
here pin down the two properties the whole subsystem rests on:

* **Canonical keys** -- the result cache is content-addressed: a request is
  hashed over its *canonicalized* dict (round-tripped through
  :class:`~repro.api.executor.RunRequest` / :class:`~repro.api.spec.
  ProfileSpec`, platform aliases resolved), so two requests that mean the
  same run hash the same no matter how the client spelled them (key order,
  defaulted vs explicit fields, ``x60`` vs ``SpacemiT X60``).
* **Deterministic bodies** -- cached response bodies are serialized once,
  compactly, preserving the exporters' deterministic key order, so a cache
  hit serves byte-identical content to the miss that filled it *and* a
  client re-dumping a payload with ``indent=2`` reproduces the in-process
  CLI's ``to_json()`` bytes exactly (``json.loads``/``dumps`` round-trips
  key order and float repr).

Errors travel as ``{"error": {"type": ..., "message": ...}}`` so clients
can tell a validation problem from a dead worker from a timeout without
parsing prose.
"""

from __future__ import annotations

from typing import Optional

from repro.api.run import strip_timings as _strip_timings
from repro.cache.keys import cache_key, canonical_json, encode_body

__all__ = ["cache_key", "canonical_json", "encode_body", "error_payload",
           "strip_timings"]

# canonical_json / encode_body / cache_key live in repro.cache.keys now --
# the disk store and the sweep engine address the same artifacts the
# service does, and sharing one key scheme is what makes a sweep-filled
# cache serve daemon requests (and vice versa).  Re-exported here so the
# service subsystem keeps one import site for its wire format.


def error_payload(kind: str, message: str,
                  retry_after: Optional[float] = None) -> dict:
    entry: dict = {"type": kind, "message": message}
    if retry_after is not None:
        entry["retry_after"] = retry_after
    return {"error": entry}


def strip_timings(payload: object) -> object:
    """Drop every ``timings`` key, recursively.

    Anything the cache stores must exclude wall-clock phase timings (nested
    occurrences included -- a Comparison embeds one Run per platform).
    Delegates to the canonical normalizer in :mod:`repro.api.run`, which the
    golden suite and :meth:`~repro.api.run.Run.deterministic_dict` share.
    """
    return _strip_timings(payload)
