"""Wire format helpers: canonical payloads, cache keys, structured errors.

Everything the service caches or sends is a JSON document.  The helpers
here pin down the two properties the whole subsystem rests on:

* **Canonical keys** -- the result cache is content-addressed: a request is
  hashed over its *canonicalized* dict (round-tripped through
  :class:`~repro.api.executor.RunRequest` / :class:`~repro.api.spec.
  ProfileSpec`, platform aliases resolved), so two requests that mean the
  same run hash the same no matter how the client spelled them (key order,
  defaulted vs explicit fields, ``x60`` vs ``SpacemiT X60``).
* **Deterministic bodies** -- cached response bodies are serialized once,
  compactly, preserving the exporters' deterministic key order, so a cache
  hit serves byte-identical content to the miss that filled it *and* a
  client re-dumping a payload with ``indent=2`` reproduces the in-process
  CLI's ``to_json()`` bytes exactly (``json.loads``/``dumps`` round-trips
  key order and float repr).

Errors travel as ``{"error": {"type": ..., "message": ...}}`` so clients
can tell a validation problem from a dead worker from a timeout without
parsing prose.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.api.run import strip_timings as _strip_timings


def canonical_json(payload: object) -> str:
    """The key-order-insensitive serialization cache keys hash over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_body(payload: object) -> bytes:
    """Serialize a response payload to the bytes the cache stores/serves.

    Key order is *preserved*, not sorted: the exporters build their dicts in
    a fixed order, so the bytes are deterministic anyway, and preserving it
    lets ``--server`` clients re-dump payloads into output byte-identical to
    the in-process CLI's.
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def cache_key(kind: str, canonical_request: dict) -> str:
    """Content address of one request: sha256 over (kind, canonical dict).

    ``kind`` (``run``/``compare``/``analyze``) keeps the namespaces of the
    different endpoints disjoint even where their request dicts could
    collide.
    """
    body = canonical_json({"kind": kind, "request": canonical_request})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def error_payload(kind: str, message: str,
                  retry_after: Optional[float] = None) -> dict:
    entry: dict = {"type": kind, "message": message}
    if retry_after is not None:
        entry["retry_after"] = retry_after
    return {"error": entry}


def strip_timings(payload: object) -> object:
    """Drop every ``timings`` key, recursively.

    Anything the cache stores must exclude wall-clock phase timings (nested
    occurrences included -- a Comparison embeds one Run per platform).
    Delegates to the canonical normalizer in :mod:`repro.api.run`, which the
    golden suite and :meth:`~repro.api.run.Run.deterministic_dict` share.
    """
    return _strip_timings(payload)
