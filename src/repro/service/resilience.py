"""Crash-loop protection for the daemon: circuit breaker + quarantine.

A worker crash is supposed to be rare; a *poisoned request* -- one whose
execution reliably kills a worker -- turns the daemon's respawn-and-retry
healing into a crash loop that burns CPU re-warming pools.  Two mechanisms
stop that:

* **Per-key quarantine**: a cache key whose execution crashed workers
  ``quarantine_after`` times is refused outright (503 ``Quarantined``)
  without touching the pool, so one poisoned request cannot take the
  service down for everyone else.
* **Circuit breaker**: ``threshold`` crashes within ``window`` seconds
  (whatever their keys) open the breaker.  Open means *degraded
  cache-only mode*: cache hits are still served, misses get 503 +
  Retry-After, ``/healthz`` reports ``degraded``.  After ``cooldown``
  seconds the breaker goes half-open and admits exactly one probe
  request; a successful probe closes it, a crash re-opens it for another
  cooldown.

The breaker is deliberately clock-injectable (the daemon passes its one
audited wall-clock reader) and synchronous -- it is only ever touched from
the daemon's event-loop thread.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Set, Tuple

#: Breaker states (:meth:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Admission verdicts (:meth:`CircuitBreaker.admit`).
ALLOW = "allow"
PROBE = "probe"
REFUSE_OPEN = "open"
REFUSE_QUARANTINED = "quarantined"


class CircuitBreaker:
    """Crash-loop breaker with per-key quarantine and half-open probing."""

    def __init__(self, threshold: int = 3, window: float = 30.0,
                 cooldown: float = 5.0, quarantine_after: int = 2,
                 clock: Callable[[], float] = None):
        if clock is None:
            raise ValueError("CircuitBreaker needs an explicit clock")
        self.threshold = max(1, int(threshold))
        self.window = float(window)
        self.cooldown = float(cooldown)
        self.quarantine_after = max(1, int(quarantine_after))
        self._clock = clock
        self._crash_times: "deque[float]" = deque()
        self._crashes_by_key: Dict[str, int] = {}
        self.quarantined: Set[str] = set()
        self._opened_at: Optional[float] = None
        self._probing = False
        self.opens = 0

    # -- state --------------------------------------------------------------------------

    def state(self) -> str:
        if self._opened_at is None:
            return CLOSED
        if self._probing:
            return HALF_OPEN
        if self._clock() - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return OPEN

    def _trim(self, now: float) -> None:
        while self._crash_times and now - self._crash_times[0] > self.window:
            self._crash_times.popleft()

    # -- admission ----------------------------------------------------------------------

    def admit(self, key: str) -> Tuple[str, Optional[float]]:
        """Whether an *execution* of ``key`` may proceed.

        Returns ``(verdict, retry_after)``: :data:`ALLOW` (breaker closed),
        :data:`PROBE` (half-open; this request is the single probe --
        report its outcome via ``record_success`` / ``record_crash`` /
        ``abort_probe``), :data:`REFUSE_OPEN` (degraded mode; retry after
        the hint) or :data:`REFUSE_QUARANTINED` (this key is poisoned).
        Cache hits never reach here: degraded mode serves them as usual.
        """
        if key in self.quarantined:
            return REFUSE_QUARANTINED, None
        state = self.state()
        if state == CLOSED:
            return ALLOW, None
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            return PROBE, None
        remaining = self.cooldown
        if self._opened_at is not None:
            remaining = self.cooldown - (self._clock() - self._opened_at)
        return REFUSE_OPEN, round(max(0.1, remaining), 3)

    # -- outcomes -----------------------------------------------------------------------

    def record_crash(self, key: str, probe: bool = False) -> None:
        """A worker died executing ``key``; opens/re-opens as thresholds hit."""
        now = self._clock()
        count = self._crashes_by_key.get(key, 0) + 1
        self._crashes_by_key[key] = count
        if count >= self.quarantine_after:
            self.quarantined.add(key)
        self._crash_times.append(now)
        self._trim(now)
        if probe and self._probing:
            # The probe crashed: re-open for a fresh cooldown.
            self._probing = False
            self._opened_at = now
            self.opens += 1
        elif self._opened_at is None \
                and len(self._crash_times) >= self.threshold:
            self._opened_at = now
            self.opens += 1

    def record_success(self, key: str, probe: bool = False) -> None:
        """``key`` executed cleanly; a successful probe closes the breaker."""
        self._crashes_by_key.pop(key, None)
        if probe and self._probing:
            self._probing = False
            self._opened_at = None
            self._crash_times.clear()

    def abort_probe(self) -> None:
        """The probe ended without a clean success *or* a crash (timeout,
        validation error): stay open-past-cooldown so the next admission
        probes again."""
        self._probing = False

    # -- reporting ----------------------------------------------------------------------

    def to_dict(self) -> dict:
        self._trim(self._clock())
        return {
            "state": self.state(),
            "crashes_in_window": len(self._crash_times),
            "threshold": self.threshold,
            "window_seconds": self.window,
            "cooldown_seconds": self.cooldown,
            "opens": self.opens,
            "quarantined": sorted(self.quarantined),
        }
