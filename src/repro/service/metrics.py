"""Service metrics: counters, gauges and latency histograms for ``/metrics``.

The daemon increments these as it serves; ``GET /metrics`` renders them
either as one JSON document or in the Prometheus text exposition format
(``?format=prometheus`` or an ``Accept: text/plain`` header), so "heavy
traffic" is observable with nothing but the stdlib on either end.

Latencies are *observed* wall-clock durations -- the one place the service
legitimately reads the host clock.  The clock reads happen at the daemon's
single audited ``_now()`` site; this module only aggregates the durations
it is handed, so the numbers here never feed modelled time, cached bodies
or any other deterministic output (the metrics goldens normalize them).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.telemetry.registry import (
    escape_label_value,
    format_metric_value,
    prometheus_family_header,
)

#: Histogram bucket upper bounds, in seconds (Prometheus ``le`` labels).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram of request durations (seconds)."""

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        for index, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def to_dict(self) -> dict:
        buckets = {}
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            cumulative += bucket
            buckets[f"{bound:g}"] = cumulative
        buckets["+Inf"] = self.count
        return {
            "count": self.count,
            "sum_seconds": round(self.total_seconds, 6),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Every number the daemon accounts for, in one mutable registry."""

    def __init__(self) -> None:
        #: Requests seen per endpoint (including rejected/failed ones).
        self.requests: Dict[str, int] = {}
        #: Requests that actually executed on a worker, per endpoint.
        self.executions: Dict[str, int] = {}
        #: Requests answered by awaiting an identical in-flight execution.
        self.coalesced = 0
        #: Requests bounced with 429 by admission control.
        self.rejected = 0
        #: Requests that hit the per-request timeout (504).
        self.timeouts = 0
        #: Requests that failed with a structured error (4xx/5xx bodies).
        self.errors = 0
        #: Worker-pool respawns after a BrokenProcessPool.
        self.worker_restarts = 0
        self._latency: Dict[str, LatencyHistogram] = {}

    # -- recording ----------------------------------------------------------------------

    def count_request(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def count_execution(self, endpoint: str) -> None:
        self.executions[endpoint] = self.executions.get(endpoint, 0) + 1

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        histogram = self._latency.get(endpoint)
        if histogram is None:
            histogram = LatencyHistogram()
            self._latency[endpoint] = histogram
        histogram.observe(seconds)

    # -- rendering ----------------------------------------------------------------------

    def to_dict(self, gauges: dict, cache_stats: dict) -> dict:
        return {
            "requests": {name: self.requests[name]
                         for name in sorted(self.requests)},
            "executions": {name: self.executions[name]
                           for name in sorted(self.executions)},
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "worker_restarts": self.worker_restarts,
            "queue": dict(gauges),
            "cache": dict(cache_stats),
            "latency_seconds": {name: self._latency[name].to_dict()
                                for name in sorted(self._latency)},
        }

    def prometheus(self, gauges: dict, cache_stats: dict) -> str:
        """The Prometheus text exposition of the same numbers.

        Label values are escaped and every family carries ``# HELP`` /
        ``# TYPE`` lines, via the same helpers the unified telemetry
        registry renders with.
        """
        lines: List[str] = []

        def endpoint_label(name: str) -> str:
            return f'{{endpoint="{escape_label_value(name)}"}}'

        def counter(name: str, help_text: str,
                    samples: Sequence[Tuple[str, float]]) -> None:
            lines.extend(prometheus_family_header(name, "counter", help_text))
            for labels, value in samples:
                lines.append(f"{name}{labels} {format_metric_value(value)}")

        counter("repro_requests_total", "Requests seen per endpoint.",
                [(endpoint_label(name), self.requests[name])
                 for name in sorted(self.requests)])
        counter("repro_executions_total",
                "Requests executed on a worker, per endpoint.",
                [(endpoint_label(name), self.executions[name])
                 for name in sorted(self.executions)])
        counter("repro_coalesced_total",
                "Requests served by awaiting an identical in-flight run.",
                [("", self.coalesced)])
        counter("repro_rejected_total",
                "Requests bounced with 429 by admission control.",
                [("", self.rejected)])
        counter("repro_timeouts_total",
                "Requests that hit the per-request timeout.",
                [("", self.timeouts)])
        counter("repro_errors_total",
                "Requests that failed with a structured error.",
                [("", self.errors)])
        counter("repro_worker_restarts_total",
                "Worker-pool respawns after a crash.",
                [("", self.worker_restarts)])
        for name, value in (("repro_cache_hits_total", cache_stats["hits"]),
                            ("repro_cache_misses_total", cache_stats["misses"]),
                            ("repro_cache_bypasses_total",
                             cache_stats["bypasses"]),
                            ("repro_cache_evictions_total",
                             cache_stats["evictions"])):
            counter(name, "Result-cache accounting.", [("", value)])

        for gauge, help_text in (("queue_depth",
                                  "Admitted requests waiting for a worker."),
                                 ("in_flight",
                                  "Requests currently executing."),
                                 ("queue_limit",
                                  "Admission bound (queued + executing).")):
            lines.extend(prometheus_family_header(
                f"repro_{gauge}", "gauge", help_text))
            lines.append(
                f"repro_{gauge} {format_metric_value(gauges[gauge])}")
        lines.extend(prometheus_family_header(
            "repro_cache_entries", "gauge",
            "Entries in the result cache."))
        lines.append("repro_cache_entries "
                     f"{format_metric_value(cache_stats['entries'])}")

        lines.extend(prometheus_family_header(
            "repro_request_seconds", "histogram", "Request latency."))
        for name in sorted(self._latency):
            histogram = self._latency[name]
            endpoint = escape_label_value(name)
            cumulative = 0
            for bound, bucket in zip(histogram.bounds,
                                     histogram.bucket_counts):
                cumulative += bucket
                lines.append(
                    f'repro_request_seconds_bucket{{endpoint="{endpoint}",'
                    f'le="{bound:g}"}} {cumulative}')
            lines.append(
                f'repro_request_seconds_bucket{{endpoint="{endpoint}",'
                f'le="+Inf"}} {histogram.count}')
            lines.append(f'repro_request_seconds_sum{{endpoint="{endpoint}"}} '
                         f'{histogram.total_seconds:.6f}')
            lines.append(
                f'repro_request_seconds_count{{endpoint="{endpoint}"}} '
                f'{histogram.count}')
        return "\n".join(lines) + "\n"
