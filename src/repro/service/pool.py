"""Warm worker pools: pre-built machines, warmed compiles, crash recovery.

Two halves live here:

* **Worker side** -- module-level functions a :class:`~concurrent.futures.
  ProcessPoolExecutor` can pickle by reference.  Each worker process keeps a
  pool of *pre-built, never-used* machines per ``(platform, vendor_driver,
  cpus)`` and a warmed :func:`~repro.compiler.cache.compile_source_cached`
  cache (both filled by the pool initializer), so a request pays neither
  machine construction nor a cold compile.  Machines are handed to exactly
  one request and then discarded: a machine's first run is bit-identical to
  a fresh machine's, but PMU and cache state persist across runs, so
  *reusing* one would break the byte-reproducibility the result cache
  serves from.  A replacement is built right after the hand-off, off the
  request's critical path only in the sense that construction is ~ms; the
  expensive per-process state (compiled modules, target lowerings) is
  process-wide and survives every request.
* **Daemon side** -- :class:`WarmPool`, which owns the executor, detects a
  dead worker (``BrokenProcessPool``), respawns the pool once per failure
  generation, and counts restarts.  ``workers=0`` runs requests inline on a
  single daemon-side thread (same worker functions, same warmup) -- the
  mode tests and single-user serving use.
"""

from __future__ import annotations

from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults as _faults
from repro.api.executor import RunRequest
from repro.service import wire

#: One warm configuration: (platform name, vendor_driver, cpus).
WarmConfig = Tuple[str, bool, int]

#: True when this process executes pool bodies inline (``workers=0``): the
#: crash fault point then raises :data:`WorkerCrash` instead of killing the
#: process, because the "worker" *is* the daemon.  Set by :func:`warm_worker`
#: so forked pool workers always start from their initializer's value.
_INLINE_POOL = False

#: Per-process pool of pre-built machines, keyed by WarmConfig.  Only ever
#: touched from the worker's single executing thread (process pool workers
#: run one task at a time; inline mode uses a one-thread executor).
_MACHINE_POOL: Dict[WarmConfig, List[object]] = {}


def _build_machine(platform: str, vendor_driver: bool, cpus: int):
    from repro.platforms import Machine, platform_by_name
    descriptor = platform_by_name(platform)
    if cpus <= 1:
        return Machine(descriptor, vendor_driver=vendor_driver)
    from repro.smp import MultiHartMachine
    return MultiHartMachine(descriptor, cpus, vendor_driver=vendor_driver)


def _take_machine(config: WarmConfig):
    """Pop a pre-built machine (building on miss) and restock the pool."""
    from repro import telemetry as _telemetry
    builds = _telemetry.REGISTRY.counter(
        "repro_pool_machine_builds_total",
        "Warm-pool machine constructions by reason")
    pool = _MACHINE_POOL.setdefault(config, [])
    if pool:
        machine = pool.pop()
        _telemetry.REGISTRY.counter(
            "repro_pool_machine_handoffs_total",
            "Requests served a pre-built warm-pool machine").inc(
                platform=config[0])
    else:
        machine = _build_machine(*config)
        builds.inc(reason="miss", platform=config[0])
    # Restock immediately: construction is cheap relative to any run, and an
    # always-full pool keeps the next request's hand-off allocation-free.
    if not pool:
        pool.append(_build_machine(*config))
        builds.inc(reason="restock", platform=config[0])
    return machine


def warm_kernel_plan(platforms: Sequence[str],
                     enable_vectorizer: bool = True) -> List[tuple]:
    """Every (platform, source, filename, vectorizer) the registry's kernel
    workloads would compile on *platforms* -- the pool initializer's compile
    warmup plan."""
    from repro.workloads import registry
    plan: List[tuple] = []
    for platform in platforms:
        for name in registry:
            workload = registry.create(name)
            source = getattr(workload, "source", None)
            filename = getattr(workload, "filename", None)
            if isinstance(source, str) and isinstance(filename, str):
                plan.append((platform, source, filename, enable_vectorizer))
    return plan


def warm_worker(configs: Sequence[WarmConfig],
                kernel_plan: Sequence[tuple],
                inline: bool = False) -> None:
    """Pool initializer: pre-build machines and precompile kernels.

    Best-effort by design -- a platform or kernel that cannot warm surfaces
    its real error in the request that needs it, not at pool spawn.
    """
    global _INLINE_POOL
    _INLINE_POOL = inline
    from repro.compiler.cache import compile_source_cached, reset_stats
    from repro.platforms import platform_by_name
    for config in configs:
        try:
            _MACHINE_POOL.setdefault(config, []).append(
                _build_machine(*config))
        except Exception:
            pass
    for platform, source, filename, enable_vectorizer in kernel_plan:
        try:
            compile_source_cached(source, filename,
                                  platform_by_name(platform),
                                  enable_vectorizer)
        except Exception:
            pass
    # Warmup compiles are pool overhead, not request work: zero the tallies
    # so cache_stats() -- and /metrics series folded from it -- attribute
    # only request-driven compiles.
    reset_stats()


# -- worker request bodies ----------------------------------------------------------------
#
# Each returns {"payload": <deterministic, cacheable dict>,
#               "timings": <host-volatile wall-clock phases>,
#               "telemetry": <this request's registry delta + spans>} -- the
# daemon caches/serves the payload and reports the timings via response
# headers only, so cached bytes stay byte-identical across fills.  The
# telemetry key rides *outside* the cached payload: the daemon merges it
# into its own registry when (and only when) the body ran in a separate
# worker process.


def _inject_pool_faults() -> None:
    """Chaos hooks shared by every pool request body."""
    _faults.delay("pool.slow_worker")
    if _faults.fires("pool.worker_crash"):
        import multiprocessing
        if _INLINE_POOL or multiprocessing.parent_process() is None:
            # Only a genuine multiprocessing child may die for real; the
            # inline pool (and any in-process caller) gets the exception
            # the daemon maps to the same WorkerCrashed handling.
            raise WorkerCrash("injected worker crash (inline pool)")
        import os
        os._exit(83)


def execute_run_payload(payload: dict) -> dict:
    """The ``POST /run`` worker body: one RunRequest -> one Run export."""
    _inject_pool_faults()
    from repro import telemetry as _telemetry
    from repro.api.session import Session
    from repro.workloads import registry
    request = RunRequest.from_dict(payload)
    with _telemetry.capture(spans=request.spec.telemetry) as captured:
        session = Session(request.platform,
                          vendor_driver=request.vendor_driver)
        spec = request.spec
        vendor_driver = (request.vendor_driver if spec.vendor_driver is None
                         else spec.vendor_driver)
        try:
            machine = _take_machine(
                (session.platform, vendor_driver, spec.cpus))
            if spec.cpus > 1:
                session.adopt_smp_machine(machine, spec.cpus, vendor_driver)
            else:
                session.adopt_machine(machine, vendor_driver)
        except ValueError:
            # A machine that cannot be built ahead of time (e.g. more harts
            # than the board has) is the session's call: it degrades the run
            # into run.errors exactly like the in-process CLI path does.
            pass
        workload = registry.create(request.workload, **dict(request.params))
        run = session.run(workload, spec)
    return {
        "payload": {"run": run.deterministic_dict(),
                    "renderings": run.renderings()},
        "timings": dict(run.timings),
        "telemetry": captured.to_wire(),
    }


def execute_compare_payload(payload: dict) -> dict:
    """The ``POST /compare`` worker body: one multi-platform Comparison."""
    _inject_pool_faults()
    from repro import telemetry as _telemetry
    from repro.api.session import Session
    from repro.api.spec import ProfileSpec
    spec = ProfileSpec.from_dict(payload.get("spec", {}))
    with _telemetry.capture(spans=spec.telemetry) as captured:
        comparison = Session.compare(
            payload["platforms"], payload["workload"], spec,
            workload_params=dict(payload.get("params", {})))
    timings: Dict[str, float] = {}
    for run in comparison.runs:
        for phase, seconds in run.timings.items():
            timings[phase] = timings.get(phase, 0.0) + seconds
    return {
        "payload": {"comparison": wire.strip_timings(comparison.to_dict()),
                    "report": comparison.report()},
        "timings": timings,
        "telemetry": captured.to_wire(),
    }


def execute_analyze_payload(payload: dict) -> dict:
    """The ``POST /analyze`` worker body: the static-analysis report."""
    _inject_pool_faults()
    from repro import telemetry as _telemetry
    from repro.analysis.report import build_analyze_report
    with _telemetry.capture() as captured:
        report = build_analyze_report(
            platform=payload["platform"],
            cpus=int(payload.get("cpus", 1)),
            workload=payload.get("workload"),
            params=dict(payload.get("params", {})),
            all_workloads=bool(payload.get("all", False)),
        )
    return {"payload": {"analyze": report}, "timings": {},
            "telemetry": captured.to_wire()}


# -- daemon-side pool management ----------------------------------------------------------


class WarmPool:
    """The executor the daemon submits request bodies to.

    ``workers > 0`` owns a ProcessPoolExecutor whose initializer warms each
    worker (machines + compiles); ``workers == 0`` executes inline on one
    daemon-side thread, warming the daemon process itself at construction.
    :meth:`submit` returns a plain :class:`concurrent.futures.Future`; a
    ``BrokenProcessPool`` failure is healed by :meth:`respawn`, which is
    generation-guarded so N requests observing one crash trigger one
    respawn, failing only the requests that were in flight.
    """

    def __init__(self, workers: int,
                 warm_configs: Sequence[WarmConfig] = (),
                 kernel_plan: Sequence[tuple] = ()):
        if workers < 0:
            raise ValueError(f"workers must be >= 0 (got {workers})")
        self.workers = workers
        self.warm_configs = tuple(warm_configs)
        self.kernel_plan = tuple(kernel_plan)
        self.restarts = 0
        self.generation = 0
        self._executor: Optional[Executor] = None
        self._spawn()

    @property
    def concurrency(self) -> int:
        """How many requests can execute at once (inline mode: one)."""
        return max(1, self.workers)

    def _spawn(self) -> None:
        if self.workers == 0:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-inline")
            # Warm the daemon process itself: inline execution shares its
            # module-level machine pool and compile caches.
            warm_worker(self.warm_configs, self.kernel_plan, inline=True)
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=warm_worker,
                initargs=(self.warm_configs, self.kernel_plan))

    def submit(self, fn: Callable[[dict], dict], payload: dict) -> Future:
        return self._executor.submit(fn, payload)

    def respawn(self, observed_generation: int) -> bool:
        """Replace a broken pool, once per failure generation.

        Callers pass the generation they submitted under; the first one to
        report the crash swaps the executor, later reporters see the bumped
        generation and return without double-restarting.
        """
        if observed_generation != self.generation:
            return False
        self.generation += 1
        self.restarts += 1
        broken, self._executor = self._executor, None
        try:
            broken.shutdown(wait=False)
        except Exception:
            pass
        self._spawn()
        return True

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)


#: The exception type submit() futures raise when a worker process died;
#: re-exported so the daemon does not import concurrent internals.
WorkerCrash = BrokenProcessPool
