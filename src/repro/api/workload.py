"""The :class:`Workload` protocol: anything a Session can profile.

The paper's toolchain profiles two very different kinds of programs --
synthetic call-tree trace replays (the sqlite3-shaped workload of Table 2 /
Figure 3) and compiled KernelC kernels executed on the fast-dispatch VM
engine (the roofline kernels of Figure 4).  Both are unified behind one
small protocol: a workload knows how to produce a zero-argument *executable*
that drives a machine/task pair, and optionally how to run the two-phase
compiler-driven roofline flow for itself.

Concrete workloads are usually looked up by name in the registry
(:data:`repro.workloads.registry`) rather than constructed by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.compiler.cache import compile_source_cached
from repro.compiler.targets import target_for_platform
from repro.kernel.task import Task
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.roofline.runner import ArgsBuilder, KernelRooflineResult, RooflineRunner
from repro.vm import ExecutionEngine, Memory
from repro.workloads.sqlite3_like import instruction_factor_for
from repro.workloads.synthetic import SyntheticWorkload, TraceExecutor

from repro.api.spec import ProfileSpec


@runtime_checkable
class Workload(Protocol):
    """What a :class:`repro.api.Session` needs from a profilable workload."""

    #: Registry/display name.
    name: str
    #: One-line description shown by ``miniperf workloads``.
    description: str
    #: ``"synthetic"`` (trace replay) or ``"kernel"`` (compiled source).
    kind: str

    def executable(self, machine: Machine, task: Task,
                   spec: ProfileSpec) -> Callable[[], None]:
        """Build a zero-argument callable that runs the workload once.

        The callable drives *machine* (retiring machine ops against its core
        timing model, caches and PMU) with *task* as the profiled process, so
        samples carry real call chains.
        """
        ...

    @property
    def supports_roofline(self) -> bool:
        """Whether :meth:`roofline` is available for this workload."""
        ...

    def roofline(self, descriptor: PlatformDescriptor,
                 spec: ProfileSpec) -> KernelRooflineResult:
        """Run the two-phase compiler-driven roofline flow for this workload."""
        ...


@dataclass
class SyntheticTraceWorkload:
    """A synthetic call-tree trace replay (see :mod:`repro.workloads.synthetic`).

    ``instruction_factor`` overrides the per-ISA instruction scaling; when it
    is ``None`` and ``auto_instruction_factor`` is set, the factor is derived
    from the target architecture (the paper's x86 build of sqlite3 retires
    ~1.85x more instructions than the RISC-V build), which is what keeps
    cross-platform comparisons honest without per-call bookkeeping.
    """

    tree: SyntheticWorkload
    description: str = ""
    instruction_factor: Optional[float] = None
    auto_instruction_factor: bool = True
    kind: str = field(default="synthetic", init=False)

    @property
    def name(self) -> str:
        return self.tree.name

    def _factor_for(self, descriptor: PlatformDescriptor) -> Optional[float]:
        if self.instruction_factor is not None:
            return self.instruction_factor
        if self.auto_instruction_factor:
            return instruction_factor_for(descriptor.arch)
        return None

    def executable(self, machine: Machine, task: Task,
                   spec: ProfileSpec) -> Callable[[], None]:
        executor = TraceExecutor(
            machine, task, seed=spec.seed,
            instruction_factor=self._factor_for(machine.descriptor),
        )
        return lambda: executor.run(self.tree, invocations=spec.invocations)

    @property
    def supports_roofline(self) -> bool:
        return False

    def roofline(self, descriptor: PlatformDescriptor,
                 spec: ProfileSpec) -> KernelRooflineResult:
        raise NotImplementedError(
            f"workload {self.name!r} is a synthetic trace replay; the "
            "compiler-driven roofline flow needs a compiled kernel"
        )


@dataclass
class CompiledKernelWorkload:
    """A KernelC kernel compiled and executed on the fast-dispatch VM engine.

    For PMU analyses (stat/hotspots/flame graphs) the kernel is compiled
    through the standard optimisation pipeline (no instrumentation) and run
    on the execution engine against the session's machine, so samples carry
    the kernel's call chain.  For the roofline analysis the two-phase
    instrumented flow of :class:`repro.roofline.runner.RooflineRunner` runs
    instead, on fresh machines, exactly as the paper describes.
    """

    name: str
    source: str
    function: str
    args_builder: ArgsBuilder
    filename: str = "kernel.c"
    description: str = ""
    kind: str = field(default="kernel", init=False)

    def executable(self, machine: Machine, task: Task,
                   spec: ProfileSpec) -> Callable[[], None]:
        # Compiled modules are memoized per (source, lowering configuration)
        # and the platform target lowering is shared process-wide, so
        # repeated runs -- and every hart of an SMP machine -- reuse one
        # module and one warm lowering cache.
        descriptor = machine.descriptor
        module = compile_source_cached(self.source, self.filename, descriptor,
                                       spec.enable_vectorizer,
                                       verify_ir=spec.verify_ir)
        target = target_for_platform(descriptor)

        def run() -> None:
            for _ in range(max(1, spec.invocations)):
                memory = Memory()
                args = list(self.args_builder(memory))
                engine = ExecutionEngine(module, machine, target, task=task,
                                         memory=memory,
                                         fast_dispatch=spec.fast_dispatch,
                                         block_delta=spec.block_delta)
                engine.run(self.function, args)

        return run

    @property
    def supports_roofline(self) -> bool:
        return True

    def roofline(self, descriptor: PlatformDescriptor,
                 spec: ProfileSpec) -> KernelRooflineResult:
        runner = RooflineRunner(
            descriptor,
            enable_vectorizer=spec.enable_vectorizer,
            vendor_driver=spec.vendor_driver is not False,
            block_delta=spec.block_delta,
            fast_cache=spec.fast_cache,
        )
        return runner.run_source(self.source, self.function, self.args_builder,
                                 repeats=spec.repeats, filename=self.filename)
