"""Sweep journals: crash-safe progress records enabling ``--resume``.

A sweep that dies mid-plan (OOM kill, SIGKILL, power loss) has already
paid for every completed cell; the journal is what makes that work
recoverable *as a unit of progress*, not just as loose cache entries.
Keyed by a digest of the ordered plan (so resuming a *different* plan can
never skip cells), it records one line per completed cell -- ``executed``
and ``hit`` cells are *complete* (their bytes are in the store), ``error``
cells are recorded but re-run on resume.

The journal lives under ``<store root>/sweeps/``, outside the store's
versioned entry tree, so ``repro cache verify``/``clear`` never mistake it
for a content-addressed entry.  Every append rewrites the file atomically
(tempfile + ``os.replace``) so a crash at any instant leaves a valid
journal: either the record landed or it didn't -- never a torn line.  A
fully successful sweep removes its journal; only interrupted or failing
sweeps leave one behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Sequence

from repro.cache.store import atomic_write_bytes

#: Schema tag of the journal header line.
JOURNAL_SCHEMA = "repro-sweep-journal/v1"

#: Journal statuses that mean "this cell's result is in the store".
COMPLETE_STATUSES = frozenset({"executed", "hit"})


def plan_digest(keys: Sequence[str]) -> str:
    """Content address of one plan: sha256 over its ordered cell keys.

    Order matters -- the same cells in a different order are a different
    plan document (different trajectory), though their cells still resume.
    """
    digest = hashlib.sha256()
    for key in keys:
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


class SweepJournal:
    """One plan's append-only completion journal (JSONL, atomic rewrites)."""

    def __init__(self, path: str, digest: str, total_cells: int):
        self.path = path
        self.digest = digest
        self.total_cells = total_cells
        #: ``key -> status`` for every journaled cell.
        self.statuses: Dict[str, str] = {}
        #: ``key -> error record`` for journaled ``error`` cells.
        self.errors: Dict[str, dict] = {}

    @classmethod
    def for_plan(cls, store_root: str,
                 keys: Sequence[str]) -> "SweepJournal":
        digest = plan_digest(keys)
        path = os.path.join(store_root, "sweeps", f"{digest}.jsonl")
        journal = cls(path=path, digest=digest, total_cells=len(keys))
        journal._load()
        return journal

    def _load(self) -> None:
        """Read any existing journal; tolerate a missing or foreign file.

        A header whose digest disagrees (hash collision on the name is
        impossible; a hand-edited file is not) is ignored wholesale rather
        than trusted partially.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except (OSError, UnicodeDecodeError):
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return
        if (header.get("schema") != JOURNAL_SCHEMA
                or header.get("digest") != self.digest):
            return
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # never possible via atomic writes; be tolerant
            key = record.get("key")
            status = record.get("status")
            if not isinstance(key, str) or not isinstance(status, str):
                continue
            self.statuses[key] = status
            if status == "error":
                self.errors[key] = dict(record.get("error") or {})
            else:
                self.errors.pop(key, None)

    # -- queries ------------------------------------------------------------------------

    def complete(self, key: str) -> bool:
        """Whether *key* is journaled with its result safely in the store."""
        return self.statuses.get(key) in COMPLETE_STATUSES

    def completed_keys(self) -> Dict[str, str]:
        return {key: status for key, status in self.statuses.items()
                if status in COMPLETE_STATUSES}

    # -- mutation -----------------------------------------------------------------------

    def record(self, key: str, status: str,
               error: Optional[dict] = None) -> None:
        """Journal one cell outcome and persist the whole file atomically.

        Record *after* the cell's bytes are in the store: a journaled cell
        is a promise that resume can serve it without re-executing.
        """
        self.statuses[key] = status
        if status == "error" and error is not None:
            self.errors[key] = dict(error)
        else:
            self.errors.pop(key, None)
        self._write()

    def _write(self) -> None:
        lines = [json.dumps({"schema": JOURNAL_SCHEMA, "digest": self.digest,
                             "cells": self.total_cells},
                            sort_keys=True)]
        for key in sorted(self.statuses):
            record: dict = {"key": key, "status": self.statuses[key]}
            if key in self.errors:
                record["error"] = self.errors[key]
            lines.append(json.dumps(record, sort_keys=True))
        atomic_write_bytes(self.path,
                           ("\n".join(lines) + "\n").encode("utf-8"))

    def remove(self) -> None:
        """Delete the journal (the sweep completed with no error cells)."""
        try:
            os.remove(self.path)
        except OSError:
            pass
