"""Uniform run results: everything one profiling session run produced.

A :class:`Run` is the single result type for every workload kind and every
analysis mix -- counting stats, sampling recordings, hotspot tables, flame
graphs and rooflines all hang off the same object, with uniform exporters:
``to_dict``/``to_json`` for machine consumption, :meth:`report` for a text
report, :meth:`flamegraph_svg` and :meth:`roofline_svg` for figures.

:class:`Comparison` holds the side-by-side result of
:meth:`repro.api.Session.compare`: one Run per platform plus quantitative
flame-graph diffs against the first (baseline) platform.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.spec import ProfileSpec
from repro.cpu.events import HwEvent
from repro.flamegraph import FlameNode, diff_flame_graphs, FrameDiff
from repro.flamegraph.render_svg import render_svg
from repro.flamegraph.render_text import render_text
from repro.miniperf.record import RecordingResult
from repro.miniperf.report import HotspotReport
from repro.miniperf.stat import StatResult
from repro.roofline.model import RooflineModel
from repro.roofline.plot import render_ascii_roofline, render_svg_roofline
from repro.roofline.runner import KernelRooflineResult


def strip_timings(payload):
    """Drop every ``timings`` key from a JSON-shaped payload, recursively.

    Wall-clock phase timings are the one intentionally non-deterministic
    field a Run exports.  This is the canonical normalizer: the service
    wire format, :meth:`Run.deterministic_dict` and the golden suite all
    strip through it, so they can never disagree about what "deterministic
    export" means.
    """
    if isinstance(payload, dict):
        return {key: strip_timings(value) for key, value in payload.items()
                if key != "timings"}
    if isinstance(payload, list):
        return [strip_timings(item) for item in payload]
    return payload


@dataclass
class Run:
    """The uniform result of one ``session.run(workload, spec)``."""

    platform: str
    workload: str
    spec: ProfileSpec
    cpu_description: str = ""
    #: Hart count of the run; SMP runs (cpus > 1) hold SMP result types
    #: (:class:`repro.smp.SmpStatResult` / :class:`repro.smp.SmpRecordingResult`)
    #: in :attr:`stat`/:attr:`recording` -- same exporter surface, plus
    #: per-hart breakdowns.
    cpus: int = 1
    #: The executed schedule of an SMP run (None on single-hart runs).
    schedule: Optional[object] = None
    stat: Optional[StatResult] = None
    recording: Optional[RecordingResult] = None
    hotspots: Optional[HotspotReport] = None
    flame_cycles: Optional[FlameNode] = None
    flame_instructions: Optional[FlameNode] = None
    roofline: Optional[KernelRooflineResult] = None
    #: Analyses that could not be produced, keyed by analysis name.  A part
    #: that cannot sample (the SiFive U74) still yields a Run: its counting
    #: stats are present and ``errors["sampling"]`` explains what is missing.
    errors: Dict[str, str] = field(default_factory=dict)
    #: The exceptions behind :attr:`errors`, for callers that need to re-raise
    #: (the legacy workflow facade does); not part of the dict/JSON export.
    failures: Dict[str, BaseException] = field(default_factory=dict, repr=False)
    #: Wall-clock phase timings in seconds (``compile`` -- building the
    #: workload executable, including cached compilation; ``execute`` -- the
    #: profiled runs themselves; ``analyses`` -- hotspots/flame graphs/
    #: roofline derivation).  Exported under a ``timings`` key; golden and
    #: differential comparisons must exclude it (it is the one
    #: non-deterministic field a Run carries).
    timings: Dict[str, float] = field(default_factory=dict)

    # -- accessors ----------------------------------------------------------------------

    def flame(self, metric: str = "cycles") -> Optional[FlameNode]:
        if metric == "instructions":
            return self.flame_instructions
        if metric == "cycles":
            return self.flame_cycles
        raise ValueError(
            f"unknown flame-graph metric {metric!r}; "
            "expected 'cycles' or 'instructions'"
        )

    def roofline_model(self) -> RooflineModel:
        if self.roofline is None:
            raise ValueError(f"run of {self.workload!r} has no roofline analysis")
        model = self.roofline.model()
        model.add_point(self.roofline.point_for_kernel())
        return model

    # -- exporters ----------------------------------------------------------------------

    def report(self, width: int = 96, hotspot_rows: int = 10) -> str:
        """The full text report (the paper's combined PMU + compiler view)."""
        sections: List[str] = []
        header = f"== {self.workload} on {self.platform} =="
        sections.append(header)
        if self.cpu_description:
            sections.append(self.cpu_description)
        if self.stat is not None:
            sections.append(self.stat.format())
        if self.recording is not None:
            sections.append(self.recording.describe())
        if self.hotspots is not None:
            sections.append(self.hotspots.format(hotspot_rows))
        if self.flame_cycles is not None:
            sections.append("Flame graph (cycles):")
            sections.append(render_text(self.flame_cycles, width=width))
        if self.roofline is not None:
            sections.append(render_ascii_roofline(self.roofline.model()))
            sections.append(
                f"kernel: {self.roofline.kernel_gflops:.2f} GFLOP/s at AI "
                f"{self.roofline.kernel_arithmetic_intensity:.3f} FLOP/byte"
            )
        for analysis, reason in self.errors.items():
            sections.append(f"[{analysis} unavailable: {reason}]")
        return "\n\n".join(s for s in sections if s)

    def to_dict(self) -> dict:
        """Machine-consumable summary of everything this run produced."""
        payload: dict = {
            "platform": self.platform,
            "workload": self.workload,
            "spec": self.spec.to_dict(),
            "cpu": self.cpu_description,
            "cpus": self.cpus,
        }
        if self.schedule is not None and hasattr(self.schedule, "to_dict"):
            payload["schedule"] = self.schedule.to_dict()
        if self.stat is not None:
            payload["stat"] = self.stat.to_dict()
        if self.recording is not None:
            payload["recording"] = self.recording.to_dict()
        if self.hotspots is not None:
            payload["hotspots"] = self.hotspots.to_dict()
        if self.flame_cycles is not None:
            payload["flame_cycles"] = _flame_to_dict(self.flame_cycles)
        if self.flame_instructions is not None:
            payload["flame_instructions"] = _flame_to_dict(self.flame_instructions)
        if self.roofline is not None:
            payload["roofline"] = self.roofline.to_dict()
        if self.errors:
            payload["errors"] = dict(self.errors)
        if self.timings:
            payload["timings"] = {phase: round(seconds, 6)
                                  for phase, seconds in self.timings.items()}
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def deterministic_dict(self) -> dict:
        """:meth:`to_dict` without wall-clock ``timings`` keys (recursive).

        Everything else a Run exports is byte-reproducible across processes
        and Python versions (the golden suite pins it); this is the export
        the service layer caches and serves -- two identical requests must
        produce identical bytes, so the one host-volatile field stays out.
        """
        return strip_timings(self.to_dict())

    def renderings(self) -> Dict[str, str]:
        """Pre-rendered text views of this run (stat table, recording
        summary, hotspot table).

        The service and the sweep engine ship these alongside
        :meth:`deterministic_dict` so remote/cached consumers print exactly
        what the in-process CLI would, without reconstructing result
        objects from dicts.  Deterministic like every other exporter.
        """
        renderings: Dict[str, str] = {}
        if self.stat is not None:
            renderings["stat"] = self.stat.format()
        if self.recording is not None:
            renderings["recording"] = self.recording.describe()
        if self.hotspots is not None:
            renderings["hotspots"] = self.hotspots.format()
        return renderings

    def format_timings(self) -> str:
        """One-line wall-clock phase report (the CLI's ``--timings`` output)."""
        if not self.timings:
            return f"{self.platform}: no phase timings recorded"
        parts = [f"{phase} {seconds * 1000:.1f}ms"
                 for phase, seconds in self.timings.items()]
        return f"{self.platform}: " + "  ".join(parts)

    def flamegraph_svg(self, metric: str = "cycles") -> str:
        flame = self.flame(metric)
        if flame is None:
            raise ValueError(f"run of {self.workload!r} has no {metric} flame graph")
        return render_svg(flame, title=f"{self.platform} ({metric})")

    def roofline_svg(self, **kwargs) -> str:
        return render_svg_roofline(self.roofline_model(), **kwargs)


def _flame_to_dict(root: FlameNode) -> dict:
    """A flame graph as a nested dict (name/value/children)."""

    def walk(node: FlameNode) -> dict:
        entry: dict = {"name": node.name, "value": node.value}
        if node.children:
            entry["children"] = [walk(child)
                                 for child in node.children.values()]
        return entry

    return walk(root)


@dataclass
class Comparison:
    """Side-by-side runs of one workload across several platforms.

    ``runs[0]`` is the baseline; ``flame_diffs[platform]`` quantifies, per
    function, how much wider its frames are on *platform* than on the
    baseline (the paper's "comparing two images" reading of Figure 3, made
    numeric via :func:`repro.flamegraph.diff_flame_graphs`).
    """

    workload: str
    spec: ProfileSpec
    runs: List[Run] = field(default_factory=list)
    flame_diffs: Dict[str, List[FrameDiff]] = field(default_factory=dict)

    @property
    def baseline(self) -> Run:
        return self.runs[0]

    def run_for(self, platform: str) -> Optional[Run]:
        for run in self.runs:
            if run.platform == platform:
                return run
        return None

    @classmethod
    def build(cls, workload: str, spec: ProfileSpec,
              runs: List[Run], minimum_fraction: float = 0.005) -> "Comparison":
        comparison = cls(workload=workload, spec=spec, runs=runs)
        baseline = runs[0]
        if baseline.flame_cycles is not None:
            for other in runs[1:]:
                if other.flame_cycles is None:
                    continue
                comparison.flame_diffs[other.platform] = diff_flame_graphs(
                    baseline.flame_cycles, other.flame_cycles,
                    minimum_fraction=minimum_fraction,
                )
        return comparison

    # -- exporters ----------------------------------------------------------------------

    def _summary_rows(self) -> List[dict]:
        rows = []
        for run in self.runs:
            row: dict = {"platform": run.platform}
            if run.recording is not None:
                row["samples"] = run.recording.sample_count
                row["ipc"] = round(run.recording.overall_ipc, 2)
                row["instructions"] = run.recording.total(HwEvent.INSTRUCTIONS)
            if run.stat is not None:
                row["ipc"] = round(run.stat.ipc, 2)
            if run.hotspots is not None and run.hotspots.rows:
                top = run.hotspots.rows[0]
                row["top_function"] = top.function
                row["top_percent"] = round(top.total_percent, 2)
            if run.roofline is not None:
                row["gflops"] = round(run.roofline.kernel_gflops, 3)
                row["arithmetic_intensity"] = round(
                    run.roofline.kernel_arithmetic_intensity, 3)
            if run.errors:
                row["errors"] = dict(run.errors)
            rows.append(row)
        return rows

    def report(self, top_diffs: int = 8) -> str:
        """A multi-platform text report with the flame-graph diff table."""
        sections: List[str] = [
            f"== comparison: {self.workload} across "
            f"{', '.join(run.platform for run in self.runs)} =="
        ]

        keys = ["platform", "samples", "ipc", "top_function", "top_percent",
                "gflops", "arithmetic_intensity"]
        rows = self._summary_rows()
        present = [k for k in keys if any(k in row for row in rows)]
        if present:
            widths = {k: max(len(k), max((len(str(row.get(k, ""))) for row in rows),
                                         default=0)) for k in present}
            lines = ["  ".join(k.ljust(widths[k]) for k in present)]
            lines.append("  ".join("-" * widths[k] for k in present))
            for row in rows:
                lines.append("  ".join(str(row.get(k, "")).ljust(widths[k])
                                       for k in present))
            sections.append("\n".join(lines))

        for platform, diffs in self.flame_diffs.items():
            lines = [f"flame-graph diff (self-time share): "
                     f"{self.baseline.platform} -> {platform}"]
            for diff in diffs[:top_diffs]:
                lines.append(
                    f"  {diff.function:<32} {diff.fraction_a * 100:>6.2f}% -> "
                    f"{diff.fraction_b * 100:>6.2f}%  ({diff.ratio:.2f}x)"
                )
            sections.append("\n".join(lines))

        for run in self.runs:
            if run.roofline is not None:
                sections.append(render_ascii_roofline(run.roofline.model()))

        for run in self.runs:
            for analysis, reason in run.errors.items():
                sections.append(f"[{run.platform}: {analysis} unavailable: {reason}]")
        return "\n\n".join(sections)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "spec": self.spec.to_dict(),
            "platforms": [run.platform for run in self.runs],
            "summary": self._summary_rows(),
            "flame_diffs": {
                platform: [
                    {
                        "function": diff.function,
                        "baseline_fraction": round(diff.fraction_a, 6),
                        "fraction": round(diff.fraction_b, 6),
                        "ratio": (None if diff.ratio == float("inf")
                                  else round(diff.ratio, 4)),
                        "delta": round(diff.delta, 6),
                    }
                    for diff in diffs
                ]
                for platform, diffs in self.flame_diffs.items()
            },
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
