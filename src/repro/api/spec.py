"""Declarative profile specifications.

A :class:`ProfileSpec` says *what to measure and how* -- which events, the
sampling period (or counting mode), whether the vendor PMU driver and the
vectoriser are enabled, and which analyses to derive from the run -- without
saying anything about the platform or the workload.  Specs are immutable;
the ``with_*`` helpers return modified copies, so one base spec can be
shared across many :meth:`repro.api.Session.run` calls.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.cpu.events import HwEvent

#: Analyses a Session knows how to derive from one run.
ANALYSES = ("stat", "hotspots", "flamegraph", "roofline")

DEFAULT_EVENTS: Tuple[HwEvent, ...] = (HwEvent.CYCLES, HwEvent.INSTRUCTIONS)


@dataclass(frozen=True)
class ProfileSpec:
    """What one profiling run should measure and produce.

    Parameters
    ----------
    events:
        The hardware events to profile.  In sampling mode they ride along in
        the sampling group (with the group-leader workaround applied where
        the identified CPU needs it); in counting mode each is counted.
    sample_period:
        Overflow period of the sampling leader.
    vendor_driver:
        ``True``/``False`` force the vendor PMU kernel driver on or off;
        ``None`` uses the session default (the paper measures with vendor
        patches installed).
    enable_vectorizer:
        Whether compiled-kernel workloads run the loop vectoriser.
    seed:
        Seed for synthetic trace generation (determinism across runs).
    invocations:
        How many times the workload body runs under the PMU.
    repeats:
        Repeats of each roofline phase (compiled kernels only).
    cpus:
        How many harts to profile on.  ``1`` (the default) is the single-hart
        fast path, byte-identical to previous releases; ``cpus > 1`` builds a
        :class:`repro.smp.MultiHartMachine` and runs system-wide, with
        per-hart counts and cpu-tagged sample streams.
    fast_dispatch:
        Whether compiled-kernel workloads execute on the predecoded,
        batch-retiring engine (the default) or on the reference
        instruction-at-a-time interpreter.  Counters, multiplex times,
        sample streams and SMP schedules are bit-identical either way (the
        differential suite pins this down); the reference path exists for
        exactly those equivalence runs.
    block_delta:
        Whether the engine retires memory-free, branch-free basic blocks
        through precomputed :class:`~repro.cpu.core.BlockDelta` signatures
        (default on; fast-dispatch only).  Bit-identical results either
        way -- the machine falls back to per-op retirement the moment a
        sampling counter arms; the switch exists for differential runs.
    fast_cache:
        Whether the machine's cache hierarchy uses its same-line
        short-circuits (default on).  Bit-identical results either way;
        the switch exists for differential runs.
    verify_ir:
        Whether compiled-kernel pipelines run the IR verifier after *every*
        transform pass (default off: one post-pipeline verification).  A
        debug aid for localising which pass broke an invariant; also
        switchable globally via the ``REPRO_VERIFY_IR`` environment
        variable.
    analyses:
        Which of :data:`ANALYSES` to derive.  ``stat`` counts (no samples);
        ``hotspots`` and ``flamegraph`` need one sampling recording (shared);
        ``roofline`` runs the two-phase compiler-driven flow and requires a
        workload that can provide a kernel.
    """

    events: Tuple[HwEvent, ...] = DEFAULT_EVENTS
    sample_period: int = 20_000
    vendor_driver: Optional[bool] = None
    enable_vectorizer: bool = True
    seed: int = 42
    invocations: int = 1
    repeats: int = 1
    cpus: int = 1
    fast_dispatch: bool = True
    block_delta: bool = True
    fast_cache: bool = True
    verify_ir: bool = False
    analyses: Tuple[str, ...] = ("hotspots", "flamegraph")
    #: Whether this run records structured spans (``--trace``).  Excluded
    #: from :meth:`to_dict` -- the wire format and every cache key must not
    #: vary with observability settings -- but accepted by
    #: :meth:`from_dict` so service requests can ask workers to ship spans.
    telemetry: bool = False

    def __post_init__(self) -> None:
        unknown = [name for name in self.analyses if name not in ANALYSES]
        if unknown:
            raise ValueError(
                f"unknown analyses {unknown}; available: {', '.join(ANALYSES)}"
            )
        if self.sample_period <= 0:
            raise ValueError("sample_period must be positive")
        if self.cpus < 1:
            raise ValueError(f"cpus must be >= 1 (got {self.cpus})")

    # -- derivation helpers -------------------------------------------------------------

    def replace(self, **changes: object) -> "ProfileSpec":
        return dataclasses.replace(self, **changes)

    def with_events(self, *events: HwEvent) -> "ProfileSpec":
        return self.replace(events=tuple(events))

    def with_sample_period(self, period: int) -> "ProfileSpec":
        return self.replace(sample_period=period)

    def with_seed(self, seed: int) -> "ProfileSpec":
        return self.replace(seed=seed)

    def with_cpus(self, cpus: int) -> "ProfileSpec":
        """Profile on *cpus* harts (1 = the single-hart fast path)."""
        return self.replace(cpus=cpus)

    def with_fast_dispatch(self, enabled: bool = True) -> "ProfileSpec":
        return self.replace(fast_dispatch=enabled)

    def without_fast_dispatch(self) -> "ProfileSpec":
        """Run compiled kernels on the reference interpreter (differential runs)."""
        return self.replace(fast_dispatch=False)

    def with_block_delta(self, enabled: bool = True) -> "ProfileSpec":
        return self.replace(block_delta=enabled)

    def without_block_delta(self) -> "ProfileSpec":
        """Retire every op individually through the batcher (differential runs)."""
        return self.replace(block_delta=False)

    def with_fast_cache(self, enabled: bool = True) -> "ProfileSpec":
        return self.replace(fast_cache=enabled)

    def without_fast_cache(self) -> "ProfileSpec":
        """Walk the full cache hierarchy on every access (differential runs)."""
        return self.replace(fast_cache=False)

    def without_fast_paths(self) -> "ProfileSpec":
        """Disable every fast path at once: the reference interpreter with
        per-op-equivalent retirement and the plain cache walk."""
        return self.replace(fast_dispatch=False, block_delta=False,
                            fast_cache=False)

    def with_ir_verification(self, enabled: bool = True) -> "ProfileSpec":
        """Run the IR verifier between every pipeline pass (debug aid)."""
        return self.replace(verify_ir=enabled)

    def with_analyses(self, *analyses: str) -> "ProfileSpec":
        return self.replace(analyses=tuple(analyses))

    def with_telemetry(self, enabled: bool = True) -> "ProfileSpec":
        """Record structured spans for this run (observability only)."""
        return self.replace(telemetry=enabled)

    def with_roofline(self) -> "ProfileSpec":
        if "roofline" in self.analyses:
            return self
        return self.replace(analyses=self.analyses + ("roofline",))

    def counting(self) -> "ProfileSpec":
        """Counting mode only: ``miniperf stat`` semantics, no samples."""
        return self.replace(analyses=("stat",))

    def with_vendor_driver(self, enabled: bool) -> "ProfileSpec":
        return self.replace(vendor_driver=enabled)

    def without_vendor_driver(self) -> "ProfileSpec":
        """Model a stock kernel without vendor PMU patches."""
        return self.replace(vendor_driver=False)

    def without_vectorizer(self) -> "ProfileSpec":
        return self.replace(enable_vectorizer=False)

    # -- queries ------------------------------------------------------------------------

    @property
    def wants_sampling(self) -> bool:
        return bool({"hotspots", "flamegraph"} & set(self.analyses))

    @property
    def wants_stat(self) -> bool:
        return "stat" in self.analyses

    @property
    def wants_roofline(self) -> bool:
        return "roofline" in self.analyses

    def to_dict(self) -> dict:
        return {
            "events": [event.value for event in self.events],
            "sample_period": self.sample_period,
            "vendor_driver": self.vendor_driver,
            "enable_vectorizer": self.enable_vectorizer,
            "seed": self.seed,
            "invocations": self.invocations,
            "repeats": self.repeats,
            "cpus": self.cpus,
            "fast_dispatch": self.fast_dispatch,
            "block_delta": self.block_delta,
            "fast_cache": self.fast_cache,
            "verify_ir": self.verify_ir,
            "analyses": list(self.analyses),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileSpec":
        """Rebuild a spec from its :meth:`to_dict` export (the wire format).

        The round trip is exact: ``ProfileSpec.from_dict(spec.to_dict()) ==
        spec`` for every valid spec, including through a JSON encode/decode
        (events travel by their string values, analyses as a list).  Missing
        keys take the dataclass defaults, so partial dicts -- hand-written
        service requests -- work too; an unknown key raises ``ValueError``
        instead of being silently dropped.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - fields)
        if unknown:
            raise ValueError(
                f"unknown ProfileSpec key(s) {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(fields))}"
            )
        kwargs: dict = {key: payload[key] for key in fields & set(payload)}
        if "events" in kwargs:
            kwargs["events"] = tuple(HwEvent(value)
                                     for value in payload["events"])
        if "analyses" in kwargs:
            kwargs["analyses"] = tuple(payload["analyses"])
        return cls(**kwargs)
