"""The sweep engine: cartesian profiling plans over a persistent cache.

``run_many`` executes a flat list of requests; a *sweep* is the layer above
it: the cartesian plan (platforms x workloads x cpus x spec knobs), cell
canonicalization and content addressing, incremental re-execution against
the disk store, and the per-sweep trajectory export.

Each cell is canonicalized exactly the way the daemon canonicalizes a
``POST /run`` body (platform aliases resolved, spec defaults applied) and
addressed with the same ``cache_key("run", ...)`` digest, then stored under
the same ``result`` kind -- so a sweep warms the cache a ``repro serve
--cache-dir`` daemon serves from, and a daemon-filled store lets a sweep
skip those cells.  A cached cell is a *hit*: its payload bytes are served
as-is, which is safe because every export is byte-reproducible (the
differential suites enforce that a disk-served run equals a cold compile
bit for bit).  A corrupted entry fails the store's integrity check and the
cell silently re-executes.

Scheduling is shared-cache-aware: cache-miss cells are ordered by
(platform, workload) before fanning out over :func:`~repro.api.executor.
run_many`, so one worker's warmed compile cache -- and one disk-store
module entry -- serves a run of adjacent cells instead of interleaving
configurations.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.api.executor import RunFailure, RunRequest, run_plan
from repro.api.journal import SweepJournal
from repro.api.spec import ProfileSpec
from repro.cache import keys as cache_keys
from repro.cache.keys import RESULT_KIND
from repro.cache.store import atomic_write_bytes, default_store

#: Sentinel: "use the process default store" (None means "no store").
_DEFAULT_STORE = object()

#: Schema tag of the BENCH_sweep.json trajectory document.
TRAJECTORY_SCHEMA = "repro-sweep/v1"


def build_plan(platforms: Sequence[str], workloads: Sequence[str],
               cpus: Sequence[int] = (1,),
               spec: Optional[ProfileSpec] = None,
               axes: Optional[Mapping[str, Sequence[object]]] = None,
               params: Optional[dict] = None,
               vendor_driver: bool = True) -> List[RunRequest]:
    """The cartesian plan: platforms x workloads x cpus x spec knobs.

    ``axes`` maps :class:`ProfileSpec` field names to value sequences; every
    combination produces one cell via ``spec.replace(...)`` (an unknown
    field name raises the dataclass's own ``TypeError``).  Plan order is
    deterministic: platforms, then workloads, then cpus, then the axes in
    sorted-name order, each in the given value order.
    """
    base = ProfileSpec().counting() if spec is None else spec
    axis_names = sorted(axes) if axes else []
    axis_values = [list(axes[name]) for name in axis_names]
    plan: List[RunRequest] = []
    for platform, workload, cpu_count in itertools.product(
            platforms, workloads, cpus):
        for combo in itertools.product(*axis_values):
            cell_spec = base.replace(cpus=int(cpu_count),
                                     **dict(zip(axis_names, combo)))
            plan.append(RunRequest(platform=platform, workload=workload,
                                   params=dict(params or {}),
                                   spec=cell_spec,
                                   vendor_driver=vendor_driver))
    return plan


@dataclass(frozen=True)
class SweepCell:
    """One plan cell: its request, canonical wire form and content address."""

    index: int
    request: RunRequest
    canonical: dict
    key: str

    @property
    def platform(self) -> str:
        return self.canonical["platform"]

    @property
    def workload(self) -> str:
        return self.canonical["workload"]

    @property
    def cpus(self) -> int:
        return int(self.canonical["spec"]["cpus"])


@dataclass
class CellOutcome:
    """How one cell was served: cache, execution, dedup, resume -- or not.

    ``status`` is one of ``hit`` (served from the store), ``executed``,
    ``deduplicated`` (identical canonical form as an earlier cell),
    ``resumed`` (journaled complete by an interrupted sweep and served from
    the store without re-executing) or ``error`` (its execution raised; the
    sweep continued -- per-cell failure isolation).
    """

    cell: SweepCell
    status: str  # 'hit' | 'executed' | 'deduplicated' | 'resumed' | 'error'
    #: The daemon-shaped response payload ({"run": ..., "renderings": ...}),
    #: or ``{"error": {...}}`` for failed cells.
    payload: dict

    @property
    def failed(self) -> bool:
        return self.status == "error"

    @property
    def failure(self) -> Dict[str, str]:
        """The structured error of a failed cell (type, message, cache_key)."""
        return dict(self.payload.get("error", {}))

    @property
    def run(self) -> dict:
        return self.payload["run"]

    @property
    def errors(self) -> Dict[str, str]:
        if "run" not in self.payload:
            return {}
        return dict(self.run.get("errors", {}))

    def body(self) -> bytes:
        """The cacheable response bytes (what the store holds/served)."""
        return cache_keys.encode_body(self.payload)


@dataclass
class SweepResult:
    """Every cell outcome of one sweep, in plan order, plus cache stats."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    cache_stats: Optional[dict] = None
    bypassed: bool = False

    def __len__(self) -> int:
        return len(self.outcomes)

    def counts(self) -> Dict[str, int]:
        counts = {"hit": 0, "executed": 0, "deduplicated": 0,
                  "resumed": 0, "error": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def all_from_cache(self) -> bool:
        """Whether no cell had to execute (an incremental re-run hit fully)."""
        return self.counts()["executed"] == 0

    @property
    def failed_cells(self) -> List[CellOutcome]:
        """Cells whose execution raised (status ``error``), in plan order."""
        return [outcome for outcome in self.outcomes if outcome.failed]

    def summary(self) -> str:
        counts = self.counts()
        errors = sum(1 for outcome in self.outcomes if outcome.errors)
        line = (f"cells: {len(self.outcomes)}  hits: {counts['hit']}  "
                f"executed: {counts['executed']}  "
                f"deduplicated: {counts['deduplicated']}")
        if counts["resumed"]:
            line += f"  resumed: {counts['resumed']}"
        if counts["error"]:
            line += f"  failed: {counts['error']}"
        if errors:
            line += f"  with-errors: {errors}"
        return line

    def to_trajectory(self,
                      elapsed_seconds: Optional[float] = None) -> dict:
        """The BENCH_sweep.json document: schema, totals, per-cell status."""
        counts = self.counts()
        cells = []
        for outcome in self.outcomes:
            entry: dict = {
                "platform": outcome.cell.platform,
                "workload": outcome.cell.workload,
                "cpus": outcome.cell.cpus,
                "params": dict(outcome.cell.canonical.get("params", {})),
                "key": outcome.cell.key,
                "status": outcome.status,
            }
            if outcome.errors:
                entry["errors"] = sorted(outcome.errors)
            if outcome.failed:
                entry["error"] = outcome.failure
            cells.append(entry)
        doc: dict = {
            "schema": TRAJECTORY_SCHEMA,
            "totals": {
                "cells": len(self.outcomes),
                "hits": counts["hit"],
                "executed": counts["executed"],
                "deduplicated": counts["deduplicated"],
                "resumed": counts["resumed"],
                "failed": counts["error"],
                "with_errors": sum(1 for outcome in self.outcomes
                                   if outcome.errors),
            },
            "bypassed": self.bypassed,
            "cells": cells,
            "cache": self.cache_stats,
        }
        if elapsed_seconds is not None:
            doc["elapsed_seconds"] = round(elapsed_seconds, 3)
        return doc

    def write_trajectory(self, path: str,
                         elapsed_seconds: Optional[float] = None) -> dict:
        """Write the trajectory document atomically (tempfile + replace):
        a reader -- or a crash mid-write -- never sees a torn document."""
        doc = self.to_trajectory(elapsed_seconds)
        text = json.dumps(doc, indent=2) + "\n"
        atomic_write_bytes(path, text.encode("utf-8"))
        return doc


def canonical_cell(request: RunRequest) -> dict:
    """Validate + canonicalize one request exactly like the daemon does
    (platform alias resolved, spec defaults applied, workload checked), so
    the sweep's content addresses match ``POST /run``'s."""
    from repro.platforms import platform_by_name
    from repro.workloads import registry
    canonical = request.to_dict()
    canonical["platform"] = platform_by_name(canonical["platform"]).name
    if canonical["workload"] not in registry:
        raise ValueError(
            f"unknown workload {canonical['workload']!r}; "
            f"available: {', '.join(sorted(registry))}")
    return canonical


def sweep(requests: Sequence[RunRequest],
          workers: Optional[int] = None,
          store=_DEFAULT_STORE,
          bypass_cache: bool = False,
          resume: bool = False,
          isolate_errors: bool = True) -> SweepResult:
    """Execute a plan incrementally: serve cache-hit cells from the disk
    store, execute the rest via :func:`~repro.api.executor.run_plan`, fill
    the store back.

    ``store`` defaults to the process store (:func:`default_store`; pass
    None to run fully uncached).  ``bypass_cache`` skips lookups but still
    fills, like the daemon's no-cache header.  Results come back in plan
    order regardless of scheduling; duplicate cells (identical canonical
    form) execute once and report ``deduplicated``.

    Robustness: a cell whose execution raises becomes an ``error`` outcome
    and the sweep *continues* (``isolate_errors=False`` restores
    fail-fast).  With a store, every completed cell is journaled (under
    ``<store root>/sweeps/``, atomically) as the sweep progresses;
    ``resume=True`` serves journaled-complete cells of an identical
    interrupted plan from the store as ``resumed`` without re-executing --
    journaled ``error`` cells are retried.  A sweep that finishes with no
    error cells removes its journal.
    """
    if store is _DEFAULT_STORE:
        store = default_store()
    if resume and store is None:
        raise ValueError("--resume needs a disk store (the journal lives "
                         "under the cache directory)")
    cells = []
    for index, request in enumerate(requests):
        canonical = canonical_cell(request)
        cells.append(SweepCell(index=index, request=request,
                               canonical=canonical,
                               key=cache_keys.cache_key("run", canonical)))
    primary: Dict[str, SweepCell] = {}
    for cell in cells:
        primary.setdefault(cell.key, cell)

    journal = (SweepJournal.for_plan(store.root, [cell.key for cell in cells])
               if store is not None else None)

    payloads: Dict[str, dict] = {}
    statuses: Dict[str, str] = {}
    misses: List[SweepCell] = []
    for key, cell in primary.items():
        # Resume first: a journaled-complete cell is served even under
        # bypass_cache -- resuming exists precisely to not redo that work.
        if resume and journal is not None and journal.complete(key):
            body = store.get(RESULT_KIND, key)
            if body is not None:
                try:
                    payloads[key] = json.loads(body.decode("utf-8"))
                    statuses[key] = "resumed"
                    continue
                except (UnicodeDecodeError, json.JSONDecodeError):
                    pass  # journaled but unreadable: fall through, re-run
        body = (store.get(RESULT_KIND, key)
                if store is not None and not bypass_cache else None)
        if body is not None:
            try:
                payloads[key] = json.loads(body.decode("utf-8"))
                statuses[key] = "hit"
                if journal is not None:
                    journal.record(key, "hit")
                continue
            except (UnicodeDecodeError, json.JSONDecodeError):
                # Integrity-checked bytes that are not JSON mean the entry
                # was filled by something else entirely; re-execute.
                pass
        misses.append(cell)

    # Shared-cache-aware scheduling: adjacent cells of one (platform,
    # workload) share compiled modules, so grouping them lets a worker's
    # warmed compile memo -- and a single disk-store module entry -- serve
    # whole stretches of the plan instead of interleaving configurations.
    ordered = sorted(misses, key=lambda cell: (
        cell.platform, cell.workload, cell.cpus, cell.index))

    def deliver(position: int, outcome) -> None:
        """Store + journal one executed cell the moment it completes, so a
        sweep killed mid-plan has durably recorded everything it finished."""
        cell = ordered[position]
        if isinstance(outcome, RunFailure):
            error = {"type": outcome.error_type, "message": outcome.message,
                     "cache_key": outcome.cache_key or cell.key}
            payloads[cell.key] = {"error": error}
            statuses[cell.key] = "error"
            if journal is not None:
                journal.record(cell.key, "error", error=error)
            return
        payload = {"run": outcome.deterministic_dict(),
                   "renderings": outcome.renderings()}
        payloads[cell.key] = payload
        statuses[cell.key] = "executed"
        if store is not None:
            store.put(RESULT_KIND, cell.key, cache_keys.encode_body(payload))
        if journal is not None:
            journal.record(cell.key, "executed")

    run_plan([cell.request for cell in ordered], workers=workers,
             isolate_errors=isolate_errors, on_outcome=deliver)

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    for cell in cells:
        status = statuses[cell.key]
        if primary[cell.key] is not cell and status != "error":
            status = "deduplicated"
        outcomes[cell.index] = CellOutcome(cell=cell, status=status,
                                           payload=payloads[cell.key])
    if journal is not None and not any(
            outcome.failed for outcome in outcomes):
        journal.remove()
    return SweepResult(outcomes=list(outcomes),
                       cache_stats=store.stats() if store is not None
                       else None,
                       bypassed=bypass_cache)
