"""The profiling session: one composable entry point for the whole toolchain.

A :class:`Session` binds a platform model; ``session.run(workload, spec)``
profiles any :class:`~repro.api.workload.Workload` (synthetic trace replay
or compiled kernel) according to a declarative
:class:`~repro.api.spec.ProfileSpec` and returns a uniform
:class:`~repro.api.run.Run`.  :meth:`Session.compare` runs the same workload
and spec across several platforms and returns a :class:`Comparison` with
side-by-side summaries and quantitative flame-graph diffs.

Machine construction is lazy and cached per vendor-driver setting, so a
session is cheap to create and repeated runs on the same platform share one
machine model (and therefore one identified CPU), like the real tool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.api.run import Comparison, Run
from repro.api.spec import ProfileSpec
from repro.api.workload import Workload
from repro.flamegraph import build_flame_graph
from repro.kernel.perf_event import PerfEventOpenError
from repro.miniperf import Miniperf
from repro.miniperf.groups import SamplingNotSupportedError
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.platforms import platform_by_name

PlatformLike = Union[str, PlatformDescriptor]


def _resolve_platform(platform: PlatformLike) -> PlatformDescriptor:
    if isinstance(platform, PlatformDescriptor):
        return platform
    return platform_by_name(platform)


def _resolve_workload(workload: Union[str, Workload]) -> Workload:
    if isinstance(workload, str):
        from repro.workloads import registry
        return registry[workload]
    return workload


class Session:
    """Profiling session bound to one platform model.

    Parameters
    ----------
    platform:
        A :class:`PlatformDescriptor` or a platform name (resolved through
        :func:`repro.platforms.platform_by_name`).
    vendor_driver:
        Session-wide default for specs that leave ``vendor_driver`` unset;
        defaults to the paper's measured configuration (patches installed).
    """

    def __init__(self, platform: PlatformLike, vendor_driver: bool = True):
        self.descriptor = _resolve_platform(platform)
        self.default_vendor_driver = vendor_driver
        self._machines: Dict[bool, Machine] = {}
        self._tools: Dict[bool, Miniperf] = {}
        self._smp_machines: Dict[tuple, "object"] = {}

    # -- lazy machine ownership ---------------------------------------------------------

    def _effective_vendor_driver(self, spec: ProfileSpec) -> bool:
        if spec.vendor_driver is None:
            return self.default_vendor_driver
        return spec.vendor_driver

    def machine(self, vendor_driver: Optional[bool] = None) -> Machine:
        """The (lazily built, cached) machine for a vendor-driver setting."""
        key = self.default_vendor_driver if vendor_driver is None else vendor_driver
        machine = self._machines.get(key)
        if machine is None:
            machine = Machine(self.descriptor, vendor_driver=key)
            self._machines[key] = machine
        return machine

    def miniperf(self, vendor_driver: Optional[bool] = None) -> Miniperf:
        key = self.default_vendor_driver if vendor_driver is None else vendor_driver
        tool = self._tools.get(key)
        if tool is None:
            tool = Miniperf(self.machine(key))
            self._tools[key] = tool
        return tool

    def smp_machine(self, cpus: int, vendor_driver: Optional[bool] = None):
        """The (lazily built, cached) multi-hart machine for an SMP run."""
        from repro.smp import MultiHartMachine
        key = (self.default_vendor_driver if vendor_driver is None
               else vendor_driver, cpus)
        machine = self._smp_machines.get(key)
        if machine is None:
            machine = MultiHartMachine(self.descriptor, cpus,
                                       vendor_driver=key[0])
            self._smp_machines[key] = machine
        return machine

    @property
    def platform(self) -> str:
        return self.descriptor.name

    def describe(self) -> str:
        return self.miniperf().describe()

    # -- running ------------------------------------------------------------------------

    def run(self, workload: Union[str, Workload],
            spec: Optional[ProfileSpec] = None,
            cpus: Optional[int] = None,
            fast_dispatch: Optional[bool] = None) -> Run:
        """Profile *workload* according to *spec* and return a uniform Run.

        ``cpus`` (or ``spec.cpus``) selects the machine: 1 keeps the
        single-hart fast path exactly as before; more harts route through the
        SMP subsystem (:mod:`repro.smp`) for system-wide counting, per-hart
        sample streams and merged, hart-labelled flame graphs.

        ``fast_dispatch`` (or ``spec.fast_dispatch``, default on) selects the
        execution engine compiled-kernel workloads run on -- the predecoded
        batch-retiring engine or the reference interpreter.  Both the
        single-hart and the SMP path honour it; results are bit-identical
        either way, only wall-clock time differs.

        Analyses that the platform cannot deliver (e.g. sampling on a part
        whose counters cannot raise overflow interrupts, or a roofline for a
        workload with no compiled kernel) are recorded in ``run.errors``
        instead of aborting the whole run, so multi-platform comparisons
        degrade per-platform exactly the way the paper's Table 1 predicts.
        """
        spec = spec or ProfileSpec()
        if cpus is not None and cpus != spec.cpus:
            spec = spec.replace(cpus=cpus)
        if fast_dispatch is not None and fast_dispatch != spec.fast_dispatch:
            spec = spec.replace(fast_dispatch=fast_dispatch)
        workload = _resolve_workload(workload)
        if spec.cpus > 1:
            return self._run_smp(workload, spec)
        vendor_driver = self._effective_vendor_driver(spec)
        machine = self.machine(vendor_driver)
        tool = self.miniperf(vendor_driver)
        run = Run(
            platform=machine.name,
            workload=workload.name,
            spec=spec,
            cpu_description=tool.describe(),
        )

        if spec.wants_stat:
            task = machine.create_task(workload.name)
            try:
                run.stat = tool.stat(workload.executable(machine, task, spec),
                                     task=task, events=spec.events)
            except PerfEventOpenError as error:
                run.errors["stat"] = str(error)
                run.failures["stat"] = error

        if spec.wants_sampling:
            task = machine.create_task(workload.name)
            try:
                run.recording = tool.record(
                    workload.executable(machine, task, spec),
                    task=task, events=spec.events,
                    sample_period=spec.sample_period,
                )
            except (SamplingNotSupportedError, PerfEventOpenError) as error:
                run.errors["sampling"] = str(error)
                run.failures["sampling"] = error
            if run.recording is not None:
                if "hotspots" in spec.analyses:
                    run.hotspots = tool.hotspots(run.recording)
                if "flamegraph" in spec.analyses:
                    run.flame_cycles = build_flame_graph(
                        run.recording.samples, weight="samples")
                    run.flame_instructions = build_flame_graph(
                        run.recording.samples, weight="instructions")

        if spec.wants_roofline:
            if not workload.supports_roofline:
                run.errors["roofline"] = (
                    f"workload {workload.name!r} ({workload.kind}) has no "
                    "compiled kernel to run the two-phase roofline flow on"
                )
            else:
                # Resolve the session-level vendor-driver default before the
                # workload builds its own (fresh) roofline machines.
                run.roofline = workload.roofline(
                    self.descriptor, spec.replace(vendor_driver=vendor_driver))

        return run

    # -- SMP runs ------------------------------------------------------------------------

    def _threads_for(self, workload: Workload, spec: ProfileSpec):
        """Shard *workload* for an SMP run.

        Workloads implementing the :class:`~repro.workloads.parallel.
        ParallelWorkload` protocol shard themselves; any other workload runs
        as one software thread (on hart 0), which is what an unthreaded
        program does on an SMP box.
        """
        threads = getattr(workload, "threads", None)
        if callable(threads):
            return threads(spec.cpus, spec)

        def body(machine, task):
            workload.executable(machine, task, spec)()
            yield

        return [(workload.name, body)]

    def _run_smp(self, workload: Workload, spec: ProfileSpec) -> Run:
        """System-wide profiling on a multi-hart machine."""
        from repro.flamegraph import merge_flame_graphs
        from repro.miniperf.groups import SamplingNotSupportedError as _SNS
        from repro.smp import aggregate_roofline, smp_record, smp_stat

        vendor_driver = self._effective_vendor_driver(spec)
        tool = self.miniperf(vendor_driver)
        run = Run(
            platform=self.descriptor.name,
            workload=workload.name,
            spec=spec,
            cpus=spec.cpus,
            cpu_description=tool.describe(),
        )
        try:
            machine = self.smp_machine(spec.cpus, vendor_driver)
        except ValueError as error:
            # A hart count the board cannot provide degrades per-run (and
            # therefore per-platform in Session.compare), like any other
            # undeliverable analysis.  Error keys mirror the ones the
            # analyses below use: stat / sampling / roofline.
            failed = set()
            if spec.wants_stat:
                failed.add("stat")
            if spec.wants_sampling:
                failed.add("sampling")
            if spec.wants_roofline:
                failed.add("roofline")
            for key in sorted(failed):
                run.errors[key] = str(error)
                run.failures[key] = error
            return run

        if spec.wants_stat:
            try:
                run.stat = smp_stat(machine, self._threads_for(workload, spec),
                                    events=spec.events)
                run.schedule = run.stat.schedule
            except PerfEventOpenError as error:
                run.errors["stat"] = str(error)
                run.failures["stat"] = error

        if spec.wants_sampling:
            try:
                run.recording = smp_record(
                    machine, self._threads_for(workload, spec),
                    events=spec.events, sample_period=spec.sample_period,
                )
                run.schedule = run.recording.schedule
            except (_SNS, PerfEventOpenError) as error:
                run.errors["sampling"] = str(error)
                run.failures["sampling"] = error
            if run.recording is not None:
                if "hotspots" in spec.analyses:
                    run.hotspots = run.recording.hotspots()
                if "flamegraph" in spec.analyses:
                    run.flame_cycles = run.recording.flame_graph(weight="samples")
                    run.flame_instructions = run.recording.flame_graph(
                        weight="instructions")

        if spec.wants_roofline:
            if not workload.supports_roofline:
                run.errors["roofline"] = (
                    f"workload {workload.name!r} ({workload.kind}) has no "
                    "compiled kernel to run the two-phase roofline flow on"
                )
            else:
                # The kernel point is measured on one hart; the roofs are
                # aggregated over all harts.  The shared levels (DRAM and
                # the platform's LLC, which SharedMemorySystem shares across
                # harts) keep their single-instance bandwidth.
                single = workload.roofline(
                    self.descriptor, spec.replace(vendor_driver=vendor_driver))
                run.roofline = aggregate_roofline(
                    single, spec.cpus,
                    shared_levels=("DRAM", self.descriptor.caches[-1].name))

        return run

    # -- multi-platform comparison ------------------------------------------------------

    @classmethod
    def compare(cls, platforms: Sequence[PlatformLike],
                workload: Union[str, Workload],
                spec: Optional[ProfileSpec] = None) -> Comparison:
        """Run *workload*/*spec* on every platform and compare the results.

        The first platform is the baseline; flame-graph diffs of every other
        platform against it are computed when both sides produced a cycles
        flame graph.
        """
        if not platforms:
            raise ValueError("compare needs at least one platform")
        spec = spec or ProfileSpec()
        workload = _resolve_workload(workload)
        runs: List[Run] = [
            cls(platform).run(workload, spec) for platform in platforms
        ]
        return Comparison.build(workload.name, spec, runs)
