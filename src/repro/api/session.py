"""The profiling session: one composable entry point for the whole toolchain.

A :class:`Session` binds a platform model; ``session.run(workload, spec)``
profiles any :class:`~repro.api.workload.Workload` (synthetic trace replay
or compiled kernel) according to a declarative
:class:`~repro.api.spec.ProfileSpec` and returns a uniform
:class:`~repro.api.run.Run`.  :meth:`Session.compare` runs the same workload
and spec across several platforms and returns a :class:`Comparison` with
side-by-side summaries and quantitative flame-graph diffs.

Machine construction is lazy and cached per vendor-driver setting, so a
session is cheap to create and repeated runs on the same platform share one
machine model (and therefore one identified CPU), like the real tool.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union


def _wall_seconds() -> float:
    """Host wall-clock, for the diagnostic phase timings only.

    ``run.timings`` reports compile/execute/analyses wall time to stderr on
    ``--timings``; it never feeds modelled time, samples or golden output
    (the golden suite strips it).  Every timing read funnels through here so
    the wall-clock exposure stays a single audited site.
    """
    return perf_counter()  # repro-lint: allow[wall-clock] -- diagnostic phase timings; stripped from goldens, never modelled time

from repro import telemetry as _telemetry
from repro.api.run import Comparison, Run
from repro.api.spec import ProfileSpec
from repro.api.workload import Workload
from repro.flamegraph import build_flame_graph
from repro.kernel.perf_event import PerfEventOpenError
from repro.miniperf import Miniperf
from repro.miniperf.groups import SamplingNotSupportedError
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.platforms import all_platforms, platform_by_name

PlatformLike = Union[str, PlatformDescriptor]


def _resolve_platform(platform: PlatformLike) -> PlatformDescriptor:
    if isinstance(platform, PlatformDescriptor):
        return platform
    return platform_by_name(platform)


def _validate_platforms(platforms: Sequence[PlatformLike]) -> List[PlatformDescriptor]:
    """Resolve a compare() platform list up front, with clean errors.

    An unknown name raises a ValueError listing the valid platform names; a
    platform appearing twice raises as well -- both instead of failing deep
    inside machine construction (or silently diffing a platform against
    itself)."""
    if not platforms:
        raise ValueError("compare needs at least one platform")
    descriptors: List[PlatformDescriptor] = []
    seen = set()
    for platform in platforms:
        if isinstance(platform, PlatformDescriptor):
            descriptor = platform
        else:
            try:
                descriptor = platform_by_name(platform)
            except (KeyError, ValueError):
                valid = ", ".join(d.name for d in all_platforms())
                raise ValueError(
                    f"unknown platform {platform!r}; valid platforms: {valid}"
                ) from None
        if descriptor.name in seen:
            raise ValueError(
                f"duplicate platform {descriptor.name!r} in compare(); "
                "each platform may appear at most once"
            )
        seen.add(descriptor.name)
        descriptors.append(descriptor)
    return descriptors


def _resolve_workload(workload: Union[str, Workload]) -> Workload:
    if isinstance(workload, str):
        from repro.workloads import registry
        return registry[workload]
    return workload


class Session:
    """Profiling session bound to one platform model.

    Parameters
    ----------
    platform:
        A :class:`PlatformDescriptor` or a platform name (resolved through
        :func:`repro.platforms.platform_by_name`).
    vendor_driver:
        Session-wide default for specs that leave ``vendor_driver`` unset;
        defaults to the paper's measured configuration (patches installed).
    """

    def __init__(self, platform: PlatformLike, vendor_driver: bool = True):
        self.descriptor = _resolve_platform(platform)
        self.default_vendor_driver = vendor_driver
        self._machines: Dict[bool, Machine] = {}
        self._tools: Dict[bool, Miniperf] = {}
        self._smp_machines: Dict[tuple, "object"] = {}

    # -- lazy machine ownership ---------------------------------------------------------

    def _effective_vendor_driver(self, spec: ProfileSpec) -> bool:
        if spec.vendor_driver is None:
            return self.default_vendor_driver
        return spec.vendor_driver

    def machine(self, vendor_driver: Optional[bool] = None) -> Machine:
        """The (lazily built, cached) machine for a vendor-driver setting."""
        key = self.default_vendor_driver if vendor_driver is None else vendor_driver
        machine = self._machines.get(key)
        if machine is None:
            machine = Machine(self.descriptor, vendor_driver=key)
            self._machines[key] = machine
        return machine

    def miniperf(self, vendor_driver: Optional[bool] = None) -> Miniperf:
        key = self.default_vendor_driver if vendor_driver is None else vendor_driver
        tool = self._tools.get(key)
        if tool is None:
            tool = Miniperf(self.machine(key))
            self._tools[key] = tool
        return tool

    def smp_machine(self, cpus: int, vendor_driver: Optional[bool] = None):
        """The (lazily built, cached) multi-hart machine for an SMP run."""
        from repro.smp import MultiHartMachine
        key = (self.default_vendor_driver if vendor_driver is None
               else vendor_driver, cpus)
        machine = self._smp_machines.get(key)
        if machine is None:
            machine = MultiHartMachine(self.descriptor, cpus,
                                       vendor_driver=key[0])
            self._smp_machines[key] = machine
        return machine

    def adopt_machine(self, machine: Machine,
                      vendor_driver: Optional[bool] = None) -> None:
        """Install a pre-built machine as this session's cached machine.

        The warm pools in :mod:`repro.service` construct machines ahead of
        demand and hand each one to exactly one request; adopting makes the
        session use the pre-built machine instead of building its own.  The
        machine must model this session's platform, and it must not have run
        anything yet: a machine's *first* run is bit-identical to a fresh
        machine's, but PMU/cache state persists across runs, so a reused
        machine would break the byte-reproducibility the result cache
        depends on.
        """
        if machine.name != self.descriptor.name:
            raise ValueError(
                f"machine models {machine.name!r}, session is bound to "
                f"{self.descriptor.name!r}"
            )
        key = (self.default_vendor_driver if vendor_driver is None
               else vendor_driver)
        self._machines[key] = machine

    def adopt_smp_machine(self, machine, cpus: int,
                          vendor_driver: Optional[bool] = None) -> None:
        """Install a pre-built multi-hart machine (see :meth:`adopt_machine`)."""
        if machine.name != self.descriptor.name:
            raise ValueError(
                f"machine models {machine.name!r}, session is bound to "
                f"{self.descriptor.name!r}"
            )
        if getattr(machine, "cpus", cpus) != cpus:
            raise ValueError(
                f"machine has {machine.cpus} harts, adopted under cpus={cpus}"
            )
        key = (self.default_vendor_driver if vendor_driver is None
               else vendor_driver, cpus)
        self._smp_machines[key] = machine

    @property
    def platform(self) -> str:
        return self.descriptor.name

    def describe(self) -> str:
        return self.miniperf().describe()

    # -- running ------------------------------------------------------------------------

    def run(self, workload: Union[str, Workload],
            spec: Optional[ProfileSpec] = None,
            cpus: Optional[int] = None,
            fast_dispatch: Optional[bool] = None) -> Run:
        """Profile *workload* according to *spec* and return a uniform Run.

        ``cpus`` (or ``spec.cpus``) selects the machine: 1 keeps the
        single-hart fast path exactly as before; more harts route through the
        SMP subsystem (:mod:`repro.smp`) for system-wide counting, per-hart
        sample streams and merged, hart-labelled flame graphs.

        ``fast_dispatch`` (or ``spec.fast_dispatch``, default on) selects the
        execution engine compiled-kernel workloads run on -- the predecoded
        batch-retiring engine or the reference interpreter.  Both the
        single-hart and the SMP path honour it; results are bit-identical
        either way, only wall-clock time differs.

        Analyses that the platform cannot deliver (e.g. sampling on a part
        whose counters cannot raise overflow interrupts, or a roofline for a
        workload with no compiled kernel) are recorded in ``run.errors``
        instead of aborting the whole run, so multi-platform comparisons
        degrade per-platform exactly the way the paper's Table 1 predicts.
        """
        spec = spec or ProfileSpec()
        if cpus is not None and cpus != spec.cpus:
            spec = spec.replace(cpus=cpus)
        if fast_dispatch is not None and fast_dispatch != spec.fast_dispatch:
            spec = spec.replace(fast_dispatch=fast_dispatch)
        workload = _resolve_workload(workload)
        if spec.cpus > 1:
            return self._run_smp(workload, spec)
        vendor_driver = self._effective_vendor_driver(spec)
        machine = self.machine(vendor_driver)
        machine.set_cache_fast_path(spec.fast_cache)
        tool = self.miniperf(vendor_driver)
        run = Run(
            platform=machine.name,
            workload=workload.name,
            spec=spec,
            cpu_description=tool.describe(),
        )
        compile_seconds = 0.0
        execute_seconds = 0.0
        analyses_seconds = 0.0
        collector = _telemetry.RunCollector(platform=machine.name,
                                            workload=workload.name)
        collector.start(machine)

        with _telemetry.span("run", cat="run", platform=machine.name,
                             workload=workload.name, cpus=1):
            if spec.wants_stat:
                task = machine.create_task(workload.name)
                start = _wall_seconds()
                try:
                    with _telemetry.span("compile", analysis="stat"):
                        executable = workload.executable(machine, task, spec)
                    compile_seconds += _wall_seconds() - start
                    start = _wall_seconds()
                    with _telemetry.span("execute", analysis="stat"):
                        run.stat = tool.stat(executable, task=task,
                                             events=spec.events)
                    execute_seconds += _wall_seconds() - start
                except PerfEventOpenError as error:
                    run.errors["stat"] = str(error)
                    run.failures["stat"] = error

            if spec.wants_sampling:
                task = machine.create_task(workload.name)
                start = _wall_seconds()
                try:
                    with _telemetry.span("compile", analysis="sampling"):
                        executable = workload.executable(machine, task, spec)
                    compile_seconds += _wall_seconds() - start
                    start = _wall_seconds()
                    with _telemetry.span("execute", analysis="sampling"):
                        run.recording = tool.record(
                            executable,
                            task=task, events=spec.events,
                            sample_period=spec.sample_period,
                        )
                    execute_seconds += _wall_seconds() - start
                except (SamplingNotSupportedError, PerfEventOpenError) as error:
                    run.errors["sampling"] = str(error)
                    run.failures["sampling"] = error
                if run.recording is not None:
                    start = _wall_seconds()
                    with _telemetry.span("analyses", analysis="sampling"):
                        if "hotspots" in spec.analyses:
                            run.hotspots = tool.hotspots(run.recording)
                        if "flamegraph" in spec.analyses:
                            run.flame_cycles = build_flame_graph(
                                run.recording.samples, weight="samples")
                            run.flame_instructions = build_flame_graph(
                                run.recording.samples, weight="instructions")
                    analyses_seconds += _wall_seconds() - start

            if spec.wants_roofline:
                if not workload.supports_roofline:
                    run.errors["roofline"] = (
                        f"workload {workload.name!r} ({workload.kind}) has no "
                        "compiled kernel to run the two-phase roofline flow on"
                    )
                else:
                    # Resolve the session-level vendor-driver default before the
                    # workload builds its own (fresh) roofline machines.
                    start = _wall_seconds()
                    with _telemetry.span("analyses", analysis="roofline"):
                        run.roofline = workload.roofline(
                            self.descriptor,
                            spec.replace(vendor_driver=vendor_driver))
                    analyses_seconds += _wall_seconds() - start

        run.timings = {"compile": compile_seconds, "execute": execute_seconds,
                       "analyses": analyses_seconds}
        collector.finish(timings=run.timings)
        return run

    # -- SMP runs ------------------------------------------------------------------------

    def _threads_for(self, workload: Workload, spec: ProfileSpec):
        """Shard *workload* for an SMP run.

        Workloads implementing the :class:`~repro.workloads.parallel.
        ParallelWorkload` protocol shard themselves; any other workload runs
        as one software thread (on hart 0), which is what an unthreaded
        program does on an SMP box.
        """
        threads = getattr(workload, "threads", None)
        if callable(threads):
            return threads(spec.cpus, spec)

        def body(machine, task):
            workload.executable(machine, task, spec)()
            yield

        return [(workload.name, body)]

    def _run_smp(self, workload: Workload, spec: ProfileSpec) -> Run:
        """System-wide profiling on a multi-hart machine."""
        from repro.flamegraph import merge_flame_graphs
        from repro.miniperf.groups import SamplingNotSupportedError as _SNS
        from repro.smp import aggregate_roofline, smp_record, smp_stat

        vendor_driver = self._effective_vendor_driver(spec)
        tool = self.miniperf(vendor_driver)
        run = Run(
            platform=self.descriptor.name,
            workload=workload.name,
            spec=spec,
            cpus=spec.cpus,
            cpu_description=tool.describe(),
        )
        compile_seconds = 0.0
        execute_seconds = 0.0
        analyses_seconds = 0.0
        try:
            machine = self.smp_machine(spec.cpus, vendor_driver)
        except ValueError as error:
            # A hart count the board cannot provide degrades per-run (and
            # therefore per-platform in Session.compare), like any other
            # undeliverable analysis.  Error keys mirror the ones the
            # analyses below use: stat / sampling / roofline.
            failed = set()
            if spec.wants_stat:
                failed.add("stat")
            if spec.wants_sampling:
                failed.add("sampling")
            if spec.wants_roofline:
                failed.add("roofline")
            for key in sorted(failed):
                run.errors[key] = str(error)
                run.failures[key] = error
            return run
        machine.set_cache_fast_path(spec.fast_cache)
        collector = _telemetry.RunCollector(platform=self.descriptor.name,
                                            workload=workload.name)
        collector.start(machine)

        with _telemetry.span("run", cat="run", platform=self.descriptor.name,
                             workload=workload.name, cpus=spec.cpus):
            if spec.wants_stat:
                start = _wall_seconds()
                try:
                    with _telemetry.span("compile", analysis="stat"):
                        threads = self._threads_for(workload, spec)
                    compile_seconds += _wall_seconds() - start
                    start = _wall_seconds()
                    with _telemetry.span("execute", analysis="stat"):
                        run.stat = smp_stat(machine, threads,
                                            events=spec.events)
                    run.schedule = run.stat.schedule
                    execute_seconds += _wall_seconds() - start
                except PerfEventOpenError as error:
                    run.errors["stat"] = str(error)
                    run.failures["stat"] = error

            if spec.wants_sampling:
                start = _wall_seconds()
                try:
                    with _telemetry.span("compile", analysis="sampling"):
                        threads = self._threads_for(workload, spec)
                    compile_seconds += _wall_seconds() - start
                    start = _wall_seconds()
                    with _telemetry.span("execute", analysis="sampling"):
                        run.recording = smp_record(
                            machine, threads,
                            events=spec.events,
                            sample_period=spec.sample_period,
                        )
                    run.schedule = run.recording.schedule
                    execute_seconds += _wall_seconds() - start
                except (_SNS, PerfEventOpenError) as error:
                    run.errors["sampling"] = str(error)
                    run.failures["sampling"] = error
                if run.recording is not None:
                    start = _wall_seconds()
                    with _telemetry.span("analyses", analysis="sampling"):
                        if "hotspots" in spec.analyses:
                            run.hotspots = run.recording.hotspots()
                        if "flamegraph" in spec.analyses:
                            run.flame_cycles = run.recording.flame_graph(
                                weight="samples")
                            run.flame_instructions = run.recording.flame_graph(
                                weight="instructions")
                    analyses_seconds += _wall_seconds() - start

            if spec.wants_roofline:
                if not workload.supports_roofline:
                    run.errors["roofline"] = (
                        f"workload {workload.name!r} ({workload.kind}) has no "
                        "compiled kernel to run the two-phase roofline flow on"
                    )
                else:
                    # The kernel point is measured on one hart; the roofs are
                    # aggregated over all harts.  The shared levels (DRAM and
                    # the platform's LLC, which SharedMemorySystem shares across
                    # harts) keep their single-instance bandwidth.
                    start = _wall_seconds()
                    with _telemetry.span("analyses", analysis="roofline"):
                        single = workload.roofline(
                            self.descriptor,
                            spec.replace(vendor_driver=vendor_driver))
                        run.roofline = aggregate_roofline(
                            single, spec.cpus,
                            shared_levels=("DRAM",
                                           self.descriptor.caches[-1].name))
                    analyses_seconds += _wall_seconds() - start

        run.timings = {"compile": compile_seconds, "execute": execute_seconds,
                       "analyses": analyses_seconds}
        collector.finish(schedule=run.schedule, timings=run.timings)
        return run

    # -- multi-platform comparison ------------------------------------------------------

    @classmethod
    def compare(cls, platforms: Sequence[PlatformLike],
                workload: Union[str, Workload],
                spec: Optional[ProfileSpec] = None,
                workers: int = 1,
                workload_params: Optional[Dict[str, object]] = None) -> Comparison:
        """Run *workload*/*spec* on every platform and compare the results.

        The first platform is the baseline; flame-graph diffs of every other
        platform against it are computed when both sides produced a cycles
        flame graph.

        Platforms are validated up front: an unknown name raises a
        ``ValueError`` listing the valid platform names, and a platform
        appearing twice raises as well (a platform diffed against itself is
        always a mistake).

        ``workers`` > 1 fans the per-platform runs out over a process pool
        (:func:`repro.api.executor.run_many`): every run is deterministic
        and isolated, so the Comparison is bit-identical to the serial one,
        in platform order, only faster.  Prefer naming the workload by its
        registry string (with ``workload_params`` for factory parameters)
        when parallelising -- names always pickle; concrete workload
        objects must be picklable to cross the process boundary.
        """
        descriptors = _validate_platforms(platforms)
        spec = spec or ProfileSpec()
        if isinstance(workload, str):
            name: Optional[str] = workload
            params = dict(workload_params or {})
            from repro.workloads import registry
            workload = registry.create(name, **params)
        else:
            if workload_params:
                raise ValueError(
                    "workload_params apply only when the workload is given "
                    "by registry name")
            name, params = None, {}
            workload = _resolve_workload(workload)
        if workers > 1:
            from repro.api.executor import RunRequest, run_many
            requests = [
                # A caller-supplied descriptor object travels whole, so a
                # customized platform is profiled as given; plain names stay
                # names (resolved registry-side in the worker).
                RunRequest(platform=(original if isinstance(original,
                                                            PlatformDescriptor)
                                     else descriptor.name),
                           workload=name if name is not None else workload,
                           params=params, spec=spec)
                for original, descriptor in zip(platforms, descriptors)
            ]
            runs = run_many(requests, workers=workers)
        else:
            runs: List[Run] = [
                cls(descriptor).run(workload, spec) for descriptor in descriptors
            ]
        return Comparison.build(workload.name, spec, runs)
