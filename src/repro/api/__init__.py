"""The unified profiling-session API (the paper's third contribution, as a library).

Three concepts compose:

* a :class:`Workload` -- anything profilable: synthetic call-tree trace
  replays or compiled KernelC kernels run on the fast-dispatch VM engine,
  usually looked up by name in :data:`repro.workloads.registry`;
* a :class:`ProfileSpec` -- a declarative, immutable description of what to
  measure (events, sampling vs. counting, vendor-driver and vectoriser
  toggles) and which analyses to derive (hotspots, flame graphs, roofline);
* a :class:`Session` -- owns lazy machine construction for one platform and
  turns ``session.run(workload, spec)`` into a uniform :class:`Run` with
  ``to_dict``/JSON, text-report and SVG exporters.

Quick start::

    from repro.api import ProfileSpec, Session
    from repro.workloads import registry

    session = Session("SpacemiT X60")
    run = session.run(registry["sqlite3-like"], ProfileSpec(sample_period=10_000))
    print(run.report())

    roofline = session.run(registry["matmul-tiled"],
                           ProfileSpec(analyses=("roofline",)))
    print(roofline.report())

    comparison = Session.compare(["SpacemiT X60", "Intel Core i5-1135G7"],
                                 "sqlite3-like", ProfileSpec())
    print(comparison.report())
"""

from repro.api.spec import ANALYSES, ProfileSpec
from repro.api.workload import (
    CompiledKernelWorkload,
    SyntheticTraceWorkload,
    Workload,
)
from repro.api.executor import RunRequest, execute_request, run_many
from repro.api.run import Comparison, Run
from repro.api.session import Session

__all__ = [
    "ANALYSES",
    "ProfileSpec",
    "Workload",
    "SyntheticTraceWorkload",
    "CompiledKernelWorkload",
    "Run",
    "RunRequest",
    "run_many",
    "execute_request",
    "Comparison",
    "Session",
]
