"""Parallel run executor: fan profiling runs out over worker processes.

Every modelled machine is deterministic and every :meth:`repro.api.Session.
run` is independent (a session builds its own machines; compiled modules are
memoized per process), so a plan of ``platform x workload x spec`` runs can
execute in any order -- or in parallel -- and produce bit-identical results.
:func:`run_many` exploits that: requests fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, each worker warms its
compile cache once (:func:`compile_source_cached` memoizes per process), and
the results come back in request order regardless of completion order.

``Session.compare(..., workers=N)`` and the figure/table benchmark drivers
are the in-tree consumers; the building blocks are public so external
sweeps (platform matrices, parameter scans) can schedule their own plans.

Requests should carry workloads *by registry name* (plus factory params):
names pickle trivially and each worker builds its own instance.  Concrete
workload objects also work when they pickle (the built-in kernel workloads
do); a workload that cannot be pickled raises a clean ``ValueError`` before
any process is spawned.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.api.run import Run
from repro.api.spec import ProfileSpec


@dataclass(frozen=True)
class RunRequest:
    """One profiling run of a plan: platform x workload x spec.

    ``platform`` is a platform name or a full
    :class:`~repro.platforms.descriptors.PlatformDescriptor` -- pass the
    descriptor itself for customized platforms, so workers profile exactly
    the machine the caller built instead of the registry platform of the
    same name.  ``workload`` is preferably a registry name; ``params`` are
    then passed to the registry factory (``scale``/``n``...).
    ``vendor_driver`` is the session-wide default for specs that leave it
    unset.
    """

    platform: Union[str, object]
    workload: Union[str, object]
    params: Dict[str, object] = field(default_factory=dict)
    spec: ProfileSpec = field(default_factory=ProfileSpec)
    vendor_driver: bool = True


def _resolve_workload(request: RunRequest):
    if isinstance(request.workload, str):
        from repro.workloads import registry
        return registry.create(request.workload, **dict(request.params))
    return request.workload


def execute_request(request: RunRequest) -> Run:
    """Run one request in this process (the worker body of :func:`run_many`)."""
    from repro.api.session import Session
    session = Session(request.platform, vendor_driver=request.vendor_driver)
    return session.run(_resolve_workload(request), request.spec)


def _platform_key(platform: Union[str, object]) -> str:
    return platform if isinstance(platform, str) else platform.name


def _warmup_plan(requests: Sequence[RunRequest]) -> List[tuple]:
    """The distinct kernel sources a plan compiles, for per-worker warmup."""
    warmups: List[tuple] = []
    seen = set()
    for request in requests:
        workload = _resolve_workload(request)
        source = getattr(workload, "source", None)
        filename = getattr(workload, "filename", None)
        if not isinstance(source, str) or not isinstance(filename, str):
            continue
        key = (_platform_key(request.platform), source,
               request.spec.enable_vectorizer)
        if key not in seen:
            seen.add(key)
            warmups.append((request.platform, source, filename,
                            request.spec.enable_vectorizer))
    return warmups


def _warm_worker(warmups: Sequence[tuple]) -> None:
    """Pool initializer: precompile the plan's kernels into this worker's
    process-wide compile cache, so first runs don't pay cold compiles."""
    from repro.compiler.cache import compile_source_cached
    from repro.platforms import platform_by_name
    for platform, source, filename, enable_vectorizer in warmups:
        try:
            descriptor = (platform_by_name(platform)
                          if isinstance(platform, str) else platform)
            compile_source_cached(source, filename, descriptor,
                                  enable_vectorizer)
        except Exception:
            # Warmup is best-effort; a kernel that cannot compile surfaces
            # its real error in the run that needs it.
            pass


def _check_picklable(requests: Sequence[RunRequest]) -> None:
    for request in requests:
        try:
            pickle.dumps(request)
        except Exception as error:
            raise ValueError(
                f"request for workload {getattr(request.workload, 'name', request.workload)!r} "
                "cannot be sent to a worker process; pass the workload by "
                f"registry name instead ({error})"
            ) from error


def run_many(requests: Sequence[RunRequest],
             workers: Optional[int] = None) -> List[Run]:
    """Execute *requests* and return their :class:`Run` results in order.

    ``workers`` <= 1 (or a single-request plan) runs serially in-process.
    More workers fan out over a process pool; every run is deterministic and
    isolated, so results -- and their order, which always matches the
    request order -- are bit-identical to the serial path.  ``workers=None``
    uses one worker per CPU (capped at the plan size).
    """
    requests = list(requests)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(requests) <= 1:
        return [execute_request(request) for request in requests]
    _check_picklable(requests)
    workers = min(workers, len(requests))
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_warm_worker,
                             initargs=(_warmup_plan(requests),)) as pool:
        return list(pool.map(execute_request, requests))
