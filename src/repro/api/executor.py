"""Parallel run executor: fan profiling runs out over worker processes.

Every modelled machine is deterministic and every :meth:`repro.api.Session.
run` is independent (a session builds its own machines; compiled modules are
memoized per process), so a plan of ``platform x workload x spec`` runs can
execute in any order -- or in parallel -- and produce bit-identical results.
:func:`run_many` exploits that: requests fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, each worker warms its
compile cache once (:func:`compile_source_cached` memoizes per process), and
the results come back in request order regardless of completion order.

``Session.compare(..., workers=N)`` and the figure/table benchmark drivers
are the in-tree consumers; the building blocks are public so external
sweeps (platform matrices, parameter scans) can schedule their own plans.

Requests should carry workloads *by registry name* (plus factory params):
names pickle trivially and each worker builds its own instance.  Concrete
workload objects also work when they pickle (the built-in kernel workloads
do); a workload that cannot be pickled raises a clean ``ValueError`` before
any process is spawned.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.api.run import Run
from repro.api.spec import ProfileSpec


@dataclass(frozen=True)
class RunRequest:
    """One profiling run of a plan: platform x workload x spec.

    ``platform`` is a platform name or a full
    :class:`~repro.platforms.descriptors.PlatformDescriptor` -- pass the
    descriptor itself for customized platforms, so workers profile exactly
    the machine the caller built instead of the registry platform of the
    same name.  ``workload`` is preferably a registry name; ``params`` are
    then passed to the registry factory (``scale``/``n``...).
    ``vendor_driver`` is the session-wide default for specs that leave it
    unset.
    """

    platform: Union[str, object]
    workload: Union[str, object]
    params: Dict[str, object] = field(default_factory=dict)
    spec: ProfileSpec = field(default_factory=ProfileSpec)
    vendor_driver: bool = True

    # -- wire format --------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-shaped wire format (what ``repro serve`` accepts).

        Wire requests carry the platform and the workload *by name* so any
        process -- a service worker, a remote client -- can rebuild them from
        its own registry; a request holding a concrete descriptor or workload
        object raises ``ValueError`` (ship those through pickle via
        :func:`run_many` instead).  ``params`` must be JSON-serializable.
        """
        if not isinstance(self.platform, str):
            raise ValueError(
                "only platform names serialize to the wire format; got a "
                f"{type(self.platform).__name__} (pass the platform by name)"
            )
        if not isinstance(self.workload, str):
            raise ValueError(
                "only registry workload names serialize to the wire format; "
                f"got a {type(self.workload).__name__} (pass the workload by "
                "registry name, with factory parameters in params)"
            )
        return {
            "platform": self.platform,
            "workload": self.workload,
            "params": dict(self.params),
            "spec": self.spec.to_dict(),
            "vendor_driver": self.vendor_driver,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRequest":
        """Rebuild a request from its :meth:`to_dict` export.

        The round trip is exact (``RunRequest.from_dict(r.to_dict()) == r``),
        including through JSON.  ``spec`` may be a partial dict (missing keys
        take :class:`ProfileSpec` defaults); unknown top-level keys raise
        ``ValueError`` so a typo cannot silently profile the default.
        """
        known = {"platform", "workload", "params", "spec", "vendor_driver"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown RunRequest key(s) {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        if "platform" not in payload or "workload" not in payload:
            raise ValueError("a RunRequest needs 'platform' and 'workload'")
        spec = payload.get("spec", {})
        return cls(
            platform=payload["platform"],
            workload=payload["workload"],
            params=dict(payload.get("params", {})),
            spec=spec if isinstance(spec, ProfileSpec)
            else ProfileSpec.from_dict(spec),
            vendor_driver=bool(payload.get("vendor_driver", True)),
        )


def _resolve_workload(request: RunRequest):
    if isinstance(request.workload, str):
        from repro.workloads import registry
        return registry.create(request.workload, **dict(request.params))
    return request.workload


def execute_request(request: RunRequest) -> Run:
    """Run one request in this process (the worker body of :func:`run_many`).

    Per-request outcomes land in the telemetry registry: ``ok`` when every
    requested analysis was produced, ``partial`` when some were recorded in
    ``run.errors``, ``error`` when the run itself raised.
    """
    from repro import telemetry as _telemetry
    from repro.api.session import Session
    outcomes = _telemetry.REGISTRY.counter(
        "repro_executor_requests_total",
        "Executor run requests by outcome")
    try:
        session = Session(request.platform,
                          vendor_driver=request.vendor_driver)
        run = session.run(_resolve_workload(request), request.spec)
    except Exception:
        outcomes.inc(outcome="error")
        raise
    outcomes.inc(outcome="partial" if run.errors else "ok")
    return run


def _execute_request_shipped(request: RunRequest):
    """Worker body that ships the run's telemetry delta back to the parent.

    Returns ``(run, captured_wire)``: the registry delta this request
    produced in the worker process, plus span wire dicts when the request's
    spec asked for telemetry.  The parent merges both -- merging is safe
    precisely because the worker is a different process.
    """
    from repro import telemetry as _telemetry
    with _telemetry.capture(spans=request.spec.telemetry) as captured:
        run = execute_request(request)
    return run, captured.to_wire()


def _merge_shipped(request: RunRequest, index: int, shipped: dict) -> None:
    """Fold one worker's shipped telemetry into this (parent) process."""
    from repro import telemetry as _telemetry
    _telemetry.REGISTRY.merge(shipped["metrics"])
    if shipped["spans"]:
        parent = _telemetry.record(
            "run_many_worker", cat="run", index=index,
            platform=_platform_key(request.platform),
            workload=getattr(request.workload, "name", request.workload))
        if parent is not None:
            _telemetry.TRACER.attach_wire(shipped["spans"], parent=parent)


def _platform_key(platform: Union[str, object]) -> str:
    return platform if isinstance(platform, str) else platform.name


def _warmup_plan(requests: Sequence[RunRequest]) -> List[tuple]:
    """The distinct kernel sources a plan compiles, for per-worker warmup."""
    warmups: List[tuple] = []
    seen = set()
    for request in requests:
        workload = _resolve_workload(request)
        source = getattr(workload, "source", None)
        filename = getattr(workload, "filename", None)
        if not isinstance(source, str) or not isinstance(filename, str):
            continue
        key = (_platform_key(request.platform), source,
               request.spec.enable_vectorizer)
        if key not in seen:
            seen.add(key)
            warmups.append((request.platform, source, filename,
                            request.spec.enable_vectorizer))
    return warmups


def _warm_worker(warmups: Sequence[tuple]) -> None:
    """Pool initializer: precompile the plan's kernels into this worker's
    process-wide compile cache, so first runs don't pay cold compiles."""
    from repro.compiler.cache import compile_source_cached, reset_stats
    from repro.platforms import platform_by_name
    for platform, source, filename, enable_vectorizer in warmups:
        try:
            descriptor = (platform_by_name(platform)
                          if isinstance(platform, str) else platform)
            compile_source_cached(source, filename, descriptor,
                                  enable_vectorizer)
        except Exception:
            # Warmup is best-effort; a kernel that cannot compile surfaces
            # its real error in the run that needs it.
            pass
    # Warmup compiles are pool overhead, not request work: zero the tallies
    # so cache_stats() -- and the telemetry folded from it -- attributes
    # only request-driven compiles.
    reset_stats()


def _check_picklable(requests: Sequence[RunRequest]) -> None:
    for request in requests:
        try:
            pickle.dumps(request)
        except Exception as error:
            raise ValueError(
                f"request for workload {getattr(request.workload, 'name', request.workload)!r} "
                "cannot be sent to a worker process; pass the workload by "
                f"registry name instead ({error})"
            ) from error


def run_many(requests: Sequence[RunRequest],
             workers: Optional[int] = None) -> List[Run]:
    """Execute *requests* and return their :class:`Run` results in order.

    ``workers`` of 0 or 1 (or a single-request plan) runs serially
    in-process; a negative count raises ``ValueError`` (it is always a bug,
    not a request for the serial path).  More workers fan out over a process
    pool; every run is deterministic and isolated, so results -- and their
    order, which always matches the request order -- are bit-identical to
    the serial path.  ``workers=None`` uses one worker per CPU (capped at
    the plan size).  A worker process dying mid-plan (OOM kill, hard crash
    in a workload) raises a ``RuntimeError`` naming the first affected
    request instead of surfacing a raw ``BrokenProcessPool`` traceback.
    """
    requests = list(requests)
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0 (got {workers})")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(requests) <= 1:
        return [execute_request(request) for request in requests]
    _check_picklable(requests)
    workers = min(workers, len(requests))
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_warm_worker,
                             initargs=(_warmup_plan(requests),)) as pool:
        futures = [pool.submit(_execute_request_shipped, request)
                   for request in requests]
        results: List[Run] = []
        for index, (request, future) in enumerate(zip(requests, futures)):
            try:
                run, shipped = future.result()
                _merge_shipped(request, index, shipped)
                results.append(run)
            except BrokenProcessPool as error:
                workload = getattr(request.workload, "name", request.workload)
                raise RuntimeError(
                    f"a worker process died executing request {index} of "
                    f"{len(requests)} (platform "
                    f"{_platform_key(request.platform)!r}, workload "
                    f"{workload!r}); the pool is broken and the remaining "
                    "requests were abandoned"
                ) from error
        return results
