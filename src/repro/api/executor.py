"""Parallel run executor: fan profiling runs out over worker processes.

Every modelled machine is deterministic and every :meth:`repro.api.Session.
run` is independent (a session builds its own machines; compiled modules are
memoized per process), so a plan of ``platform x workload x spec`` runs can
execute in any order -- or in parallel -- and produce bit-identical results.
:func:`run_many` exploits that: requests fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, each worker warms its
compile cache once (:func:`compile_source_cached` memoizes per process), and
the results come back in request order regardless of completion order.

``Session.compare(..., workers=N)`` and the figure/table benchmark drivers
are the in-tree consumers; the building blocks are public so external
sweeps (platform matrices, parameter scans) can schedule their own plans.

Requests should carry workloads *by registry name* (plus factory params):
names pickle trivially and each worker builds its own instance.  Concrete
workload objects also work when they pickle (the built-in kernel workloads
do); a workload that cannot be pickled raises a clean ``ValueError`` before
any process is spawned.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import faults as _faults
from repro.api.run import Run
from repro.api.spec import ProfileSpec

#: True only in a ``run_plan`` pool worker (set by the pool initializer), so
#: the crash fault point can never kill the coordinating parent process.
_IN_WORKER_PROCESS = False


@dataclass(frozen=True)
class RunRequest:
    """One profiling run of a plan: platform x workload x spec.

    ``platform`` is a platform name or a full
    :class:`~repro.platforms.descriptors.PlatformDescriptor` -- pass the
    descriptor itself for customized platforms, so workers profile exactly
    the machine the caller built instead of the registry platform of the
    same name.  ``workload`` is preferably a registry name; ``params`` are
    then passed to the registry factory (``scale``/``n``...).
    ``vendor_driver`` is the session-wide default for specs that leave it
    unset.
    """

    platform: Union[str, object]
    workload: Union[str, object]
    params: Dict[str, object] = field(default_factory=dict)
    spec: ProfileSpec = field(default_factory=ProfileSpec)
    vendor_driver: bool = True

    # -- wire format --------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-shaped wire format (what ``repro serve`` accepts).

        Wire requests carry the platform and the workload *by name* so any
        process -- a service worker, a remote client -- can rebuild them from
        its own registry; a request holding a concrete descriptor or workload
        object raises ``ValueError`` (ship those through pickle via
        :func:`run_many` instead).  ``params`` must be JSON-serializable.
        """
        if not isinstance(self.platform, str):
            raise ValueError(
                "only platform names serialize to the wire format; got a "
                f"{type(self.platform).__name__} (pass the platform by name)"
            )
        if not isinstance(self.workload, str):
            raise ValueError(
                "only registry workload names serialize to the wire format; "
                f"got a {type(self.workload).__name__} (pass the workload by "
                "registry name, with factory parameters in params)"
            )
        return {
            "platform": self.platform,
            "workload": self.workload,
            "params": dict(self.params),
            "spec": self.spec.to_dict(),
            "vendor_driver": self.vendor_driver,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRequest":
        """Rebuild a request from its :meth:`to_dict` export.

        The round trip is exact (``RunRequest.from_dict(r.to_dict()) == r``),
        including through JSON.  ``spec`` may be a partial dict (missing keys
        take :class:`ProfileSpec` defaults); unknown top-level keys raise
        ``ValueError`` so a typo cannot silently profile the default.
        """
        known = {"platform", "workload", "params", "spec", "vendor_driver"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown RunRequest key(s) {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        if "platform" not in payload or "workload" not in payload:
            raise ValueError("a RunRequest needs 'platform' and 'workload'")
        spec = payload.get("spec", {})
        return cls(
            platform=payload["platform"],
            workload=payload["workload"],
            params=dict(payload.get("params", {})),
            spec=spec if isinstance(spec, ProfileSpec)
            else ProfileSpec.from_dict(spec),
            vendor_driver=bool(payload.get("vendor_driver", True)),
        )


def _resolve_workload(request: RunRequest):
    if isinstance(request.workload, str):
        from repro.workloads import registry
        return registry.create(request.workload, **dict(request.params))
    return request.workload


def execute_request(request: RunRequest) -> Run:
    """Run one request in this process (the worker body of :func:`run_many`).

    Per-request outcomes land in the telemetry registry: ``ok`` when every
    requested analysis was produced, ``partial`` when some were recorded in
    ``run.errors``, ``error`` when the run itself raised.
    """
    from repro import telemetry as _telemetry
    from repro.api.session import Session
    # The crash fault may only ever kill a genuine multiprocessing child:
    # _IN_WORKER_PROCESS alone is not enough, because warmup helpers can
    # legitimately run in the main process (tests, inline pools) and must
    # never leave it armed for os._exit.
    if (_IN_WORKER_PROCESS
            and multiprocessing.parent_process() is not None
            and _faults.fires("executor.worker_crash")):
        os._exit(83)
    _faults.delay("executor.slow_worker")
    outcomes = _telemetry.REGISTRY.counter(
        "repro_executor_requests_total",
        "Executor run requests by outcome")
    try:
        session = Session(request.platform,
                          vendor_driver=request.vendor_driver)
        run = session.run(_resolve_workload(request), request.spec)
    except Exception:
        outcomes.inc(outcome="error")
        raise
    outcomes.inc(outcome="partial" if run.errors else "ok")
    return run


def _execute_request_shipped(request: RunRequest):
    """Worker body that ships the run's telemetry delta back to the parent.

    Returns ``(run, captured_wire)``: the registry delta this request
    produced in the worker process, plus span wire dicts when the request's
    spec asked for telemetry.  The parent merges both -- merging is safe
    precisely because the worker is a different process.
    """
    from repro import telemetry as _telemetry
    with _telemetry.capture(spans=request.spec.telemetry) as captured:
        run = execute_request(request)
    return run, captured.to_wire()


def _merge_shipped(request: RunRequest, index: int, shipped: dict) -> None:
    """Fold one worker's shipped telemetry into this (parent) process."""
    from repro import telemetry as _telemetry
    _telemetry.REGISTRY.merge(shipped["metrics"])
    if shipped["spans"]:
        parent = _telemetry.record(
            "run_many_worker", cat="run", index=index,
            platform=_platform_key(request.platform),
            workload=getattr(request.workload, "name", request.workload))
        if parent is not None:
            _telemetry.TRACER.attach_wire(shipped["spans"], parent=parent)


def _platform_key(platform: Union[str, object]) -> str:
    return platform if isinstance(platform, str) else platform.name


def _warmup_plan(requests: Sequence[RunRequest]) -> List[tuple]:
    """The distinct kernel sources a plan compiles, for per-worker warmup."""
    warmups: List[tuple] = []
    seen = set()
    for request in requests:
        workload = _resolve_workload(request)
        source = getattr(workload, "source", None)
        filename = getattr(workload, "filename", None)
        if not isinstance(source, str) or not isinstance(filename, str):
            continue
        key = (_platform_key(request.platform), source,
               request.spec.enable_vectorizer)
        if key not in seen:
            seen.add(key)
            warmups.append((request.platform, source, filename,
                            request.spec.enable_vectorizer))
    return warmups


def _warm_worker(warmups: Sequence[tuple]) -> None:
    """Pool initializer: precompile the plan's kernels into this worker's
    process-wide compile cache, so first runs don't pay cold compiles."""
    global _IN_WORKER_PROCESS
    _IN_WORKER_PROCESS = True
    from repro.compiler.cache import compile_source_cached, reset_stats
    from repro.platforms import platform_by_name
    for platform, source, filename, enable_vectorizer in warmups:
        try:
            descriptor = (platform_by_name(platform)
                          if isinstance(platform, str) else platform)
            compile_source_cached(source, filename, descriptor,
                                  enable_vectorizer)
        except Exception:
            # Warmup is best-effort; a kernel that cannot compile surfaces
            # its real error in the run that needs it.
            pass
    # Warmup compiles are pool overhead, not request work: zero the tallies
    # so cache_stats() -- and the telemetry folded from it -- attributes
    # only request-driven compiles.
    reset_stats()


def _check_picklable(requests: Sequence[RunRequest]) -> None:
    for request in requests:
        try:
            pickle.dumps(request)
        except Exception as error:
            raise ValueError(
                f"request for workload {getattr(request.workload, 'name', request.workload)!r} "
                "cannot be sent to a worker process; pass the workload by "
                f"registry name instead ({error})"
            ) from error


def request_cache_key(request: RunRequest) -> Optional[str]:
    """The canonical ``result``-kind cache key of *request* (matching sweep
    cell and daemon keys), or None when the request cannot be expressed on
    the wire (object platforms/workloads)."""
    from repro.cache import keys as cache_keys
    from repro.platforms import platform_by_name
    try:
        canonical = request.to_dict()
        canonical["platform"] = platform_by_name(canonical["platform"]).name
        return cache_keys.cache_key("run", canonical)
    except Exception:
        return None


@dataclass(frozen=True)
class RunFailure:
    """One request's failure under ``isolate_errors``: what raised, where.

    ``cache_key`` is the request's canonical result key (when derivable),
    so a failing sweep cell is identifiable in journals and trajectories.
    """

    index: int
    error_type: str
    message: str
    cache_key: Optional[str] = None


def _failure_for(index: int, request: RunRequest,
                 error: BaseException) -> RunFailure:
    return RunFailure(index=index, error_type=type(error).__name__,
                      message=str(error) or type(error).__name__,
                      cache_key=request_cache_key(request))


def _crash_message(index: int, total: int, request: RunRequest,
                   abandoned: bool) -> str:
    workload = getattr(request.workload, "name", request.workload)
    key = request_cache_key(request)
    detail = f"cache key {key}" if key else "cache key unavailable"
    message = (
        f"a worker process died executing request {index} of {total} "
        f"(platform {_platform_key(request.platform)!r}, workload "
        f"{workload!r}); the request was retried once on a fresh pool and "
        f"the worker died again ({detail})")
    if abandoned:
        message += "; the remaining requests were abandoned"
    return message


#: Per-request callback: ``on_outcome(index, Run | RunFailure)``, invoked
#: exactly once per request as its result is consumed.
OutcomeCallback = Callable[[int, Union[Run, RunFailure]], None]


def run_plan(requests: Sequence[RunRequest],
             workers: Optional[int] = None,
             isolate_errors: bool = False,
             on_outcome: Optional[OutcomeCallback] = None,
             ) -> List[Union[Run, RunFailure]]:
    """Execute *requests*, returning a :class:`Run` or :class:`RunFailure`
    per request in request order.

    The scheduling contract matches :func:`run_many` (serial under
    ``workers <= 1``, process pool above, bit-identical results either
    way).  Two behaviors layer on top:

    * A request whose worker process dies (``BrokenProcessPool``) is
      retried exactly once on a fresh pool -- results already completed by
      other workers are kept.  A second death surfaces as a clean
      ``RuntimeError`` naming the request and its canonical cache key, or
      as a :class:`RunFailure` under ``isolate_errors``.
    * ``isolate_errors=True`` converts any per-request exception into a
      :class:`RunFailure` instead of aborting the plan -- the sweep
      engine's per-cell isolation.

    ``on_outcome`` fires once per request as outcomes are consumed (in
    request order within a pool generation), which is what lets a sweep
    journal completed cells incrementally: anything journaled was fully
    delivered, whatever happens to the process afterwards.
    """
    requests = list(requests)
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0 (got {workers})")
    if workers is None:
        workers = os.cpu_count() or 1
    results: List[Optional[Union[Run, RunFailure]]] = [None] * len(requests)

    def deliver(index: int, outcome: Union[Run, RunFailure]) -> None:
        results[index] = outcome
        if on_outcome is not None:
            on_outcome(index, outcome)

    if workers <= 1 or len(requests) <= 1:
        for index, request in enumerate(requests):
            try:
                run = execute_request(request)
            except Exception as error:
                if not isolate_errors:
                    raise
                deliver(index, _failure_for(index, request, error))
            else:
                deliver(index, run)
        return list(results)

    _check_picklable(requests)
    retried: set = set()
    pending = list(range(len(requests)))
    while pending:
        batch = pending
        batch_requests = [requests[index] for index in batch]
        broken: Optional[tuple] = None
        with ProcessPoolExecutor(
                max_workers=min(workers, len(batch)),
                initializer=_warm_worker,
                initargs=(_warmup_plan(batch_requests),)) as pool:
            futures = [pool.submit(_execute_request_shipped, request)
                       for request in batch_requests]
            for index, future in zip(batch, futures):
                request = requests[index]
                try:
                    run, shipped = future.result()
                except BrokenProcessPool as error:
                    # The first broken future in submission order is the
                    # suspect; later futures may still hold completed work,
                    # so keep consuming instead of discarding the batch.
                    if broken is None:
                        broken = (index, error)
                    continue
                except Exception as error:
                    if not isolate_errors:
                        raise
                    deliver(index, _failure_for(index, request, error))
                else:
                    _merge_shipped(request, index, shipped)
                    deliver(index, run)
        if broken is None:
            break
        index, error = broken
        if index in retried:
            if not isolate_errors:
                raise RuntimeError(_crash_message(
                    index, len(requests), requests[index],
                    abandoned=True)) from error
            deliver(index, RunFailure(
                index=index, error_type="WorkerCrash",
                message=_crash_message(index, len(requests), requests[index],
                                       abandoned=False),
                cache_key=request_cache_key(requests[index])))
        else:
            retried.add(index)
        pending = [i for i in pending if results[i] is None]
    return list(results)


def run_many(requests: Sequence[RunRequest],
             workers: Optional[int] = None) -> List[Run]:
    """Execute *requests* and return their :class:`Run` results in order.

    ``workers`` of 0 or 1 (or a single-request plan) runs serially
    in-process; a negative count raises ``ValueError`` (it is always a bug,
    not a request for the serial path).  More workers fan out over a process
    pool; every run is deterministic and isolated, so results -- and their
    order, which always matches the request order -- are bit-identical to
    the serial path.  ``workers=None`` uses one worker per CPU (capped at
    the plan size).  A worker process dying mid-plan (OOM kill, hard crash
    in a workload) gets exactly one retry on a fresh pool; a second death
    raises a ``RuntimeError`` naming the victim request and its canonical
    cache key instead of surfacing a raw ``BrokenProcessPool`` traceback.
    """
    return run_plan(requests, workers=workers)  # type: ignore[return-value]
