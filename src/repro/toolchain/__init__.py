"""The integrated toolchain: one workflow from workload to reports."""

from repro.toolchain.workflow import AnalysisWorkflow, AnalysisReport

__all__ = ["AnalysisWorkflow", "AnalysisReport"]
