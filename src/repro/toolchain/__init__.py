"""The integrated toolchain: CLI + legacy workflow facade.

The profiling logic itself lives in :mod:`repro.api` (Session / ProfileSpec
/ Run); :class:`AnalysisWorkflow` is the backwards-compatible facade over it
and :mod:`repro.toolchain.cli` is the ``miniperf`` command-line front end.
"""

from repro.toolchain.workflow import AnalysisWorkflow, AnalysisReport

__all__ = ["AnalysisWorkflow", "AnalysisReport"]
