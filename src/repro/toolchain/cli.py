"""Command-line interface: ``repro <subcommand>`` (also ``python -m repro``).

Every profiling subcommand is a thin shell over the unified session API
(:mod:`repro.api`): it resolves ``--workload NAME`` through the registry,
builds a declarative :class:`~repro.api.ProfileSpec` from the flags and runs
it through a :class:`~repro.api.Session`, so every workload kind, platform
and vendor-driver setting goes down exactly one code path.

* ``capabilities``            -- print the Table-1 platform comparison;
* ``platforms``               -- list the modelled platforms (name, arch,
  board, harts, vector extension);
* ``workloads``               -- list the registered workloads;
* ``identify -p X``           -- show what cpuid-based identification finds;
* ``stat -p X``               -- count events for a workload;
* ``record -p X``             -- sample it and print the hotspot table;
* ``flamegraph -p X``         -- same, rendered as a flame graph (text/SVG);
* ``roofline -p X``           -- the compiler-driven roofline for a kernel;
* ``compare --platforms ...`` -- one workload across platforms, side by side,
  with quantitative flame-graph diffs;
* ``analyze -p X``            -- the static-analysis report for a workload
  (block-delta certification, address regions, liveness/reaching-defs,
  race verdicts for parallel workloads); nonzero exit on ``racy``/
  ``unknown`` race verdicts;
* ``lint [paths]``            -- the determinism linter over the repo's own
  source (or the given paths); nonzero exit on violations;
* ``metrics``                 -- dump the unified telemetry registry after
  one local counting run, or fetch and pretty-print a daemon's
  ``/metrics`` (``--server``);
* ``sweep``                   -- a cartesian profiling plan (platforms x
  workloads x cpus x spec axes) through the persistent result cache:
  cached cells are served from disk, the rest execute and fill it, and
  the per-sweep trajectory lands in ``BENCH_sweep.json``; a repeated
  identical sweep executes nothing (see :mod:`repro.api.sweep`);
* ``cache {stats,clear,verify}`` -- inspect, empty or integrity-check the
  persistent artifact store (``REPRO_CACHE_DIR`` / ``REPRO_DISK_CACHE``;
  see :mod:`repro.cache`);
* ``serve``                   -- the profiling daemon (warm worker pools,
  content-addressed result cache, bounded admission with backpressure);
  ``--cache-dir PATH`` persists results on disk so a restarted daemon
  starts hot; see :mod:`repro.service`.

``--server URL`` on stat/record/compare/analyze sends the request to a
running ``repro serve`` daemon instead of profiling in process; the output
is the same modulo the wall-clock ``timings`` key, which the service's
content-addressed cache must exclude (``--timings`` therefore prints
nothing remotely).

``--cpus N`` on stat/record/flamegraph/compare profiles on an N-hart SMP
machine (per-hart columns, cpu-tagged samples, hart-labelled flame graphs);
``-a``/``--all-cpus`` uses every hart of the board, like ``perf stat -a``.
``--json`` on stat/record/roofline/compare (and capabilities/platforms)
emits the machine-consumable export of the same run.
``--no-fast-dispatch`` on stat/record/flamegraph/compare runs compiled
kernels on the reference interpreter instead of the predecoded
batch-retiring engine -- bit-identical output, only slower (it exists for
differential runs; the roofline flow manages its own engines and does not
take the flag); ``--no-block-delta`` and ``--no-fast-cache`` likewise
disable block-delta retirement caching and the cache hierarchy's same-line
short-circuits.
``--workers N`` on compare fans the per-platform runs out over N worker
processes (bit-identical Comparison, in platform order); ``--timings`` on
stat/compare prints wall-clock compile/execute/analyses phase timings to
stderr.
``--trace PATH`` on stat/record/compare/analyze/serve records the command's
structured span tree (compile/lower/predecode/execute/analyses/export) and
writes it as Chrome trace-event JSON -- loadable in Perfetto or
``chrome://tracing`` -- or as JSONL when PATH ends in ``.jsonl``.  Tracing
is observability only: the profiled output is byte-identical with and
without it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.lint import default_lint_root, iter_python_files, lint_paths
from repro.analysis.report import (
    build_analyze_report,
    failed_certifications,
    format_analyze_report,
)
from repro.api import ProfileSpec, Session
from repro.flamegraph import render_text
from repro.miniperf import Miniperf
from repro.miniperf.groups import SamplingNotSupportedError
from repro.kernel.perf_event import PerfEventOpenError
from repro.platforms import Machine, all_platforms, platform_by_name
from repro.pmu.vendors import all_capabilities
from repro.roofline.plot import render_ascii_roofline, render_svg_roofline
from repro.telemetry import span as _span
from repro.workloads import registry


def _format_table(keys: List[str], rows: List[dict]) -> str:
    widths = {k: max(len(k), max((len(str(r.get(k, ""))) for r in rows),
                                 default=0)) for k in keys}
    lines = ["  ".join(k.ljust(widths[k]) for k in keys)]
    lines.append("  ".join("-" * widths[k] for k in keys))
    for row in rows:
        lines.append("  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys))
    return "\n".join(lines)


def _capability_rows() -> List[dict]:
    """Table-1 rows, in descriptor order (no hand-maintained core list)."""
    capabilities = all_capabilities()
    return [capabilities[descriptor.name].as_row()
            for descriptor in all_platforms() if descriptor.is_riscv]


def _capabilities_table() -> str:
    keys = ["Core", "Out-of-Order", "RVV version",
            "Overflow interrupt support", "Upstream Linux support"]
    return _format_table(keys, _capability_rows())


def cmd_capabilities(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        print(json.dumps(_capability_rows(), indent=2))
        return 0
    print("Comparison of available RISC-V hardware capabilities (Table 1):")
    print(_capabilities_table())
    return 0


def cmd_platforms(args: argparse.Namespace) -> int:
    """List every modelled platform straight from its descriptor."""
    rows = [
        {
            "name": descriptor.name,
            "arch": descriptor.arch,
            "board": descriptor.board,
            "harts": descriptor.harts,
            "vector": descriptor.vector.extension or "none",
        }
        for descriptor in all_platforms()
    ]
    if getattr(args, "json", False):
        print(json.dumps(rows, indent=2))
        return 0
    print(_format_table(["name", "arch", "board", "harts", "vector"], rows))
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    print(registry.describe())
    return 0


def cmd_identify(args: argparse.Namespace) -> int:
    machine = Machine(platform_by_name(args.platform),
                      vendor_driver=not args.no_vendor_driver)
    print(Miniperf(machine).describe())
    return 0


def _session(args: argparse.Namespace) -> Session:
    return Session(platform_by_name(args.platform),
                   vendor_driver=not args.no_vendor_driver)


def _cpus(args: argparse.Namespace, platform_name: Optional[str] = None) -> int:
    """Resolve --cpus / -a into a hart count for one platform.

    Non-positive --cpus values flow through so ProfileSpec rejects them with
    the same clean error every other size parameter gets.
    """
    if getattr(args, "all_cpus", False):
        descriptor = platform_by_name(platform_name or args.platform)
        return max(1, descriptor.harts)
    cpus = getattr(args, "cpus", None)
    return 1 if cpus is None else cpus


def _workload_params(args: argparse.Namespace) -> dict:
    """The factory parameters --workload's factory accepts from the flags."""
    params = {}
    accepted = registry.params(args.workload)
    for name in ("scale", "n"):
        value = getattr(args, name, None)
        if value is not None and name in accepted:
            params[name] = value
    return params


def _workload(args: argparse.Namespace):
    """Resolve --workload, forwarding only the parameters its factory takes."""
    return registry.create(args.workload, **_workload_params(args))


def _fast_dispatch(args: argparse.Namespace) -> bool:
    return not getattr(args, "no_fast_dispatch", False)


def _fast_paths(args: argparse.Namespace) -> dict:
    """ProfileSpec fast-path toggles from the shared dispatch flags."""
    return {
        "fast_dispatch": _fast_dispatch(args),
        "block_delta": not getattr(args, "no_block_delta", False),
        "fast_cache": not getattr(args, "no_fast_cache", False),
    }


def _print_timings(args: argparse.Namespace, *runs) -> None:
    if getattr(args, "timings", False):
        for run in runs:
            print(run.format_timings(), file=sys.stderr)


# -- --server plumbing --------------------------------------------------------------------
#
# Every profiling subcommand takes --server URL: instead of profiling in
# process it ships the same JSON-shaped RunRequest to a `repro serve` daemon
# and prints the daemon's response.  Output is byte-identical to the local
# path modulo the wall-clock `timings` key (the one field the service's
# content-addressed cache must exclude): --json re-dumps the served run with
# the same indent, and text output prints the worker-side renderings of the
# very same result objects.


def _remote_client(args: argparse.Namespace):
    from repro.service.client import RetryPolicy, ServiceClient
    retries = int(getattr(args, "retries", 0) or 0)
    policy = None
    if retries > 0:
        policy = RetryPolicy(
            attempts=retries + 1,
            deadline=getattr(args, "retry_deadline", None))
    return ServiceClient(args.server, retry=policy)


def _remote_request(args: argparse.Namespace, spec: ProfileSpec) -> dict:
    """The JSON-shaped RunRequest a subcommand's flags describe."""
    return {
        "platform": args.platform,
        "workload": args.workload,
        "params": _workload_params(args),
        "spec": spec.with_cpus(_cpus(args)).to_dict(),
        "vendor_driver": not args.no_vendor_driver,
    }


def _remote_run(args: argparse.Namespace, spec: ProfileSpec, label: str,
                error_key: str, render_keys: List[str]) -> int:
    """Run one request via --server; print what the local path would."""
    from repro.service.client import ServiceError
    try:
        payload = _remote_client(args).run(_remote_request(args, spec))
    except ServiceError as error:
        print(f"{label} failed: {error}", file=sys.stderr)
        return 1
    run = payload["run"]
    if error_key in run.get("errors", {}):
        print(f"{label} failed: {run['errors'][error_key]}", file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        print(json.dumps(run, indent=2))
        return 0
    renderings = payload.get("renderings", {})
    print("\n\n".join(renderings[key] for key in render_keys
                      if key in renderings))
    return 0


def cmd_stat(args: argparse.Namespace) -> int:
    spec = ProfileSpec(**_fast_paths(args)).counting()
    if args.server:
        return _remote_run(args, spec, "stat", "stat", ["stat"])
    run = _session(args).run(_workload(args), spec, cpus=_cpus(args))
    if "stat" in run.errors:
        print(f"stat failed: {run.errors['stat']}", file=sys.stderr)
        return 1
    with _span("export", cat="cli",
               format="json" if args.json else "text"):
        if args.json:
            print(run.to_json())
        else:
            print(run.stat.format())
    _print_timings(args, run)
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    spec = ProfileSpec(sample_period=args.period,
                       analyses=("hotspots", "flamegraph"),
                       **_fast_paths(args))
    if args.server:
        return _remote_run(args, spec, "record", "sampling",
                           ["recording", "hotspots"])
    run = _session(args).run(_workload(args), spec, cpus=_cpus(args))
    if "sampling" in run.errors:
        print(f"record failed: {run.errors['sampling']}", file=sys.stderr)
        return 1
    with _span("export", cat="cli",
               format="json" if args.json else "text"):
        if args.json:
            print(run.to_json())
            return 0
        print(run.recording.describe())
        print()
        print(run.hotspots.format())
    return 0


def cmd_flamegraph(args: argparse.Namespace) -> int:
    spec = ProfileSpec(sample_period=args.period, analyses=("flamegraph",),
                       **_fast_paths(args))
    run = _session(args).run(_workload(args), spec, cpus=_cpus(args))
    if "sampling" in run.errors:
        print(f"flamegraph failed: {run.errors['sampling']}", file=sys.stderr)
        return 1
    flame = run.flame(args.metric)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(run.flamegraph_svg(args.metric))
        print(f"wrote {args.output}")
    else:
        print(render_text(flame, width=args.width))
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    spec = ProfileSpec(analyses=("roofline",),
                       enable_vectorizer=not args.no_vectorize)
    run = _session(args).run(_workload(args), spec)
    if "roofline" in run.errors:
        print(f"roofline failed: {run.errors['roofline']}", file=sys.stderr)
        return 1
    if args.json:
        print(run.to_json())
        return 0
    result = run.roofline
    # One model drives both artifacts so the ASCII plot and the SVG agree.
    model = result.model()
    print(render_ascii_roofline(model))
    print()
    print(f"kernel: {result.kernel_gflops:.2f} GFLOP/s at "
          f"AI {result.kernel_arithmetic_intensity:.3f} FLOP/byte")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_svg_roofline(model))
        print(f"wrote {args.output}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    analyses = ("hotspots", "flamegraph")
    workload = _workload(args)
    if args.roofline:
        if workload.supports_roofline:
            analyses = analyses + ("roofline",)
        else:
            print(f"warning: --roofline ignored; workload {workload.name!r} "
                  "has no compiled kernel", file=sys.stderr)
    spec = ProfileSpec(sample_period=args.period, analyses=analyses,
                       vendor_driver=not args.no_vendor_driver,
                       cpus=1 if args.cpus is None else args.cpus,
                       **_fast_paths(args))
    if args.server:
        from repro.service.client import ServiceError
        try:
            payload = _remote_client(args).compare(
                args.platforms, args.workload, spec=spec.to_dict(),
                params=_workload_params(args))
        except ServiceError as error:
            print(f"compare failed: {error}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(payload["comparison"], indent=2))
        else:
            print(payload["report"])
        return 0
    # Platform names go to compare() unresolved: it validates the whole list
    # up front (unknown or duplicate names raise one clean ValueError).  The
    # workload travels by registry name so --workers can ship it to worker
    # processes.
    comparison = Session.compare(
        args.platforms, args.workload, spec,
        workers=args.workers, workload_params=_workload_params(args))
    with _span("export", cat="cli",
               format="json" if args.json else "text"):
        if args.json:
            print(comparison.to_json())
        else:
            print(comparison.report())
    _print_timings(args, *comparison.runs)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    cpus = 1 if args.cpus is None else args.cpus
    if getattr(args, "server", None):
        from repro.service.client import ServiceError
        try:
            payload = _remote_client(args).analyze(
                args.platform,
                workload=None if args.all else args.workload,
                cpus=cpus,
                params={} if args.all else _workload_params(args),
                all_workloads=args.all)
        except ServiceError as error:
            print(f"analyze failed: {error}", file=sys.stderr)
            return 1
        report = payload["analyze"]
    else:
        report = build_analyze_report(
            args.platform, cpus=cpus,
            workload=None if args.all else args.workload,
            params={} if args.all else _workload_params(args),
            all_workloads=args.all)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_analyze_report(report))
    bad = failed_certifications(report)
    if bad:
        print(f"race certification failed for: {', '.join(bad)}",
              file=sys.stderr)
        return 1
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Dump the telemetry registry (local run) or a daemon's ``/metrics``."""
    from repro import telemetry
    if args.server:
        from repro.service.client import ServiceError
        try:
            if args.format == "prometheus":
                print(_remote_client(args).metrics(format="prometheus"),
                      end="")
            else:
                print(json.dumps(_remote_client(args).metrics(), indent=2))
        except ServiceError as error:
            print(f"metrics failed: {error}", file=sys.stderr)
            return 1
        return 0
    spec = ProfileSpec(**_fast_paths(args)).counting()
    run = _session(args).run(_workload(args), spec, cpus=_cpus(args))
    if "stat" in run.errors:
        print(f"metrics failed: {run.errors['stat']}", file=sys.stderr)
        return 1
    if args.format == "prometheus":
        print(telemetry.REGISTRY.prometheus(), end="")
    else:
        print(json.dumps(telemetry.REGISTRY.to_dict(), indent=2))
    return 0


def _parse_axis(raw: str) -> tuple:
    """One ``--axis KEY=V1,V2`` flag: a ProfileSpec field and its values.

    Values parse as JSON where they can (``true``, ``3``, ``[1,2]``) and
    fall back to the literal string, so ``--axis enable_vectorizer=true,false``
    and ``--axis events=["cycles"]`` both work without quoting gymnastics.
    """
    name, sep, rest = raw.partition("=")
    if not sep or not name or not rest:
        raise ValueError(
            f"malformed --axis {raw!r}; expected KEY=VALUE[,VALUE...]")
    values = []
    for token in rest.split(","):
        try:
            values.append(json.loads(token))
        except json.JSONDecodeError:
            values.append(token)
    return name, values


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a cartesian plan through the persistent result cache."""
    import time

    from repro.api.sweep import build_plan, sweep
    from repro.cache.store import default_store

    platforms = args.platforms or [d.name for d in all_platforms()]
    workloads = args.workloads or sorted(registry)
    axes = dict(_parse_axis(raw) for raw in args.axis or [])
    plan = build_plan(platforms, workloads, cpus=tuple(args.cpus),
                      axes=axes or None)
    store = default_store()
    if store is None and not args.bypass_cache:
        print("warning: disk cache disabled (REPRO_DISK_CACHE=off); "
              "every cell will execute", file=sys.stderr)
    # Sweep elapsed time is reporting-only telemetry for the trajectory
    # file; it never feeds modelled time or cached bytes.
    started = time.monotonic()  # repro-lint: allow[wall-clock] -- trajectory reporting only
    result = sweep(plan, workers=args.workers, store=store,
                   bypass_cache=args.bypass_cache, resume=args.resume)
    elapsed = time.monotonic() - started  # repro-lint: allow[wall-clock] -- trajectory reporting only
    doc = result.write_trajectory(args.out, elapsed_seconds=elapsed)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(result.summary())
        print(f"wrote {args.out}")
        for outcome in result.failed_cells:
            failure = outcome.failure
            print(f"cell {outcome.cell.platform}/{outcome.cell.workload} "
                  f"failed: {failure.get('type')}: {failure.get('message')}",
                  file=sys.stderr)
    if result.failed_cells:
        return 1
    return 1 if any(outcome.errors for outcome in result.outcomes) else 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect, empty or integrity-check the persistent artifact store."""
    from repro.cache.store import DiskCache, cache_enabled, default_cache_dir
    if not cache_enabled():
        print("disk cache disabled (REPRO_DISK_CACHE=off)", file=sys.stderr)
        return 1
    store = DiskCache(default_cache_dir())
    if args.action == "stats":
        report = store.stats(scan=True)
    elif args.action == "clear":
        report = {"root": str(store.root), "removed": store.clear()}
    else:  # verify
        report = dict(store.verify(remove=not args.keep_corrupt),
                      root=str(store.root))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for key in sorted(report):
            print(f"{key}: {report[key]}")
    if args.action == "verify" and report.get("corrupt"):
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the profiling daemon (see :mod:`repro.service`)."""
    from repro.service.daemon import ServiceConfig, serve
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        cache_entries=args.cache_entries,
        cache_dir=args.cache_dir,
        warm_platforms=tuple(args.warm_platforms),
        warm_cpus=tuple(args.warm_cpus),
        warm_kernels=not args.no_warm_kernels,
        drain_timeout=args.drain_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    serve(config, announce=lambda address: print(
        f"repro serve listening on {address}", flush=True))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    paths = args.paths or [default_lint_root()]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        raise ValueError(f"no such file or directory: {', '.join(missing)}")
    violations = lint_paths(paths)
    if args.json:
        print(json.dumps([v.to_dict() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.format())
        checked = sum(1 for _ in iter_python_files(paths))
        print(f"checked {checked} file(s): {len(violations)} violation(s)")
    return 1 if violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMU profiling and hardware-agnostic roofline analysis "
                    "on modelled RISC-V (and x86) platforms.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    capabilities = subparsers.add_parser(
        "capabilities", help="print the Table-1 comparison")
    capabilities.add_argument("--json", action="store_true", help="emit JSON")
    capabilities.set_defaults(func=cmd_capabilities)

    platforms = subparsers.add_parser(
        "platforms", help="list modelled platforms (name, arch, board, harts)")
    platforms.add_argument("--json", action="store_true", help="emit JSON")
    platforms.set_defaults(func=cmd_platforms)

    subparsers.add_parser("workloads", help="list registered workloads") \
        .set_defaults(func=cmd_workloads)

    def add_platform(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("-p", "--platform", default="SpacemiT X60",
                         help="platform name (default: SpacemiT X60)")
        sub.add_argument("--no-vendor-driver", action="store_true",
                         help="model a stock kernel without vendor patches")

    def add_workload(sub: argparse.ArgumentParser, default: str) -> None:
        sub.add_argument("--workload", default=default,
                         help=f"registered workload name (default: {default}; "
                              "see 'repro workloads')")
        sub.add_argument("--scale", type=int, default=None,
                         help="work multiplier for synthetic workloads")
        sub.add_argument("-n", type=int, default=None,
                         help="problem size for kernel workloads")

    def add_cpus(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--cpus", type=int, default=None,
                         help="profile on an N-hart SMP machine (default 1)")
        sub.add_argument("-a", "--all-cpus", action="store_true",
                         help="system-wide: use every hart of the board")

    def add_server(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--server", default=None, metavar="URL",
                         help="send the request to a `repro serve` daemon "
                              "at URL instead of profiling in process "
                              "(same output, minus wall-clock timings)")
        sub.add_argument("--retries", type=int, default=2, metavar="N",
                         help="retry transient --server failures (429/5xx, "
                              "unreachable) up to N times with exponential "
                              "backoff, honoring Retry-After; 0 disables "
                              "(default 2)")
        sub.add_argument("--retry-deadline", type=float, default=30.0,
                         metavar="SECONDS",
                         help="give up once cumulative --server retry "
                              "backoff would exceed this budget "
                              "(default 30)")

    def add_trace(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--trace", default=None, metavar="PATH",
                         help="record this command's structured spans and "
                              "write them as Chrome trace-event JSON "
                              "(Perfetto-loadable; a .jsonl PATH writes "
                              "JSON-lines instead)")

    def add_dispatch(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--no-fast-dispatch", action="store_true",
                         help="run compiled kernels on the reference "
                              "interpreter instead of the predecoded "
                              "batch-retiring engine (bit-identical results, "
                              "slower; for differential runs)")
        sub.add_argument("--no-block-delta", action="store_true",
                         help="disable block-delta retirement caching "
                              "(bit-identical results, slower; for "
                              "differential runs)")
        sub.add_argument("--no-fast-cache", action="store_true",
                         help="disable the cache hierarchy's same-line "
                              "short-circuits (bit-identical results, "
                              "slower; for differential runs)")

    identify = subparsers.add_parser("identify", help="cpuid-based identification")
    add_platform(identify)
    identify.set_defaults(func=cmd_identify)

    stat = subparsers.add_parser("stat", help="counting-mode profile")
    add_platform(stat)
    add_workload(stat, "sqlite3-like")
    add_cpus(stat)
    add_dispatch(stat)
    stat.add_argument("--json", action="store_true", help="emit JSON")
    stat.add_argument("--timings", action="store_true",
                      help="print wall-clock phase timings "
                           "(compile/execute/analyses) to stderr")
    add_server(stat)
    add_trace(stat)
    stat.set_defaults(func=cmd_stat)

    record = subparsers.add_parser("record", help="sampling profile + hotspots")
    add_platform(record)
    add_workload(record, "sqlite3-like")
    add_cpus(record)
    add_dispatch(record)
    record.add_argument("--period", type=int, default=20_000)
    record.add_argument("--json", action="store_true", help="emit JSON")
    add_server(record)
    add_trace(record)
    record.set_defaults(func=cmd_record)

    flame = subparsers.add_parser("flamegraph", help="render a flame graph")
    add_platform(flame)
    add_workload(flame, "sqlite3-like")
    add_cpus(flame)
    add_dispatch(flame)
    flame.add_argument("--period", type=int, default=20_000)
    flame.add_argument("--metric", choices=["cycles", "instructions"],
                       default="cycles")
    flame.add_argument("--width", type=int, default=100)
    flame.add_argument("--output", help="write SVG to this path")
    flame.set_defaults(func=cmd_flamegraph)

    roofline = subparsers.add_parser("roofline", help="compiler-driven roofline")
    add_platform(roofline)
    add_workload(roofline, "matmul-tiled")
    roofline.add_argument("--no-vectorize", action="store_true")
    roofline.add_argument("--output", help="write SVG to this path")
    roofline.add_argument("--json", action="store_true", help="emit JSON")
    roofline.set_defaults(func=cmd_roofline)

    compare = subparsers.add_parser(
        "compare", help="one workload across platforms, side by side")
    compare.add_argument("--platforms", nargs="+",
                         default=["SpacemiT X60", "Intel Core i5-1135G7"],
                         help="two or more platform names; the first is the "
                              "flame-graph diff baseline")
    compare.add_argument("--no-vendor-driver", action="store_true",
                         help="model stock kernels without vendor patches")
    add_workload(compare, "sqlite3-like")
    compare.add_argument("--cpus", type=int, default=None,
                         help="profile each platform on an N-hart SMP machine")
    add_dispatch(compare)
    compare.add_argument("--period", type=int, default=20_000)
    compare.add_argument("--roofline", action="store_true",
                         help="also run the roofline flow (kernel workloads)")
    compare.add_argument("--workers", type=int, default=1,
                         help="fan per-platform runs out over N worker "
                              "processes (results are bit-identical to the "
                              "serial run, in platform order)")
    compare.add_argument("--timings", action="store_true",
                         help="print per-platform wall-clock phase timings "
                              "(compile/execute/analyses) to stderr")
    compare.add_argument("--json", action="store_true", help="emit JSON")
    add_server(compare)
    add_trace(compare)
    compare.set_defaults(func=cmd_compare)

    analyze = subparsers.add_parser(
        "analyze", help="static analysis report (block-delta certification, "
                        "address regions, race verdicts)")
    add_platform(analyze)
    add_workload(analyze, "stream-triad")
    analyze.add_argument("--all", action="store_true",
                         help="analyze every registered workload")
    analyze.add_argument("--cpus", type=int, default=None,
                         help="shard count for parallel-workload race "
                              "analysis (default 1)")
    analyze.add_argument("--json", action="store_true", help="emit JSON")
    add_server(analyze)
    add_trace(analyze)
    analyze.set_defaults(func=cmd_analyze)

    sweep = subparsers.add_parser(
        "sweep", help="cartesian profiling plan (platforms x workloads x "
                      "cpus x spec axes) through the persistent result "
                      "cache; repeated sweeps skip cached cells")
    sweep.add_argument("--platforms", nargs="+", default=None,
                       help="platform names (default: every modelled "
                            "platform)")
    sweep.add_argument("--workloads", nargs="+", default=None,
                       help="registered workload names (default: every "
                            "registered workload)")
    sweep.add_argument("--cpus", nargs="+", type=int, default=[1],
                       help="hart counts to sweep over (default: 1)")
    sweep.add_argument("--axis", action="append", metavar="KEY=V1,V2",
                       help="sweep a ProfileSpec field over values, e.g. "
                            "--axis enable_vectorizer=true,false "
                            "(repeatable; values parse as JSON, falling "
                            "back to strings)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes for cache-miss cells "
                            "(default: one per CPU)")
    sweep.add_argument("--out", default="BENCH_sweep.json",
                       help="trajectory file path "
                            "(default: BENCH_sweep.json)")
    sweep.add_argument("--bypass-cache", action="store_true",
                       help="execute every cell, refilling the cache, "
                            "without consulting it")
    sweep.add_argument("--resume", action="store_true",
                       help="skip cells an interrupted identical sweep "
                            "already journaled as complete (their results "
                            "are served from the cache); failed cells are "
                            "retried")
    sweep.add_argument("--json", action="store_true",
                       help="print the trajectory document instead of the "
                            "summary line")
    sweep.set_defaults(func=cmd_sweep)

    cache = subparsers.add_parser(
        "cache", help="inspect, empty or integrity-check the persistent "
                      "artifact store (REPRO_CACHE_DIR)")
    cache.add_argument("action", choices=["stats", "clear", "verify"],
                       help="stats: tallies and on-disk totals; clear: "
                            "remove every entry; verify: integrity-check "
                            "all entries (nonzero exit on corruption)")
    cache.add_argument("--keep-corrupt", action="store_true",
                       help="verify only: report corrupt entries without "
                            "removing them")
    cache.add_argument("--json", action="store_true", help="emit JSON")
    cache.set_defaults(func=cmd_cache)

    serve = subparsers.add_parser(
        "serve", help="profiling-as-a-service daemon: warm worker pools, "
                      "content-addressed result cache, backpressure")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="port to bind; 0 picks an ephemeral port "
                            "(default: 8787)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes; 0 executes inline in the "
                            "daemon (default: 2)")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="admitted-request bound before 429 responses "
                            "(default: 32)")
    serve.add_argument("--request-timeout", type=float, default=300.0,
                       help="per-request execution timeout in seconds "
                            "(default: 300)")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="result-cache entry bound (default: 256)")
    serve.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="back the result cache with a persistent disk "
                            "store at PATH, so a restarted daemon serves "
                            "previous results as hits (default: memory "
                            "only)")
    serve.add_argument("--warm-platforms", nargs="+",
                       default=["SpacemiT X60"],
                       help="platforms whose machines each worker pre-builds")
    serve.add_argument("--warm-cpus", nargs="+", type=int, default=[1],
                       help="hart counts to pre-build machines for")
    serve.add_argument("--no-warm-kernels", action="store_true",
                       help="skip precompiling registry kernels at worker "
                            "spawn")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="graceful-drain budget on SIGTERM/SIGINT: "
                            "seconds in-flight requests get to finish "
                            "before a clean 503 (default: 10)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="worker crashes within the breaker window that "
                            "switch the daemon to degraded cache-only mode "
                            "(default: 3)")
    serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                       help="seconds a tripped crash-loop breaker waits "
                            "before probing with one request (default: 5)")
    add_trace(serve)
    serve.set_defaults(func=cmd_serve)

    metrics = subparsers.add_parser(
        "metrics", help="dump the unified telemetry registry after one "
                        "local counting run, or fetch a daemon's /metrics")
    add_platform(metrics)
    add_workload(metrics, "matmul-tiled")
    add_cpus(metrics)
    add_dispatch(metrics)
    metrics.add_argument("--format", choices=["json", "prometheus"],
                         default="json",
                         help="output format (default: json)")
    add_server(metrics)
    metrics.set_defaults(func=cmd_metrics)

    lint = subparsers.add_parser(
        "lint", help="determinism linter (hash/id, set iteration, "
                     "wall-clock, unseeded random)")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", action="store_true", help="emit JSON")
    lint.set_defaults(func=cmd_lint)
    return parser


def _run_traced(args: argparse.Namespace) -> int:
    """Run one subcommand with the span tracer on, then write the trace.

    The trace is written even when the command fails -- the spans up to the
    failure are exactly what one wants to look at then.
    """
    from repro import telemetry
    from repro.telemetry.trace import write_trace
    telemetry.enable()
    try:
        with telemetry.span("cli", cat="cli", command=args.command):
            return args.func(args)
    finally:
        telemetry.disable()
        write_trace(args.trace, telemetry.TRACER.drain())
        print(f"wrote trace to {args.trace}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "trace", None):
            return _run_traced(args)
        return args.func(args)
    except (KeyError, ValueError, SamplingNotSupportedError,
            PerfEventOpenError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
