"""Command-line interface: ``miniperf <subcommand>``.

Subcommands mirror the tool's modes on the modelled platforms:

* ``capabilities``            -- print the Table-1 platform comparison;
* ``identify --platform X``   -- show what cpuid-based identification finds;
* ``stat --platform X``       -- count events for the sqlite3-like workload;
* ``record --platform X``     -- sample it and print the hotspot table;
* ``flamegraph --platform X`` -- same, rendered as a flame graph (text/SVG);
* ``roofline --platform X``   -- run the compiler-driven roofline for matmul.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cpu.events import HwEvent
from repro.flamegraph import build_flame_graph, render_svg, render_text
from repro.miniperf import Miniperf
from repro.platforms import Machine, all_platforms, platform_by_name
from repro.pmu.vendors import all_capabilities
from repro.roofline.plot import render_ascii_roofline, write_svg_roofline
from repro.roofline.runner import RooflineRunner
from repro.toolchain.workflow import AnalysisWorkflow
from repro.workloads import matmul_args_builder, MATMUL_TILED_SOURCE
from repro.workloads.sqlite3_like import instruction_factor_for, sqlite3_like_workload


def _capabilities_table() -> str:
    capabilities = all_capabilities()
    riscv_cores = ["SiFive U74", "T-Head C910", "SpacemiT X60"]
    rows = [capabilities[core].as_row() for core in riscv_cores]
    keys = ["Core", "Out-of-Order", "RVV version",
            "Overflow interrupt support", "Upstream Linux support"]
    widths = {k: max(len(k), max(len(str(r[k])) for r in rows)) for k in keys}
    lines = ["  ".join(k.ljust(widths[k]) for k in keys)]
    lines.append("  ".join("-" * widths[k] for k in keys))
    for row in rows:
        lines.append("  ".join(str(row[k]).ljust(widths[k]) for k in keys))
    return "\n".join(lines)


def cmd_capabilities(_args: argparse.Namespace) -> int:
    print("Comparison of available RISC-V hardware capabilities (Table 1):")
    print(_capabilities_table())
    return 0


def cmd_identify(args: argparse.Namespace) -> int:
    machine = Machine(platform_by_name(args.platform))
    print(Miniperf(machine).describe())
    return 0


def _build_workflow(args: argparse.Namespace) -> AnalysisWorkflow:
    descriptor = platform_by_name(args.platform)
    return AnalysisWorkflow(descriptor, vendor_driver=not args.no_vendor_driver)


def cmd_stat(args: argparse.Namespace) -> int:
    workflow = _build_workflow(args)
    workload = sqlite3_like_workload(scale=args.scale)
    task = workflow.machine.create_task(workload.name)
    from repro.workloads.synthetic import TraceExecutor
    executor = TraceExecutor(
        workflow.machine, task,
        instruction_factor=instruction_factor_for(workflow.descriptor.arch))
    result = workflow.miniperf.stat(lambda: executor.run(workload), task=task)
    print(result.format())
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    workflow = _build_workflow(args)
    workload = sqlite3_like_workload(scale=args.scale)
    report = workflow.profile_synthetic(
        workload, sample_period=args.period,
        instruction_factor=instruction_factor_for(workflow.descriptor.arch))
    print(report.recording.describe())
    print()
    print(report.hotspots.format())
    return 0


def cmd_flamegraph(args: argparse.Namespace) -> int:
    workflow = _build_workflow(args)
    workload = sqlite3_like_workload(scale=args.scale)
    report = workflow.profile_synthetic(
        workload, sample_period=args.period,
        instruction_factor=instruction_factor_for(workflow.descriptor.arch))
    flame = (report.flame_instructions if args.metric == "instructions"
             else report.flame_cycles)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_svg(flame, title=f"{workflow.machine.name} "
                                                 f"({args.metric})"))
        print(f"wrote {args.output}")
    else:
        print(render_text(flame, width=args.width))
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    descriptor = platform_by_name(args.platform)
    runner = RooflineRunner(descriptor, enable_vectorizer=not args.no_vectorize)
    result = runner.run_source(MATMUL_TILED_SOURCE, "matmul_tiled",
                               matmul_args_builder(args.n), filename="matmul.c")
    model = result.model()
    print(render_ascii_roofline(model))
    print()
    print(f"kernel: {result.kernel_gflops:.2f} GFLOP/s at "
          f"AI {result.kernel_arithmetic_intensity:.3f} FLOP/byte")
    if args.output:
        write_svg_roofline(model, args.output)
        print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="miniperf",
        description="PMU profiling and hardware-agnostic roofline analysis "
                    "on modelled RISC-V (and x86) platforms.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("capabilities", help="print the Table-1 comparison") \
        .set_defaults(func=cmd_capabilities)

    def add_platform(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--platform", default="SpacemiT X60",
                         help="platform name (default: SpacemiT X60)")
        sub.add_argument("--no-vendor-driver", action="store_true",
                         help="model a stock kernel without vendor patches")

    identify = subparsers.add_parser("identify", help="cpuid-based identification")
    add_platform(identify)
    identify.set_defaults(func=cmd_identify)

    stat = subparsers.add_parser("stat", help="counting-mode profile")
    add_platform(stat)
    stat.add_argument("--scale", type=int, default=1)
    stat.set_defaults(func=cmd_stat)

    record = subparsers.add_parser("record", help="sampling profile + hotspots")
    add_platform(record)
    record.add_argument("--scale", type=int, default=1)
    record.add_argument("--period", type=int, default=20_000)
    record.set_defaults(func=cmd_record)

    flame = subparsers.add_parser("flamegraph", help="render a flame graph")
    add_platform(flame)
    flame.add_argument("--scale", type=int, default=1)
    flame.add_argument("--period", type=int, default=20_000)
    flame.add_argument("--metric", choices=["cycles", "instructions"],
                       default="cycles")
    flame.add_argument("--width", type=int, default=100)
    flame.add_argument("--output", help="write SVG to this path")
    flame.set_defaults(func=cmd_flamegraph)

    roofline = subparsers.add_parser("roofline", help="compiler-driven roofline")
    add_platform(roofline)
    roofline.add_argument("-n", type=int, default=32, help="matrix dimension")
    roofline.add_argument("--no-vectorize", action="store_true")
    roofline.add_argument("--output", help="write SVG to this path")
    roofline.set_defaults(func=cmd_roofline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
