"""Compatibility shim over the unified session API (:mod:`repro.api`).

This module used to *be* the unified workflow; the profiling-session
redesign moved that role to :class:`repro.api.Session`, which profiles any
registered workload (synthetic trace replays *and* compiled kernels) under a
declarative :class:`repro.api.ProfileSpec` and supports multi-platform
comparison runs.  New code should use it directly::

    from repro.api import ProfileSpec, Session
    run = Session("SpacemiT X60").run("sqlite3-like", ProfileSpec())

:class:`AnalysisWorkflow` and :class:`AnalysisReport` are kept as thin
wrappers so existing callers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.api import ProfileSpec, Session, SyntheticTraceWorkload, CompiledKernelWorkload
from repro.flamegraph import FlameNode, render_text
from repro.miniperf.record import RecordingResult
from repro.miniperf.report import HotspotReport
from repro.platforms.descriptors import PlatformDescriptor
from repro.roofline.plot import render_ascii_roofline
from repro.roofline.runner import KernelRooflineResult
from repro.workloads.synthetic import SyntheticWorkload


@dataclass
class AnalysisReport:
    """Everything one workflow run produced (legacy shape of :class:`repro.api.Run`)."""

    platform: str
    cpu_description: str = ""
    recording: Optional[RecordingResult] = None
    hotspots: Optional[HotspotReport] = None
    flame_cycles: Optional[FlameNode] = None
    flame_instructions: Optional[FlameNode] = None
    roofline: Optional[KernelRooflineResult] = None

    def format(self) -> str:
        sections: List[str] = [self.cpu_description]
        if self.recording is not None:
            sections.append(self.recording.describe())
        if self.hotspots is not None:
            sections.append(self.hotspots.format())
        if self.flame_cycles is not None:
            sections.append("Flame graph (cycles):")
            sections.append(render_text(self.flame_cycles, width=80))
        if self.roofline is not None:
            sections.append(render_ascii_roofline(self.roofline.model()))
        return "\n\n".join(s for s in sections if s)


class AnalysisWorkflow:
    """Drives miniperf + roofline analysis for one platform (legacy facade)."""

    def __init__(self, descriptor: PlatformDescriptor, vendor_driver: bool = True):
        self.descriptor = descriptor
        self.session = Session(descriptor, vendor_driver=vendor_driver)
        self.machine = self.session.machine()
        self.miniperf = self.session.miniperf()

    # -- PMU-based flow -----------------------------------------------------------------

    def profile_synthetic(self, workload: SyntheticWorkload, invocations: int = 1,
                          sample_period: int = 20_000, seed: int = 42,
                          instruction_factor: Optional[float] = None) -> AnalysisReport:
        """Record a synthetic workload and build hotspots + flame graphs."""
        run = self.session.run(
            SyntheticTraceWorkload(tree=workload,
                                   instruction_factor=instruction_factor,
                                   auto_instruction_factor=False),
            ProfileSpec(sample_period=sample_period, seed=seed,
                        invocations=invocations,
                        analyses=("hotspots", "flamegraph")),
        )
        if "sampling" in run.failures:
            # The session API degrades gracefully; the legacy facade raised.
            raise run.failures["sampling"]
        return AnalysisReport(
            platform=run.platform,
            cpu_description=run.cpu_description,
            recording=run.recording,
            hotspots=run.hotspots,
            flame_cycles=run.flame_cycles,
            flame_instructions=run.flame_instructions,
        )

    # -- compiler-based flow -------------------------------------------------------------------

    def roofline_kernel(self, source: str, function: str, args_builder,
                        repeats: int = 1,
                        enable_vectorizer: bool = True) -> KernelRooflineResult:
        """Run the two-phase compiler-driven roofline flow for one kernel."""
        run = self.session.run(
            CompiledKernelWorkload(name=function, source=source,
                                   function=function, args_builder=args_builder),
            ProfileSpec(analyses=("roofline",), repeats=repeats,
                        enable_vectorizer=enable_vectorizer),
        )
        return run.roofline

    def full_report(self, workload: SyntheticWorkload, kernel_source: str,
                    kernel_function: str, kernel_args_builder,
                    invocations: int = 1) -> AnalysisReport:
        """The complete unified workflow: PMU profiling + roofline analysis."""
        report = self.profile_synthetic(workload, invocations=invocations)
        report.roofline = self.roofline_kernel(kernel_source, kernel_function,
                                               kernel_args_builder)
        return report
