"""The unified analysis workflow (the paper's third contribution).

One object orchestrates everything the paper's open-source toolchain does:
identify the CPU, profile a workload with the PMU workaround applied where
needed, build hotspot tables and flame graphs from the samples, and run the
compiler-driven roofline flow for compiled kernels -- producing a single
report combining PMU-derived and compiler-derived views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cpu.events import HwEvent
from repro.flamegraph import FlameNode, build_flame_graph, render_text
from repro.miniperf import Miniperf
from repro.miniperf.record import RecordingResult
from repro.miniperf.report import HotspotReport
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.roofline.model import RooflineModel
from repro.roofline.plot import render_ascii_roofline
from repro.roofline.runner import KernelRooflineResult, RooflineRunner
from repro.workloads.synthetic import SyntheticWorkload, TraceExecutor


@dataclass
class AnalysisReport:
    """Everything one workflow run produced."""

    platform: str
    cpu_description: str = ""
    recording: Optional[RecordingResult] = None
    hotspots: Optional[HotspotReport] = None
    flame_cycles: Optional[FlameNode] = None
    flame_instructions: Optional[FlameNode] = None
    roofline: Optional[KernelRooflineResult] = None

    def format(self) -> str:
        sections: List[str] = [self.cpu_description]
        if self.recording is not None:
            sections.append(self.recording.describe())
        if self.hotspots is not None:
            sections.append(self.hotspots.format())
        if self.flame_cycles is not None:
            sections.append("Flame graph (cycles):")
            sections.append(render_text(self.flame_cycles, width=80))
        if self.roofline is not None:
            sections.append(render_ascii_roofline(self.roofline.model()))
        return "\n\n".join(s for s in sections if s)


class AnalysisWorkflow:
    """Drives miniperf + roofline analysis for one platform."""

    def __init__(self, descriptor: PlatformDescriptor, vendor_driver: bool = True):
        self.descriptor = descriptor
        self.machine = Machine(descriptor, vendor_driver=vendor_driver)
        self.miniperf = Miniperf(self.machine)

    # -- PMU-based flow -----------------------------------------------------------------

    def profile_synthetic(self, workload: SyntheticWorkload, invocations: int = 1,
                          sample_period: int = 20_000, seed: int = 42,
                          instruction_factor: Optional[float] = None) -> AnalysisReport:
        """Record a synthetic workload and build hotspots + flame graphs."""
        task = self.machine.create_task(workload.name)
        executor = TraceExecutor(self.machine, task, seed=seed,
                                 instruction_factor=instruction_factor)

        def run() -> None:
            executor.run(workload, invocations=invocations)

        recording = self.miniperf.record(
            run, task=task,
            events=(HwEvent.CYCLES, HwEvent.INSTRUCTIONS),
            sample_period=sample_period,
        )
        report = AnalysisReport(
            platform=self.machine.name,
            cpu_description=self.miniperf.describe(),
            recording=recording,
            hotspots=self.miniperf.hotspots(recording),
            flame_cycles=build_flame_graph(recording.samples, weight="samples"),
            flame_instructions=build_flame_graph(recording.samples,
                                                 weight="instructions"),
        )
        return report

    # -- compiler-based flow -------------------------------------------------------------------

    def roofline_kernel(self, source: str, function: str, args_builder,
                        repeats: int = 1,
                        enable_vectorizer: bool = True) -> KernelRooflineResult:
        """Run the two-phase compiler-driven roofline flow for one kernel."""
        runner = RooflineRunner(self.descriptor,
                                enable_vectorizer=enable_vectorizer)
        return runner.run_source(source, function, args_builder, repeats=repeats)

    def full_report(self, workload: SyntheticWorkload, kernel_source: str,
                    kernel_function: str, kernel_args_builder,
                    invocations: int = 1) -> AnalysisReport:
        """The complete unified workflow: PMU profiling + roofline analysis."""
        report = self.profile_synthetic(workload, invocations=invocations)
        report.roofline = self.roofline_kernel(kernel_source, kernel_function,
                                               kernel_args_builder)
        return report
