"""miniperf: the paper's profiling tool.

miniperf wraps the ``perf_event_open`` interface with three ingredients the
stock ``perf`` tool lacks on emerging RISC-V platforms:

* **CPU identification by CSR** (:mod:`repro.miniperf.cpuid`) -- hardware is
  identified from ``mvendorid``/``marchid``/``mimpid`` instead of perf event
  discovery, so quirk handling does not depend on kernel event tables.
* **Automatic group/leader planning** (:mod:`repro.miniperf.groups`) -- on
  parts whose cycle/instret counters cannot raise overflow interrupts (the
  SpacemiT X60), a sampling-capable vendor event is chosen as group leader
  and the requested events ride along in each sample.
* **Multiplexing correction** (:mod:`repro.miniperf.correction`) -- counts
  are rescaled by ``time_enabled/time_running`` so multiplexed counters stay
  comparable.

On top of that sit ``stat`` (counting mode), ``record`` (sampling mode),
``report`` (hotspot tables, the source of the paper's Table 2) and the
flame-graph and roofline integrations used by the evaluation.
"""

from repro.miniperf.cpuid import CpuInfo, identify_machine, KNOWN_CPUS
from repro.miniperf.groups import GroupPlan, plan_sampling_group
from repro.miniperf.stat import StatResult, miniperf_stat
from repro.miniperf.record import RecordingResult, miniperf_record
from repro.miniperf.report import HotspotRow, HotspotReport, build_hotspot_report
from repro.miniperf.correction import scale_multiplexed
from repro.miniperf.tool import Miniperf

__all__ = [
    "CpuInfo",
    "identify_machine",
    "KNOWN_CPUS",
    "GroupPlan",
    "plan_sampling_group",
    "StatResult",
    "miniperf_stat",
    "RecordingResult",
    "miniperf_record",
    "HotspotRow",
    "HotspotReport",
    "build_hotspot_report",
    "scale_multiplexed",
    "Miniperf",
]
