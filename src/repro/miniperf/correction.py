"""PMU data correction.

Two corrections the paper's toolchain applies before reporting:

* **multiplex scaling** -- when more events are opened than hardware
  counters exist, each event only counts for ``time_running`` out of
  ``time_enabled``; the observed count is scaled by the ratio, exactly like
  ``perf stat`` does (the trailing ``(xx.x%)`` column).
* **group-readout reconciliation** -- on the X60 the sampling leader counts
  ``u_mode_cycle`` while the member counts ``cycles``; for user-space-only
  workloads the two should agree, and a large divergence flags samples taken
  while the kernel was running (which ``exclude_kernel`` could not filter on
  this part).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kernel.perf_event import PerfReadValue
from repro.kernel.ring_buffer import SampleRecord


@dataclass
class CorrectedCount:
    """A count after multiplex correction."""

    event: str
    raw: int
    scaled: float
    time_enabled: int
    time_running: int

    @property
    def multiplex_fraction(self) -> float:
        """Fraction of enabled time the event was actually counting."""
        if self.time_enabled == 0:
            return 1.0
        return self.time_running / self.time_enabled


def scale_multiplexed(event_name: str, read: PerfReadValue) -> CorrectedCount:
    """Apply the standard ``time_enabled / time_running`` scaling."""
    if read.time_running == 0:
        scaled = 0.0
    else:
        scaled = read.value * (read.time_enabled / read.time_running)
    return CorrectedCount(
        event=event_name,
        raw=read.value,
        scaled=scaled,
        time_enabled=read.time_enabled,
        time_running=read.time_running,
    )


def reconcile_group_samples(samples: List[SampleRecord],
                            leader_event: str,
                            proxy_for: str = "cycles",
                            tolerance: float = 0.05) -> Dict[str, float]:
    """Check how well the workaround leader tracks the event it proxies.

    Returns summary statistics: the mean relative difference between the
    leader's count and the proxied event's count across samples, and the
    fraction of samples where the divergence exceeds *tolerance*.
    """
    diffs: List[float] = []
    for sample in samples:
        leader = sample.group_values.get(leader_event)
        proxied = sample.group_values.get(proxy_for)
        # A count of zero is a legitimate reading (e.g. a sample taken before
        # the proxied counter ticked); only a *missing* value drops the sample.
        if leader is None or proxied is None:
            continue
        denominator = max(leader, proxied)
        diffs.append(abs(leader - proxied) / denominator if denominator else 0.0)
    if not diffs:
        return {"samples": 0, "mean_divergence": 0.0, "outlier_fraction": 0.0}
    outliers = sum(1 for d in diffs if d > tolerance)
    return {
        "samples": len(diffs),
        "mean_divergence": sum(diffs) / len(diffs),
        "outlier_fraction": outliers / len(diffs),
    }
