"""Sampling-group planning: the heart of the X60 workaround.

Given the events the user wants sampled (typically cycles and instructions,
for IPC) and the identified CPU, decide which event leads the perf group and
which events ride along as members.  On healthy PMUs the first requested
event leads; on parts with the X60 defect a sampling-capable vendor event
(``u_mode_cycle``) leads and *all* requested events become members, read out
at every leader overflow via ``PERF_SAMPLE_READ`` + ``PERF_FORMAT_GROUP``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cpu.events import HwEvent
from repro.kernel.perf_event import PerfEventAttr, ReadFormat, SampleType
from repro.miniperf.cpuid import CpuInfo


class SamplingNotSupportedError(Exception):
    """Raised when no sampling plan exists for the identified CPU."""


@dataclass
class GroupPlan:
    """A planned perf event group."""

    leader_event: HwEvent
    member_events: List[HwEvent]
    sample_period: int
    used_workaround: bool
    cpu: CpuInfo

    def leader_attr(self, callchain: bool = True) -> PerfEventAttr:
        sample_type = {SampleType.IP, SampleType.TID, SampleType.TIME,
                       SampleType.PERIOD, SampleType.READ}
        if callchain:
            sample_type.add(SampleType.CALLCHAIN)
        return PerfEventAttr(
            event=self.leader_event,
            sample_period=self.sample_period,
            sample_type=frozenset(sample_type),
            read_format=frozenset({ReadFormat.GROUP,
                                   ReadFormat.TOTAL_TIME_ENABLED,
                                   ReadFormat.TOTAL_TIME_RUNNING}),
        )

    def member_attrs(self) -> List[PerfEventAttr]:
        return [
            PerfEventAttr(
                event=event,
                read_format=frozenset({ReadFormat.GROUP}),
            )
            for event in self.member_events
        ]

    def all_events(self) -> List[HwEvent]:
        return [self.leader_event] + list(self.member_events)

    def describe(self) -> str:
        members = ", ".join(e.value for e in self.member_events) or "<none>"
        strategy = "group-leader workaround" if self.used_workaround else "direct"
        return (
            f"{self.cpu.core}: leader={self.leader_event.value} "
            f"(period={self.sample_period}), members=[{members}], strategy={strategy}"
        )


def plan_sampling_group(cpu: CpuInfo, events: Sequence[HwEvent],
                        sample_period: int = 100_000) -> GroupPlan:
    """Plan a sampling group for *events* on *cpu*.

    Standard ``perf`` behaviour would be to sample the first event directly;
    miniperf checks the quirk database first.  Three outcomes:

    * the CPU samples the requested events directly -> the first requested
      event leads;
    * the CPU needs the workaround -> the vendor leader event is added and
      leads; the requested events all become members;
    * the CPU cannot sample at all (SiFive U74) -> raise.
    """
    if sample_period <= 0:
        raise ValueError("sample_period must be positive")
    requested = list(events)
    if not requested:
        requested = [HwEvent.CYCLES, HwEvent.INSTRUCTIONS]

    if not cpu.sampling_possible:
        raise SamplingNotSupportedError(
            f"{cpu.core}: no counter can raise overflow interrupts; "
            "sampling-based profiling is not possible on this part"
        )

    directly_sampleable = [e for e in requested if e in cpu.direct_sampling_events]
    if directly_sampleable and not cpu.needs_group_leader_workaround:
        leader = directly_sampleable[0]
        members = [e for e in requested if e is not leader]
        return GroupPlan(
            leader_event=leader,
            member_events=members,
            sample_period=sample_period,
            used_workaround=False,
            cpu=cpu,
        )

    leader = cpu.workaround_leader_event
    if leader is None:
        raise SamplingNotSupportedError(
            f"{cpu.core}: requested events cannot be sampled and no workaround "
            "leader event is known"
        )
    members = [e for e in requested if e is not leader]
    return GroupPlan(
        leader_event=leader,
        member_events=members,
        sample_period=sample_period,
        used_workaround=True,
        cpu=cpu,
    )
