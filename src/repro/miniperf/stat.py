"""``miniperf stat``: counting-mode measurement of a workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cpu.events import HwEvent
from repro.kernel.perf_event import PerfEventAttr, PerfEventOpenError, ReadFormat
from repro.kernel.task import Task
from repro.miniperf.correction import CorrectedCount, scale_multiplexed
from repro.platforms.machine import Machine
from repro.telemetry import span as _span


@dataclass
class StatResult:
    """Counts collected by one ``miniperf stat`` run."""

    platform: str
    counts: Dict[HwEvent, CorrectedCount] = field(default_factory=dict)
    unsupported: List[HwEvent] = field(default_factory=list)

    def count(self, event: HwEvent) -> float:
        corrected = self.counts.get(event)
        return corrected.scaled if corrected else 0.0

    @property
    def ipc(self) -> float:
        cycles = self.count(HwEvent.CYCLES)
        instructions = self.count(HwEvent.INSTRUCTIONS)
        return instructions / cycles if cycles else 0.0

    def as_table(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for event, corrected in self.counts.items():
            rows.append({
                "event": event.value,
                "count": int(corrected.scaled),
                "raw": corrected.raw,
                "running": f"{corrected.multiplex_fraction * 100:.1f}%",
            })
        return rows

    def to_dict(self) -> Dict[str, object]:
        """Machine-consumable counts (``--json`` on the CLI)."""
        return {
            "platform": self.platform,
            "counts": self.as_table(),
            "ipc": round(self.ipc, 4),
            "unsupported": [event.value for event in self.unsupported],
        }

    def format(self) -> str:
        lines = [f"Performance counter stats for {self.platform}:", ""]
        for row in self.as_table():
            lines.append(f"  {row['count']:>16,}  {row['event']:<24} ({row['running']})")
        if self.counts.get(HwEvent.CYCLES) and self.counts.get(HwEvent.INSTRUCTIONS):
            lines.append("")
            lines.append(f"  IPC: {self.ipc:.2f}")
        for event in self.unsupported:
            lines.append(f"  <not supported>  {event.value}")
        return "\n".join(lines)


DEFAULT_STAT_EVENTS = (
    HwEvent.CYCLES,
    HwEvent.INSTRUCTIONS,
    HwEvent.CACHE_REFERENCES,
    HwEvent.CACHE_MISSES,
    HwEvent.BRANCH_INSTRUCTIONS,
    HwEvent.BRANCH_MISSES,
)


def miniperf_stat(machine: Machine, task: Task, workload: Callable[[], None],
                  events: Sequence[HwEvent] = DEFAULT_STAT_EVENTS,
                  rotate_every: int = 0) -> StatResult:
    """Count *events* while running *workload* on *machine*.

    Events the platform cannot count are reported as unsupported instead of
    failing the whole run (matching ``perf stat`` behaviour).  When more
    events are requested than the PMU has counters, callers can ask for
    periodic rotation by passing ``rotate_every`` (in workload "chunks");
    since the workload here is a single callable, rotation is performed once
    halfway through only if the workload itself calls ``machine.perf.rotate``.
    """
    result = StatResult(platform=machine.name)
    fds: Dict[HwEvent, int] = {}
    for event in events:
        try:
            fds[event] = machine.perf.perf_event_open(
                PerfEventAttr(
                    event=event,
                    read_format=frozenset({ReadFormat.TOTAL_TIME_ENABLED,
                                           ReadFormat.TOTAL_TIME_RUNNING}),
                ),
                task,
            )
        except PerfEventOpenError:
            result.unsupported.append(event)

    for fd in fds.values():
        machine.perf.enable(fd)
    workload()
    for fd in fds.values():
        machine.perf.disable(fd)

    with _span("analyses", analysis="stat", events=len(fds)):
        for event, fd in fds.items():
            read = machine.perf.read(fd)
            result.counts[event] = scale_multiplexed(event.value, read)
            machine.perf.close(fd)
    return result
