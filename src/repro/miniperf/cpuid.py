"""CPU identification by identification registers.

Section 3.3 of the paper: "rather than utilizing standard perf event
discovery mechanisms, [miniperf] relies solely on CPU identification
registers. This direct hardware identification enables more robust management
of supported features and platform-specific workarounds."

The table below is miniperf's quirk database, keyed by ``mvendorid``.  Each
entry records whether the part needs the group-leader sampling workaround and
which vendor event can serve as the sampling leader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cpu.events import HwEvent
from repro.isa.csr import CpuIdentity
from repro.platforms.machine import Machine
from repro.pmu.vendors import (
    INTEL_SYNTHETIC_VENDORID,
    SIFIVE_MVENDORID,
    SPACEMIT_MVENDORID,
    THEAD_MVENDORID,
)


@dataclass(frozen=True)
class CpuInfo:
    """What miniperf knows about one CPU after identification."""

    vendor: str
    core: str
    identity: CpuIdentity
    #: Events that can be sampled directly (leader themselves).
    direct_sampling_events: Tuple[HwEvent, ...]
    #: True when cycles/instructions cannot be sampled directly and a vendor
    #: event must lead the group (the X60 workaround).
    needs_group_leader_workaround: bool
    #: The vendor event to use as sampling group leader when the workaround
    #: applies (None when sampling is impossible altogether).
    workaround_leader_event: Optional[HwEvent] = None
    notes: str = ""

    @property
    def sampling_possible(self) -> bool:
        return bool(self.direct_sampling_events) or (
            self.needs_group_leader_workaround
            and self.workaround_leader_event is not None
        )


#: miniperf's built-in quirk database, keyed by mvendorid.
KNOWN_CPUS: Dict[int, CpuInfo] = {
    SIFIVE_MVENDORID: CpuInfo(
        vendor="SiFive",
        core="SiFive U74",
        identity=CpuIdentity(SIFIVE_MVENDORID, 0, 0),
        direct_sampling_events=(),
        needs_group_leader_workaround=False,
        workaround_leader_event=None,
        notes="No overflow interrupts at all; only counting mode works.",
    ),
    THEAD_MVENDORID: CpuInfo(
        vendor="T-Head",
        core="T-Head C910",
        identity=CpuIdentity(THEAD_MVENDORID, 0, 0),
        direct_sampling_events=(HwEvent.CYCLES, HwEvent.INSTRUCTIONS),
        needs_group_leader_workaround=False,
        notes="Full sampling support, but requires the vendor kernel.",
    ),
    SPACEMIT_MVENDORID: CpuInfo(
        vendor="SpacemiT",
        core="SpacemiT X60",
        identity=CpuIdentity(SPACEMIT_MVENDORID, 0, 0),
        direct_sampling_events=(),
        needs_group_leader_workaround=True,
        workaround_leader_event=HwEvent.U_MODE_CYCLE,
        notes=(
            "mcycle/minstret cannot raise overflow interrupts; u/s/m_mode_cycle "
            "can, so one of them leads the sampling group."
        ),
    ),
    INTEL_SYNTHETIC_VENDORID: CpuInfo(
        vendor="Intel",
        core="Intel Core i5-1135G7",
        identity=CpuIdentity(INTEL_SYNTHETIC_VENDORID, 0, 0),
        direct_sampling_events=(HwEvent.CYCLES, HwEvent.INSTRUCTIONS),
        needs_group_leader_workaround=False,
        notes="Mature PMU; everything samples directly.",
    ),
}


class UnknownCpuError(Exception):
    """Raised when the identification registers match no database entry."""


def identify(identity: CpuIdentity) -> CpuInfo:
    """Identify a CPU from its identification-register values."""
    info = KNOWN_CPUS.get(identity.mvendorid)
    if info is None:
        raise UnknownCpuError(
            f"mvendorid {identity.mvendorid:#x} is not in miniperf's database; "
            "falling back to perf event discovery is exactly what miniperf avoids"
        )
    # Return an entry carrying the *actual* identity values read from the hart.
    return CpuInfo(
        vendor=info.vendor,
        core=info.core,
        identity=identity,
        direct_sampling_events=info.direct_sampling_events,
        needs_group_leader_workaround=info.needs_group_leader_workaround,
        workaround_leader_event=info.workaround_leader_event,
        notes=info.notes,
    )


def identify_machine(machine: Machine) -> CpuInfo:
    """Identify the CPU of a machine model.

    On real hardware this information reaches user space through
    ``/proc/cpuinfo`` (the kernel reads the CSRs via SBI at boot); the model
    short-circuits that plumbing and reads the same identity values.
    """
    return identify(machine.descriptor.identity)
