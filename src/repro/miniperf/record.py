"""``miniperf record``: sampling-mode profiling of a workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cpu.events import HwEvent
from repro.kernel.perf_event import PerfEventOpenError
from repro.kernel.ring_buffer import SampleRecord
from repro.kernel.task import Task
from repro.miniperf.cpuid import CpuInfo, identify_machine
from repro.miniperf.groups import GroupPlan, plan_sampling_group
from repro.platforms.machine import Machine


@dataclass
class RecordingResult:
    """Samples collected by one ``miniperf record`` run."""

    platform: str
    plan: GroupPlan
    samples: List[SampleRecord] = field(default_factory=list)
    lost: int = 0
    #: Final (non-sampled) readout of every group member at disable time.
    final_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def sample_count(self) -> int:
        return len(self.samples)

    def total(self, event: HwEvent) -> int:
        return self.final_counts.get(event.value, 0)

    @property
    def overall_ipc(self) -> float:
        cycles = self.total(HwEvent.CYCLES)
        instructions = self.total(HwEvent.INSTRUCTIONS)
        return instructions / cycles if cycles else 0.0

    def describe(self) -> str:
        return (
            f"{self.platform}: {self.sample_count} samples "
            f"({self.lost} lost), plan: {self.plan.describe()}"
        )

    def to_dict(self, include_samples: bool = False) -> Dict[str, object]:
        """Machine-consumable summary (``--json`` on the CLI).

        Per-sample records are large; they are included only on request, as
        folded stacks plus the per-sample group readouts.
        """
        payload: Dict[str, object] = {
            "platform": self.platform,
            "sample_count": self.sample_count,
            "lost": self.lost,
            "overall_ipc": round(self.overall_ipc, 4),
            "final_counts": dict(self.final_counts),
            "plan": {
                "leader": self.plan.leader_event.value,
                "members": [e.value for e in self.plan.member_events],
                "sample_period": self.plan.sample_period,
                "used_workaround": self.plan.used_workaround,
            },
        }
        if include_samples:
            payload["samples"] = [
                {
                    "ip": sample.ip,
                    "time": sample.time,
                    "callchain": list(sample.callchain),
                    "group_values": dict(sample.group_values),
                }
                for sample in self.samples
            ]
        return payload


def miniperf_record(machine: Machine, task: Task, workload: Callable[[], None],
                    events: Sequence[HwEvent] = (HwEvent.CYCLES, HwEvent.INSTRUCTIONS),
                    sample_period: int = 50_000,
                    callchain: bool = True,
                    cpu: Optional[CpuInfo] = None) -> RecordingResult:
    """Profile *workload* by sampling, applying the platform workaround if needed.

    This is the code path the paper's Section 3.3 describes: the CPU is
    identified from its identification registers, a sampling group is planned
    (with the vendor leader event on the X60), the group is opened and
    enabled, the workload runs, and the mmap ring buffer is drained into a
    list of samples.
    """
    cpu = cpu or identify_machine(machine)
    plan = plan_sampling_group(cpu, events, sample_period)

    leader_fd = machine.perf.perf_event_open(plan.leader_attr(callchain), task)
    member_fds: Dict[HwEvent, int] = {}
    for event, attr in zip(plan.member_events, plan.member_attrs()):
        try:
            member_fds[event] = machine.perf.perf_event_open(attr, task,
                                                             group_fd=leader_fd)
        except PerfEventOpenError:
            # A member that cannot even be *counted* is dropped, not fatal.
            continue

    buffer = machine.perf.mmap(leader_fd)
    machine.perf.enable(leader_fd)
    workload()
    machine.perf.disable(leader_fd)

    samples = buffer.drain()
    final = machine.perf.read(leader_fd)
    result = RecordingResult(
        platform=machine.name,
        plan=plan,
        samples=samples,
        lost=buffer.lost,
        final_counts=dict(final.group),
    )

    machine.perf.close(leader_fd)
    for fd in member_fds.values():
        machine.perf.close(fd)
    return result
