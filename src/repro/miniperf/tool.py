"""The Miniperf facade: one object tying the tool's modes together.

``Miniperf(machine)`` identifies the CPU once and then exposes:

* :meth:`stat` -- counting mode;
* :meth:`record` -- sampling mode (with the group-leader workaround when the
  identified CPU needs it);
* :meth:`hotspots` -- Table-2 style hotspot tables from a recording;
* :meth:`flamegraph` -- folded-stack flame graphs from a recording;
* :meth:`roofline` -- the compiler-driven roofline flow (two-phase execution
  of an instrumented module), which is hardware-agnostic and therefore works
  identically on every platform model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cpu.events import HwEvent
from repro.kernel.task import Task
from repro.miniperf.cpuid import CpuInfo, identify_machine
from repro.miniperf.record import RecordingResult, miniperf_record
from repro.miniperf.report import HotspotReport, build_hotspot_report
from repro.miniperf.stat import DEFAULT_STAT_EVENTS, StatResult, miniperf_stat
from repro.platforms.machine import Machine


class Miniperf:
    """User-facing entry point of the tool."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.cpu: CpuInfo = identify_machine(machine)

    # -- counting -------------------------------------------------------------------------

    def stat(self, workload: Callable[[], None], task: Optional[Task] = None,
             events: Sequence[HwEvent] = DEFAULT_STAT_EVENTS) -> StatResult:
        task = task or self.machine.create_task("miniperf-stat")
        return miniperf_stat(self.machine, task, workload, events)

    # -- sampling -------------------------------------------------------------------------

    def record(self, workload: Callable[[], None], task: Optional[Task] = None,
               events: Sequence[HwEvent] = (HwEvent.CYCLES, HwEvent.INSTRUCTIONS),
               sample_period: int = 50_000,
               callchain: bool = True) -> RecordingResult:
        task = task or self.machine.create_task("miniperf-record")
        return miniperf_record(
            self.machine, task, workload,
            events=events, sample_period=sample_period,
            callchain=callchain, cpu=self.cpu,
        )

    def hotspots(self, recording: RecordingResult) -> HotspotReport:
        return build_hotspot_report(recording)

    # -- flame graphs -----------------------------------------------------------------------

    def flamegraph(self, recording: RecordingResult, weight: str = "samples"):
        """Build a flame graph from a recording.

        ``weight`` selects what frame widths represent: ``"samples"`` (the
        classic cycle-proportional graph when cycles lead the sampling) or
        the name of a group event (e.g. ``"instructions"``) to weight each
        sample by that event's delta -- the instructions-retired flame graphs
        of the paper's Figure 3.
        """
        from repro.flamegraph import build_flame_graph
        return build_flame_graph(recording.samples, weight=weight)

    # -- roofline ---------------------------------------------------------------------------

    def roofline(self, source: str, function: str, args_builder,
                 repeats: int = 1, vector_width: Optional[int] = None):
        """Run the compiler-driven roofline flow for one kernel.

        See :class:`repro.roofline.runner.RooflineRunner` for the full
        parameter description; this is a convenience wrapper bound to this
        Miniperf instance's machine.
        """
        from repro.roofline.runner import RooflineRunner
        runner = RooflineRunner(self.machine.descriptor)
        return runner.run_source(source, function, args_builder,
                                 repeats=repeats, vector_width=vector_width)

    def describe(self) -> str:
        lines = [
            f"miniperf on {self.machine.name}",
            f"  identified as: {self.cpu.vendor} {self.cpu.core} "
            f"(mvendorid={self.cpu.identity.mvendorid:#x})",
            f"  direct sampling events: "
            f"{', '.join(e.value for e in self.cpu.direct_sampling_events) or 'none'}",
            f"  group-leader workaround: "
            f"{'required' if self.cpu.needs_group_leader_workaround else 'not needed'}",
        ]
        if self.cpu.notes:
            lines.append(f"  notes: {self.cpu.notes}")
        return "\n".join(lines)
