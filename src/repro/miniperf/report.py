"""Hotspot reporting (the source of the paper's Table 2).

Samples are attributed to the function at the top of their call chain.  The
per-function share of samples estimates the share of CPU time ("Total %"),
and the group readouts attached to consecutive samples give per-function
deltas of cycles and instructions, from which per-function IPC and estimated
instruction counts are derived -- the three columns of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cpu.events import HwEvent
from repro.kernel.ring_buffer import SampleRecord
from repro.miniperf.record import RecordingResult


@dataclass
class HotspotRow:
    """One function's aggregated profile."""

    function: str
    samples: int
    total_percent: float
    cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "samples": self.samples,
            "total_percent": round(self.total_percent, 2),
            "instructions": self.instructions,
            "ipc": round(self.ipc, 2),
        }


@dataclass
class HotspotReport:
    """The full hotspot table for one recording."""

    platform: str
    rows: List[HotspotRow] = field(default_factory=list)
    total_samples: int = 0
    overall_ipc: float = 0.0

    def top(self, count: int = 3) -> List[HotspotRow]:
        return self.rows[:count]

    def row_for(self, function: str) -> Optional[HotspotRow]:
        for row in self.rows:
            if row.function == function:
                return row
        return None

    def to_dict(self) -> Dict[str, object]:
        """Machine-consumable table (``--json`` on the CLI)."""
        return {
            "platform": self.platform,
            "total_samples": self.total_samples,
            "overall_ipc": round(self.overall_ipc, 4),
            "rows": [row.as_dict() for row in self.rows],
        }

    def format(self, count: int = 10) -> str:
        lines = [
            f"Hotspots for {self.platform} "
            f"({self.total_samples} samples, overall IPC {self.overall_ipc:.2f})",
            f"{'Function':<32} {'Total %':>8} {'Instructions':>16} {'IPC':>6}",
        ]
        for row in self.top(count):
            lines.append(
                f"{row.function:<32} {row.total_percent:>7.2f}% "
                f"{row.instructions:>16,} {row.ipc:>6.2f}"
            )
        return "\n".join(lines)


def build_hotspot_report(recording: RecordingResult,
                         cycles_event: HwEvent = HwEvent.CYCLES,
                         instructions_event: HwEvent = HwEvent.INSTRUCTIONS) -> HotspotReport:
    """Aggregate a recording into a hotspot table.

    Group readouts are cumulative at each sample, so the delta between
    consecutive samples is the work done since the previous sample; it is
    attributed to the function on top of the stack at sample time, the same
    approximation ``perf report`` makes.
    """
    samples = recording.samples
    report = HotspotReport(platform=recording.platform, total_samples=len(samples),
                           overall_ipc=recording.overall_ipc)
    if not samples:
        return report

    per_function_samples: Dict[str, int] = {}
    per_function_cycles: Dict[str, int] = {}
    per_function_instructions: Dict[str, int] = {}

    previous_cycles = 0
    previous_instructions = 0
    for sample in samples:
        function = sample.leaf_function
        per_function_samples[function] = per_function_samples.get(function, 0) + 1
        cycles_now = sample.group_values.get(cycles_event.value, 0)
        instructions_now = sample.group_values.get(instructions_event.value, 0)
        delta_cycles = max(0, cycles_now - previous_cycles)
        delta_instructions = max(0, instructions_now - previous_instructions)
        previous_cycles = max(previous_cycles, cycles_now)
        previous_instructions = max(previous_instructions, instructions_now)
        per_function_cycles[function] = per_function_cycles.get(function, 0) + delta_cycles
        per_function_instructions[function] = (
            per_function_instructions.get(function, 0) + delta_instructions
        )

    total = len(samples)
    rows = [
        HotspotRow(
            function=function,
            samples=count,
            total_percent=100.0 * count / total,
            cycles=per_function_cycles.get(function, 0),
            instructions=per_function_instructions.get(function, 0),
        )
        for function, count in per_function_samples.items()
    ]
    rows.sort(key=lambda row: row.samples, reverse=True)
    report.rows = rows
    return report
