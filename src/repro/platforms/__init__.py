"""Platform descriptors and the integrated machine model.

A :class:`~repro.platforms.machine.Machine` bundles one platform's core
timing model, cache hierarchy, CSR file, PMU, OpenSBI firmware, kernel PMU
driver and perf_event subsystem -- the full Figure-1 stack -- behind one
object that execution engines drive and miniperf profiles.
"""

from repro.platforms.descriptors import (
    PlatformDescriptor,
    VectorCapability,
    spacemit_x60,
    sifive_u74,
    thead_c910,
    intel_i5_1135g7,
    all_platforms,
    platform_by_name,
)
from repro.platforms.machine import Machine

__all__ = [
    "PlatformDescriptor",
    "VectorCapability",
    "Machine",
    "spacemit_x60",
    "sifive_u74",
    "thead_c910",
    "intel_i5_1135g7",
    "all_platforms",
    "platform_by_name",
]
