"""Descriptors for the four evaluation platforms.

Parameters follow publicly documented figures where available (frequencies,
cache sizes, issue widths, VLEN) and are otherwise chosen so that the
*relative* results the paper reports hold: the X60's measured ~3.16
bytes/cycle DRAM bandwidth, its 256-bit RVV 1.0 datapath, the U74's lack of a
vector unit, the C910's out-of-order RVV 0.7.1 design, and a Tiger Lake
laptop part as the x86 comparator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.cpu.cache import CacheConfig, MemoryConfig
from repro.cpu.core import CoreConfig, DEFAULT_LATENCIES
from repro.isa.csr import CpuIdentity
from repro.isa.machine_ops import OpClass
from repro.pmu.unit import PmuUnit
from repro.pmu.vendors import (
    C910_IDENTITY,
    IntelTigerLakePmu,
    SiFiveU74Pmu,
    SpacemitX60Pmu,
    TheadC910Pmu,
    TIGERLAKE_IDENTITY,
    U74_IDENTITY,
    X60_IDENTITY,
)


@dataclass(frozen=True)
class VectorCapability:
    """Vector ISA support of a platform."""

    extension: Optional[str]      # "RVV 1.0", "RVV 0.7.1", "AVX2", or None
    vlen_bits: int = 0            # hardware vector length (0 when unsupported)

    @property
    def supported(self) -> bool:
        return self.extension is not None and self.vlen_bits > 0

    def sp_lanes(self) -> int:
        """Single-precision elements per vector operation."""
        return self.vlen_bits // 32 if self.supported else 1


@dataclass(frozen=True)
class PlatformDescriptor:
    """Everything needed to instantiate a platform's machine model."""

    name: str
    arch: str                         # "riscv64" or "x86_64"
    board: str
    core: CoreConfig
    caches: List[CacheConfig]
    memory: MemoryConfig
    vector: VectorCapability
    identity: CpuIdentity
    pmu_class: Type[PmuUnit]
    upstream_linux: str               # "yes" | "partial" | "no"
    march: str = ""                   # compiler target string (-march=...)
    #: Physical hart (core) count of the board; ``--cpus``/``-a`` on the CLI
    #: and :class:`repro.smp.MultiHartMachine` scale up to this.
    harts: int = 1

    @property
    def is_riscv(self) -> bool:
        return self.arch == "riscv64"

    def theoretical_peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s (the roofline compute roof)."""
        return self.core.peak_sp_flops_per_cycle * self.core.frequency_hz / 1e9

    def theoretical_dram_bandwidth_gbps(self) -> float:
        """Peak DRAM bandwidth in GB/s (the roofline memory roof)."""
        return self.memory.peak_bytes_per_cycle * self.core.frequency_hz / 1e9


def _latencies(**overrides: int) -> Dict[OpClass, int]:
    table = dict(DEFAULT_LATENCIES)
    for key, value in overrides.items():
        table[OpClass[key]] = value
    return table


def spacemit_x60() -> PlatformDescriptor:
    """SpacemiT X60 (Banana Pi F3 / Milk-V Jupiter).

    In-order dual-issue, RVV 1.0 with 256-bit VLEN, 1.6 GHz.  The paper's
    roofs for this part: 3.16 bytes/cycle of DRAM bandwidth (~4.7 GB/s) and
    2 IPC x 8 SP lanes x 1.6 GHz = 25.6 GFLOP/s.
    """
    core = CoreConfig(
        name="SpacemiT X60",
        frequency_hz=1.6e9,
        issue_width=2,
        out_of_order=False,
        latencies=_latencies(FP_ADD=4, FP_MUL=5, FP_FMA=5, LOAD=3),
        dependency_exposure=0.45,
        memory_exposure=0.45,
        mispredict_penalty=6,
        peak_sp_flops_per_cycle=16.0,   # 2 IPC x 8 SP FLOP per vector op
        vector_sp_lanes=8,
        taken_branch_bubble=0.35,
    )
    return PlatformDescriptor(
        name="SpacemiT X60",
        arch="riscv64",
        board="Banana Pi F3",
        core=core,
        caches=[
            CacheConfig("L1D", size_bytes=32 * 1024, line_bytes=64,
                        associativity=8, hit_latency=3),
            CacheConfig("L2", size_bytes=512 * 1024, line_bytes=64,
                        associativity=8, hit_latency=14),
        ],
        memory=MemoryConfig(latency_cycles=160, peak_bytes_per_cycle=3.16),
        vector=VectorCapability("RVV 1.0", vlen_bits=256),
        identity=X60_IDENTITY,
        pmu_class=SpacemitX60Pmu,
        upstream_linux="no",
        march="rv64gcv",
        harts=8,                       # the Banana Pi F3 is an octa-core part
    )


def sifive_u74() -> PlatformDescriptor:
    """SiFive U74 (VisionFive 2): in-order dual-issue, no vector unit."""
    core = CoreConfig(
        name="SiFive U74",
        frequency_hz=1.5e9,
        issue_width=2,
        out_of_order=False,
        latencies=_latencies(FP_ADD=5, FP_MUL=5, FP_FMA=6, LOAD=3),
        dependency_exposure=0.55,
        memory_exposure=0.70,
        mispredict_penalty=6,
        peak_sp_flops_per_cycle=2.0,     # scalar FMA only
        vector_sp_lanes=1,
        taken_branch_bubble=0.6,
    )
    return PlatformDescriptor(
        name="SiFive U74",
        arch="riscv64",
        board="VisionFive 2",
        core=core,
        caches=[
            CacheConfig("L1D", size_bytes=32 * 1024, line_bytes=64,
                        associativity=8, hit_latency=3),
            CacheConfig("L2", size_bytes=2 * 1024 * 1024, line_bytes=64,
                        associativity=16, hit_latency=21),
        ],
        memory=MemoryConfig(latency_cycles=170, peak_bytes_per_cycle=2.4),
        vector=VectorCapability(None, vlen_bits=0),
        identity=U74_IDENTITY,
        pmu_class=SiFiveU74Pmu,
        upstream_linux="yes",
        march="rv64gc",
        harts=4,                       # JH7110: four U74 application harts
    )


def thead_c910() -> PlatformDescriptor:
    """T-Head C910 (Lichee Pi 4A): out-of-order, RVV 0.7.1 (128-bit)."""
    core = CoreConfig(
        name="T-Head C910",
        frequency_hz=1.85e9,
        issue_width=3,
        out_of_order=True,
        latencies=_latencies(FP_ADD=3, FP_MUL=4, FP_FMA=4, LOAD=4),
        dependency_exposure=0.5,
        memory_exposure=0.6,
        mispredict_penalty=10,
        peak_sp_flops_per_cycle=8.0,     # 128-bit datapath, one FMA pipe
        vector_sp_lanes=4,
        taken_branch_bubble=0.2,
    )
    return PlatformDescriptor(
        name="T-Head C910",
        arch="riscv64",
        board="Lichee Pi 4A",
        core=core,
        caches=[
            CacheConfig("L1D", size_bytes=64 * 1024, line_bytes=64,
                        associativity=4, hit_latency=3),
            CacheConfig("L2", size_bytes=1024 * 1024, line_bytes=64,
                        associativity=16, hit_latency=18),
        ],
        memory=MemoryConfig(latency_cycles=150, peak_bytes_per_cycle=4.0),
        vector=VectorCapability("RVV 0.7.1", vlen_bits=128),
        identity=C910_IDENTITY,
        pmu_class=TheadC910Pmu,
        upstream_linux="partial",
        march="rv64gc_v0p7",
        harts=4,                       # TH1520: quad C910 cluster
    )


def intel_i5_1135g7() -> PlatformDescriptor:
    """Intel Core i5-1135G7 (Tiger Lake): the paper's x86 comparator.

    The paper compiles with ``-mavx2``; with two 256-bit FMA ports that is a
    peak of 2 x 8 x 2 = 32 SP FLOPs per cycle.
    """
    core = CoreConfig(
        name="Intel Core i5-1135G7",
        frequency_hz=4.2e9,
        issue_width=5,
        out_of_order=True,
        latencies=_latencies(FP_ADD=4, FP_MUL=4, FP_FMA=4, LOAD=5, INT_DIV=26),
        dependency_exposure=0.5,
        memory_exposure=0.55,
        mispredict_penalty=14,
        peak_sp_flops_per_cycle=32.0,
        vector_sp_lanes=8,
        taken_branch_bubble=0.05,
    )
    return PlatformDescriptor(
        name="Intel Core i5-1135G7",
        arch="x86_64",
        board="laptop (Tiger Lake)",
        core=core,
        caches=[
            CacheConfig("L1D", size_bytes=48 * 1024, line_bytes=64,
                        associativity=12, hit_latency=5),
            CacheConfig("L2", size_bytes=1280 * 1024, line_bytes=64,
                        associativity=20, hit_latency=13),
            CacheConfig("L3", size_bytes=8 * 1024 * 1024, line_bytes=64,
                        associativity=16, hit_latency=40),
        ],
        memory=MemoryConfig(latency_cycles=250, peak_bytes_per_cycle=12.0),
        vector=VectorCapability("AVX2", vlen_bits=256),
        identity=TIGERLAKE_IDENTITY,
        pmu_class=IntelTigerLakePmu,
        upstream_linux="yes",
        march="x86-64-v3",
        harts=4,                       # i5-1135G7: four Willow Cove cores
    )


_FACTORIES = {
    "SpacemiT X60": spacemit_x60,
    "SiFive U74": sifive_u74,
    "T-Head C910": thead_c910,
    "Intel Core i5-1135G7": intel_i5_1135g7,
}


def all_platforms() -> List[PlatformDescriptor]:
    """Every modelled platform, in the paper's Table 1 order plus the comparator."""
    return [sifive_u74(), thead_c910(), spacemit_x60(), intel_i5_1135g7()]


def platform_by_name(name: str) -> PlatformDescriptor:
    """Look a platform up by (case-insensitive, substring-tolerant) name."""
    for key, factory in _FACTORIES.items():
        if key.lower() == name.lower():
            return factory()
    for key, factory in _FACTORIES.items():
        if name.lower() in key.lower():
            return factory()
    raise KeyError(
        f"unknown platform {name!r}; available: {', '.join(_FACTORIES)}"
    )
