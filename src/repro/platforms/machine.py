"""The integrated machine: core + caches + CSRs + PMU + SBI + kernel.

One :class:`Machine` instance is a single profiled board.  Execution engines
feed it retired :class:`~repro.isa.machine_ops.MachineOp` streams; miniperf
opens perf events against its kernel; the roofline runner asks it for
theoretical roofs.  Everything the paper's Figure 1 stacks vertically lives
behind this object.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cpu.branch import GsharePredictor
from repro.cpu.cache import CacheHierarchy
from repro.cpu.core import BlockDelta, CoreTimingModel, InOrderCore, OutOfOrderCore
from repro.cpu.events import EventBus, HwEvent
from repro.isa.csr import CsrFile
from repro.isa.machine_ops import MachineOp
from repro.isa.privilege import PrivilegeMode
from repro.kernel.drivers import PmuDriver, RiscvSbiPmuDriver, X86PmuDriver
from repro.kernel.perf_event import PerfEventSubsystem
from repro.kernel.task import Task
from repro.platforms.descriptors import PlatformDescriptor
from repro.pmu.unit import PmuUnit
from repro.sbi.firmware import OpenSbi
from repro.sbi.pmu_ext import SbiPmuExtension


class Machine:
    """A fully assembled platform model.

    Parameters
    ----------
    descriptor:
        Which platform to build.
    vendor_driver:
        Whether vendor kernel patches are installed.  Matters for platforms
        without upstream Linux support (the X60's mode-cycle events are only
        visible with the vendor driver); defaults to True because that is the
        configuration the paper measures.
    hierarchy:
        Memory hierarchy to use instead of building a private
        :class:`CacheHierarchy` from the descriptor.  The SMP machine
        (:class:`repro.smp.MultiHartMachine`) passes per-hart views of a
        shared LLC here; standalone machines leave it None.
    hart_id:
        Which hart this machine models.  Standalone machines are hart 0;
        inside a multi-hart machine each hart gets its own id, which tags
        perf samples (the ``cpu`` field) and the firmware/driver instances.
    """

    def __init__(self, descriptor: PlatformDescriptor, vendor_driver: bool = True,
                 hierarchy=None, hart_id: int = 0):
        self.descriptor = descriptor
        self.hart_id = hart_id
        self.bus = EventBus()
        self.hierarchy = (hierarchy if hierarchy is not None
                          else CacheHierarchy(descriptor.caches, descriptor.memory))
        self.predictor = GsharePredictor()
        #: The task currently scheduled on this hart (set by the SMP
        #: scheduler around each quantum).  When set, sampling interrupts
        #: attribute to it instead of the perf event's opening task, the way
        #: system-wide (cpu-bound) perf events sample whatever runs on the CPU.
        self.current_task: Optional[Task] = None

        core_cls = OutOfOrderCore if descriptor.core.out_of_order else InOrderCore
        self.core: CoreTimingModel = core_cls(
            descriptor.core, self.hierarchy, self.bus, self.predictor
        )

        self.csr = CsrFile(descriptor.identity)
        self.pmu: PmuUnit = descriptor.pmu_class(self.bus)

        self.sbi: Optional[OpenSbi] = None
        if descriptor.is_riscv:
            self.sbi = OpenSbi(self.csr, hart_id=hart_id)
            self.sbi.register_extension(
                SbiPmuExtension(self.csr, self.pmu, hart_id=hart_id))
            self.driver: PmuDriver = RiscvSbiPmuDriver(
                self.sbi, self.csr, self.pmu, vendor_driver=vendor_driver,
                hart_id=hart_id,
            )
        else:
            self.driver = X86PmuDriver(self.pmu, hart_id=hart_id)

        self.perf = PerfEventSubsystem(
            self.driver, clock=self.clock, cpu=hart_id,
            current_task=lambda: self.current_task,
        )
        self._tasks: Dict[int, Task] = {}
        #: Predicate consulted by :meth:`execute_batch` to decide whether
        #: batched retirement must fall back to per-op retirement.  A
        #: standalone machine only watches its own PMU; a multi-hart machine
        #: replaces it with a system-wide probe so *any* hart arming a
        #: sampling counter forces every hart onto the per-op path (the
        #: conservative reading of "no interrupt may be deferred").
        self._sampling_probe = self.pmu.sampling_active
        #: Per-(block, core-config) cache of precomputed
        #: :class:`~repro.cpu.core.BlockDelta` signatures.  Keyed by the IR
        #: basic block; the machine *is* the core-config axis, and it outlives
        #: the per-run execution engines (a Session caches its machines), so
        #: repeated runs predecode each eligible block's delta exactly once.
        self.block_deltas: Dict[object, BlockDelta] = {}
        #: Block-delta classification tallies kept by the execution engine
        #: (:meth:`repro.vm.engine` decode).  Observability only: the run
        #: collector folds before/after deltas of these plain ints into the
        #: telemetry registry; nothing here feeds modelled time.
        self.delta_stats: Dict[str, int] = {
            "eligible": 0, "ineligible": 0,
            "cache_hits": 0, "cache_misses": 0,
        }
        #: Optional ``(address, size_bytes, is_store) -> None`` observer of
        #: every addressed memory op this hart retires, on both the per-op
        #: and the batched path.  The static race detector's dynamic
        #: validator installs one per hart to record actual per-thread access
        #: sets; ``None`` (the default) costs one predicate per execute call.
        self._access_recorder = None

    # -- identity & capability ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def frequency_hz(self) -> float:
        return self.descriptor.core.frequency_hz

    def clock(self) -> int:
        """Current machine time in core cycles (the perf_event time source)."""
        return self.core.total_cycles

    def theoretical_peak_gflops(self) -> float:
        return self.descriptor.theoretical_peak_gflops()

    def theoretical_dram_bandwidth_gbps(self) -> float:
        return self.descriptor.theoretical_dram_bandwidth_gbps()

    # -- task management -------------------------------------------------------------

    def create_task(self, name: str) -> Task:
        task = Task(name)
        self._tasks[task.pid] = task
        return task

    def task(self, pid: int) -> Task:
        return self._tasks[pid]

    # -- execution -------------------------------------------------------------------

    def execute(self, op: MachineOp, task: Optional[Task] = None):
        """Retire one machine op on this machine's core.

        When *task* is given its program counter is updated first so any
        sampling interrupt raised by this op attributes the sample correctly.
        """
        if task is not None and op.pc:
            task.set_pc(op.pc)
        if self._access_recorder is not None and op.is_memory and op.address is not None:
            self._access_recorder(op.address, op.size_bytes, op.is_store)
        return self.core.retire(op)

    def execute_batch(self, ops: Sequence[object],
                      task: Optional[Task] = None,
                      mem_accesses: Optional[Sequence] = None) -> None:
        """Retire a chunk of machine ops (the engine's batched accounting).

        While the sampling probe reports an armed sampling counter (on this
        hart's PMU -- or on *any* hart, when a
        :class:`~repro.smp.machine.MultiHartMachine` installed its
        system-wide probe), every op is a potential overflow boundary: ops
        retire one at a time with the task pc updated
        first, exactly like :meth:`execute`, so interrupts observe the
        precise pc/cycle/callchain state.  Otherwise event publication is
        coalesced per chunk through
        :meth:`~repro.cpu.core.CoreTimingModel.retire_batch`, which leaves
        final counter values and bus totals bit-identical while removing the
        per-op publication fan-out.

        *ops* may contain :class:`~repro.cpu.core.BlockDelta` sentinels --
        whole precomputed block executions.  On the per-op (sampling) path
        each sentinel is expanded back into its op stream, so interrupts see
        exactly the per-op state; on the batched path it is retired as one
        aggregate by :meth:`~repro.cpu.core.CoreTimingModel.retire_batch`.

        *mem_accesses* optionally carries the batch's addressed memory
        accesses as ``(address, size_bytes, is_store)`` tuples in stream
        order (the engine collects them while emitting ops).  The batched
        path resolves them in one :meth:`~repro.cpu.cache.CacheHierarchy.
        access_lines` call; the per-op path ignores them (each
        :meth:`~repro.cpu.core.CoreTimingModel.retire` performs its own
        access), so the hierarchy is walked exactly once either way.
        """
        if not ops:
            return
        if self._access_recorder is not None:
            # BlockDelta sentinels never contain memory ops (delta
            # eligibility excludes them), so walking the top level sees
            # every addressed access of the batch.
            record = self._access_recorder
            for op in ops:
                if op.__class__ is not BlockDelta and op.is_memory \
                        and op.address is not None:
                    record(op.address, op.size_bytes, op.is_store)
        if self._sampling_probe():
            retire = self.core.retire
            if task is not None:
                set_pc = task.set_pc
                for op in ops:
                    if op.__class__ is BlockDelta:
                        for sub in op.ops:
                            if sub.pc:
                                set_pc(sub.pc)
                            retire(sub)
                    else:
                        if op.pc:
                            set_pc(op.pc)
                        retire(op)
            else:
                for op in ops:
                    if op.__class__ is BlockDelta:
                        for sub in op.ops:
                            retire(sub)
                    else:
                        retire(op)
            return
        if task is not None:
            # No interrupt can fire mid-batch; only the final pc is observable.
            for op in reversed(ops):
                pc = op.last_pc if op.__class__ is BlockDelta else op.pc
                if pc:
                    task.set_pc(pc)
                    break
        mem_results = None
        if mem_accesses:
            mem_results = self.hierarchy.access_lines(mem_accesses)
        self.core.retire_batch(ops, mem_results)

    def set_sampling_probe(self, probe) -> None:
        """Install a system-wide sampling predicate (see ``_sampling_probe``)."""
        self._sampling_probe = probe

    def set_access_recorder(self, recorder) -> None:
        """Install (or clear, with ``None``) the memory-access observer.

        *recorder* is called as ``recorder(address, size_bytes, is_store)``
        for every addressed memory op retired on this hart.  Recording is
        observation only -- timing, counters and samples are unaffected.
        """
        self._access_recorder = recorder

    def set_cache_fast_path(self, enabled: bool) -> None:
        """Toggle the memory hierarchy's same-line short-circuits.

        Bit-identical results either way; differential suites turn the fast
        path off to run the plain per-level walk as the reference.
        """
        self.hierarchy.set_fast_path(enabled)

    def set_privilege_mode(self, mode: PrivilegeMode) -> None:
        self.core.set_privilege_mode(mode)

    # -- convenience metrics ------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.core.total_cycles

    @property
    def instructions(self) -> int:
        return self.core.retired_instructions

    @property
    def ipc(self) -> float:
        return self.core.ipc

    def elapsed_seconds(self) -> float:
        return self.core.elapsed_seconds()

    def event_totals(self) -> Dict[HwEvent, int]:
        """Raw event totals observed on the bus (PMU-independent ground truth)."""
        return self.bus.totals.as_dict()

    def stats(self) -> Dict[str, object]:
        return {
            "platform": self.name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": round(self.ipc, 4),
            "elapsed_seconds": self.elapsed_seconds(),
            "cache": self.hierarchy.stats(),
            "branch_miss_rate": round(self.predictor.miss_rate, 4),
        }

    def __repr__(self) -> str:
        return f"Machine({self.name!r}, cycles={self.cycles}, ipc={self.ipc:.2f})"
