"""Unified telemetry: a process-wide metrics registry and structured spans.

The profiler profiling itself.  Three pieces:

* :data:`REGISTRY` -- one :class:`~repro.telemetry.registry.MetricsRegistry`
  per process.  Hot paths keep plain integer tallies; run collectors and
  the service daemon fold them into labeled series at boundaries.
* :data:`TRACER` -- one :class:`~repro.telemetry.spans.Tracer` per process,
  disabled by default.  ``with span("compile", workload=...):`` costs one
  attribute check while disabled.
* :mod:`~repro.telemetry.trace` -- exports: Chrome trace-event JSON
  (Perfetto-loadable), JSONL, and flame graphs through the repo's own
  ``flamegraph`` package.

Telemetry is observability only: nothing here may feed modelled time,
``deterministic_dict()`` exports, cache keys or goldens.
"""

from __future__ import annotations

from typing import Any

from .collect import Captured, RunCollector, capture
from .registry import (
    MetricsRegistry,
    escape_label_value,
    format_metric_value,
    prometheus_family_header,
    render_labels,
)
from .spans import Span, Tracer

#: The process-wide metrics registry.
REGISTRY = MetricsRegistry()

#: The process-wide span tracer (disabled by default).
TRACER = Tracer()


def span(name: str, cat: str = "phase", **args: Any):
    """Open a span on the process tracer (no-op while disabled)."""
    return TRACER.span(name, cat, **args)


def record(name: str, cat: str = "event", wall_dur_us: int = 0,
           **args: Any):
    """Record a complete flat span on the process tracer."""
    return TRACER.record(name, cat, wall_dur_us, **args)


def enable() -> None:
    TRACER.enable()


def disable() -> None:
    TRACER.disable()


def enabled() -> bool:
    return TRACER.enabled


__all__ = [
    "Captured", "MetricsRegistry", "REGISTRY", "RunCollector", "Span",
    "TRACER", "Tracer", "capture", "disable", "enable", "enabled",
    "escape_label_value", "format_metric_value", "prometheus_family_header",
    "record", "render_labels", "span",
]
