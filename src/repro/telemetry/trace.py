"""Trace exports: Chrome trace-event JSON, JSONL, and flame graphs.

The Chrome trace-event export loads directly in Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: complete events
(``"ph": "X"``) with microsecond ``ts``/``dur``, one event per span.
Structural ordinals (``seq``/``end_seq``) ride in ``args`` so a trace can
be re-sorted deterministically even though its timestamps are wall clock.

:func:`spans_to_flame` renders the same tree through the repo's own
``flamegraph`` package -- the profiler dogfooding itself -- weighting
frames by wall microseconds.

:func:`structural_tree` drops every wall-clock field; it is what the
determinism suite compares across runs and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.flamegraph.model import FlameNode

from .spans import Span


def _walk(spans: Sequence[Span]) -> Iterable[Span]:
    for span in spans:
        yield span
        yield from _walk(span.children)


def chrome_trace(roots: Sequence[Span], pid: int = 1) -> dict:
    """Chrome trace-event JSON object format (Perfetto-loadable)."""
    events: List[dict] = []
    for span in _walk(roots):
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "ts": span.wall_start_us,
            "dur": span.wall_dur_us,
            "pid": pid,
            "tid": 1,
            "args": dict(span.args, seq=span.seq, end_seq=span.end_seq),
        })
    events.sort(key=lambda event: (event["ts"], event["args"]["seq"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def jsonl_lines(roots: Sequence[Span]) -> List[str]:
    """One JSON object per span, depth-first, seq-ordered within a tree."""
    return [json.dumps(
        {"name": span.name, "cat": span.cat, "seq": span.seq,
         "end_seq": span.end_seq, "wall_start_us": span.wall_start_us,
         "wall_dur_us": span.wall_dur_us, "args": span.args},
        sort_keys=True) for span in _walk(roots)]


def write_trace(path: str, roots: Sequence[Span]) -> None:
    """Write *roots* to *path*: ``.jsonl`` -> JSONL, anything else ->
    Chrome trace-event JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".jsonl"):
            handle.write("\n".join(jsonl_lines(roots)) + "\n")
        else:
            json.dump(chrome_trace(roots), handle, indent=2)
            handle.write("\n")


def spans_to_flame(roots: Sequence[Span], name: str = "trace") -> FlameNode:
    """Merge a span forest into a flame graph weighted by wall microseconds."""
    flame = FlameNode(name)

    def graft(parent: FlameNode, span: Span) -> None:
        node = parent.child(span.name)
        node.value += span.wall_dur_us
        child_total = 0
        for child in span.children:
            graft(node, child)
            child_total += child.wall_dur_us
        node.self_value += max(0, span.wall_dur_us - child_total)

    for span in roots:
        graft(flame, span)
        flame.value += span.wall_dur_us
    return flame


def structural_tree(roots: Sequence[Span]) -> List[dict]:
    """The deterministic skeleton of a span forest: names, categories,
    args, tick ordinals and nesting -- no wall-clock fields."""
    def strip(span: Span) -> dict:
        return {
            "name": span.name,
            "cat": span.cat,
            "args": {key: span.args[key] for key in sorted(span.args)},
            "seq": span.seq,
            "end_seq": span.end_seq,
            "children": [strip(child) for child in span.children],
        }
    return [strip(span) for span in roots]
