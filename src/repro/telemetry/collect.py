"""Run-boundary collection: fold hot-path tallies into the registry.

The hot paths never see the registry.  They keep plain integer attributes
-- ``Machine.delta_stats``, ``CoreTimingModel.delta_blocks_retired``,
``Cache.mru_hits``, the compile-cache module tallies -- and a
:class:`RunCollector` snapshots them before a run, diffs them after, and
increments labeled registry series with the difference.  Machines are
pooled and reused across runs, so absolute values are meaningless; the
before/after delta is what belongs to *this* run.

:func:`capture` is the cross-process shipping helper: pool workers and
``run_many`` processes wrap their work in it and send the resulting
metrics delta (and span wire dicts) back to the parent, which merges them
-- merging is only ever done across a process boundary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional


def _machine_tallies(machine) -> dict:
    """Snapshot the plain-int tallies of a machine (single- or multi-hart)."""
    harts = getattr(machine, "harts", None)
    if harts is not None:
        delta_stats: Dict[str, int] = {}
        delta_blocks = 0
        for hart in harts:
            for key, value in hart.delta_stats.items():
                delta_stats[key] = delta_stats.get(key, 0) + value
            delta_blocks += hart.core.delta_blocks_retired
        fast_path = machine.memory_system.fast_path_hits()
    else:
        delta_stats = dict(machine.delta_stats)
        delta_blocks = machine.core.delta_blocks_retired
        fast_path = machine.hierarchy.fast_path_hits()
    return {
        "delta_stats": delta_stats,
        "delta_blocks_retired": delta_blocks,
        "fast_path_hits": fast_path,
    }


class RunCollector:
    """Collects one run's counter deltas into the metrics registry."""

    def __init__(self, platform: str, workload: str, registry=None):
        if registry is None:
            from repro import telemetry as _telemetry
            registry = _telemetry.REGISTRY
        self.registry = registry
        self.platform = platform
        self.workload = workload
        self._machine = None
        self._before: Optional[dict] = None
        self._compile_before: Optional[Dict[str, int]] = None

    def start(self, machine) -> "RunCollector":
        from repro.compiler import cache as compiler_cache
        self._machine = machine
        self._before = _machine_tallies(machine)
        self._compile_before = compiler_cache.cache_stats()
        return self

    def finish(self, schedule=None,
               timings: Optional[Dict[str, float]] = None) -> None:
        if self._machine is None or self._before is None:
            return
        from repro.compiler import cache as compiler_cache
        registry = self.registry
        after = _machine_tallies(self._machine)
        before = self._before

        classified = registry.counter(
            "repro_block_delta_classified_total",
            "Basic blocks classified for block-delta retirement")
        for outcome in ("eligible", "ineligible"):
            diff = (after["delta_stats"].get(outcome, 0)
                    - before["delta_stats"].get(outcome, 0))
            if diff:
                classified.inc(diff, outcome=outcome)

        delta_cache = registry.counter(
            "repro_block_delta_cache_total",
            "Machine-level BlockDelta signature cache lookups")
        for key, outcome in (("cache_hits", "hit"), ("cache_misses", "miss")):
            diff = (after["delta_stats"].get(key, 0)
                    - before["delta_stats"].get(key, 0))
            if diff:
                delta_cache.inc(diff, outcome=outcome)

        retired = (after["delta_blocks_retired"]
                   - before["delta_blocks_retired"])
        if retired:
            registry.counter(
                "repro_block_delta_blocks_retired_total",
                "BlockDelta sentinels retired as aggregates").inc(retired)

        fast_cache = registry.counter(
            "repro_fast_cache_short_circuits_total",
            "Cache accesses served by the same-line short-circuit")
        for level, count in sorted(after["fast_path_hits"].items()):
            diff = count - before["fast_path_hits"].get(level, 0)
            if diff:
                fast_cache.inc(diff, level=level)

        compile_after = compiler_cache.cache_stats()
        compile_cache = registry.counter(
            "repro_compile_cache_total",
            "compile_source_cached lookups by outcome")
        for key, outcome in (("hits", "hit"), ("misses", "miss")):
            diff = compile_after[key] - self._compile_before[key]
            if diff:
                compile_cache.inc(diff, outcome=outcome)

        if schedule is not None:
            quanta = registry.counter(
                "repro_scheduler_quanta_total",
                "Scheduler quanta executed per hart")
            for hart, count in sorted(schedule.quanta_per_hart().items()):
                if count:
                    quanta.inc(count, hart=hart)

        registry.counter(
            "repro_runs_total",
            "Profiling runs completed").inc(
                platform=self.platform, workload=self.workload)

        if timings:
            phases = registry.histogram(
                "repro_run_phase_seconds",
                "Wall-clock seconds per run phase (diagnostic only)")
            for phase in sorted(timings):
                phases.observe(timings[phase], phase=phase)

        self._machine = None
        self._before = None


class Captured:
    """What one :func:`capture` window observed."""

    def __init__(self) -> None:
        self.metrics: dict = {}
        self.spans: List[dict] = []

    def to_wire(self) -> dict:
        return {"metrics": self.metrics, "spans": self.spans}


@contextmanager
def capture(spans: bool = False):
    """Record the registry delta (and optionally spans) of a code block.

    Yields a :class:`Captured` whose ``metrics``/``spans`` fields are
    filled in when the block exits.  The parent process merges the
    result with ``REGISTRY.merge(captured.metrics)`` /
    ``TRACER.attach_wire(captured.spans)`` -- across a process boundary
    only; merging in the producing process double-counts.
    """
    from repro import telemetry as _telemetry
    registry, tracer = _telemetry.REGISTRY, _telemetry.TRACER
    before = registry.snapshot()
    was_enabled = tracer.enabled
    mark = len(tracer.roots)
    if spans and not was_enabled:
        tracer.enable()
    box = Captured()
    try:
        yield box
    finally:
        if spans and not was_enabled:
            tracer.disable()
        box.metrics = registry.snapshot_delta(before)
        if spans:
            box.spans = [span.to_wire() for span in tracer.roots[mark:]]
            if not was_enabled:
                del tracer.roots[mark:]
