"""Process-wide metrics registry: labeled counters, gauges and histograms.

The registry is the one place engine-, service- and CLI-level counters
meet.  Hot paths never touch it -- they keep plain integer attributes
(``Cache.mru_hits``, ``CoreTimingModel.delta_blocks_retired``, the
compile-cache module counters) and a :class:`repro.telemetry.collect.RunCollector`
folds the before/after deltas into labeled series at run boundaries.

Design constraints, in order:

* stdlib only, no daemon thread, no locks on the increment path
  (family creation is locked; series updates are plain dict writes,
  which is safe under every consumer here -- the asyncio daemon is
  single-threaded and pool workers each own their process registry);
* deterministic exports -- :meth:`MetricsRegistry.to_dict` and
  :meth:`MetricsRegistry.prometheus` sort families and series, so two
  processes that performed the same work render identical text;
* JSON-safe snapshots -- :meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.merge` let ``run_many`` workers and pool
  processes ship their deltas back to the parent over pickle/JSON.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: A series key: label items sorted by label name.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def format_metric_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    return f"{value:g}"


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_labels(key: LabelKey) -> str:
    """``{a="x",b="y"}`` (escaped), or ``""`` for the unlabeled series."""
    if not key:
        return ""
    inner = ",".join(f'{name}="{escape_label_value(value)}"'
                     for name, value in key)
    return "{" + inner + "}"


class _Family:
    """One named metric family holding labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, object] = {}

    def series(self) -> Iterator[Tuple[LabelKey, object]]:
        for key in sorted(self._series):
            yield key, self._series[key]

    def clear(self) -> None:
        self._series.clear()


class Counter(_Family):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def inc(self, amount: int = 1, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> int:
        return int(self._series.get(_label_key(labels), 0))


class Gauge(_Family):
    """A value that can go up and down (queue depths, pool sizes)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_bounds: int):
        self.bucket_counts = [0] * n_bounds
        self.count = 0
        self.sum = 0.0


class Histogram(_Family):
    """Cumulative-bucket histogram over fixed upper bounds."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 bounds: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.bounds: Tuple[float, ...] = tuple(bounds)

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.bounds))
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                series.bucket_counts[i] += 1
                break
        series.count += 1
        series.sum += value

    def cumulative_buckets(self, series: _HistogramSeries) -> List[int]:
        out, running = [], 0
        for count in series.bucket_counts:
            running += count
            out.append(running)
        return out


class MetricsRegistry:
    """A collection of metric families with deterministic exports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- family accessors (get-or-create) -----------------------------------------------

    def _family(self, cls, name: str, help: str, **kwargs) -> _Family:
        family = self._families.get(name)
        if family is not None:
            if not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help, **kwargs)
            return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._family(Histogram, name, help, bounds=bounds)

    def families(self) -> Iterator[_Family]:
        for name in sorted(self._families):
            yield self._families[name]

    def reset(self) -> None:
        """Drop every series (families stay registered).  Test aid."""
        for family in self._families.values():
            family.clear()

    # -- deterministic exports ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly dump, sorted by family then series labels."""
        out: Dict[str, dict] = {}
        for family in self.families():
            series: Dict[str, object] = {}
            if isinstance(family, Histogram):
                for key, data in family.series():
                    buckets = {
                        format_metric_value(bound): cum
                        for bound, cum in zip(
                            family.bounds,
                            family.cumulative_buckets(data))
                    }
                    buckets["+Inf"] = data.count
                    series[render_labels(key)] = {
                        "count": data.count,
                        "sum": round(data.sum, 6),
                        "buckets": buckets,
                    }
            else:
                for key, value in family.series():
                    series[render_labels(key)] = value
            out[family.name] = {"kind": family.kind, "series": series}
            if family.help:
                out[family.name]["help"] = family.help
        return out

    def prometheus(self) -> str:
        """Prometheus text exposition: per-family HELP/TYPE, escaped labels."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(prometheus_family_header(family.name, family.kind,
                                                  family.help))
            if isinstance(family, Histogram):
                for key, data in family.series():
                    for bound, cum in zip(family.bounds,
                                          family.cumulative_buckets(data)):
                        bucket_key = key + (("le", format_metric_value(bound)),)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{render_labels(bucket_key)} {cum}")
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(f"{family.name}_bucket"
                                 f"{render_labels(inf_key)} {data.count}")
                    lines.append(f"{family.name}_sum{render_labels(key)} "
                                 f"{format_metric_value(data.sum)}")
                    lines.append(f"{family.name}_count{render_labels(key)} "
                                 f"{data.count}")
            else:
                for key, value in family.series():
                    lines.append(f"{family.name}{render_labels(key)} "
                                 f"{format_metric_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    # -- cross-process shipping ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe copy of every series (for deltas and merging)."""
        snap: Dict[str, dict] = {}
        for family in self.families():
            entry: Dict[str, object] = {"kind": family.kind,
                                        "help": family.help}
            if isinstance(family, Histogram):
                entry["bounds"] = list(family.bounds)
                entry["series"] = [
                    [list(map(list, key)),
                     {"bucket_counts": list(data.bucket_counts),
                      "count": data.count, "sum": data.sum}]
                    for key, data in family.series()]
            else:
                entry["series"] = [[list(map(list, key)), value]
                                   for key, value in family.series()]
            snap[family.name] = entry
        return snap

    def snapshot_delta(self, before: dict) -> dict:
        """Snapshot of what changed since *before* (counter/histogram diffs;
        gauges ship their current value)."""
        current = self.snapshot()
        delta: Dict[str, dict] = {}
        for name, entry in current.items():
            base = before.get(name)
            base_series = {tuple(map(tuple, key)): value
                           for key, value in base["series"]} if base else {}
            out_series = []
            for key_list, value in entry["series"]:
                key = tuple(map(tuple, key_list))
                prior = base_series.get(key)
                if entry["kind"] == "histogram":
                    if prior is None:
                        prior = {"bucket_counts": [0] * len(value["bucket_counts"]),
                                 "count": 0, "sum": 0.0}
                    diff = {
                        "bucket_counts": [a - b for a, b in
                                          zip(value["bucket_counts"],
                                              prior["bucket_counts"])],
                        "count": value["count"] - prior["count"],
                        "sum": value["sum"] - prior["sum"],
                    }
                    if diff["count"]:
                        out_series.append([key_list, diff])
                elif entry["kind"] == "counter":
                    diff_value = value - (prior or 0)
                    if diff_value:
                        out_series.append([key_list, diff_value])
                else:   # gauges are point-in-time: ship the current value
                    out_series.append([key_list, value])
            if out_series:
                delta[name] = dict(entry, series=out_series)
        return delta

    def merge(self, snapshot: dict) -> None:
        """Fold a (delta) snapshot from another process into this registry.

        Counters and histogram series add; gauges take the shipped value.
        Only call across a process boundary -- merging a snapshot taken
        from *this* registry double-counts.
        """
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "counter":
                family = self.counter(name, entry.get("help", ""))
                for key_list, value in entry["series"]:
                    family.inc(value, **dict(tuple(pair)
                                             for pair in key_list))
            elif kind == "gauge":
                family = self.gauge(name, entry.get("help", ""))
                for key_list, value in entry["series"]:
                    family.set(value, **dict(tuple(pair)
                                             for pair in key_list))
            elif kind == "histogram":
                family = self.histogram(name, entry.get("help", ""),
                                        bounds=entry.get("bounds",
                                                         DEFAULT_BUCKETS))
                for key_list, data in entry["series"]:
                    key = _label_key(dict(tuple(pair) for pair in key_list))
                    series = family._series.get(key)
                    if series is None:
                        series = family._series[key] = _HistogramSeries(
                            len(family.bounds))
                    for i, count in enumerate(data["bucket_counts"]):
                        series.bucket_counts[i] += count
                    series.count += data["count"]
                    series.sum += data["sum"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")


def prometheus_family_header(name: str, kind: str, help: str) -> List[str]:
    """``# HELP`` / ``# TYPE`` lines for one metric family."""
    lines = []
    if help:
        lines.append(f"# HELP {name} {help}")
    lines.append(f"# TYPE {name} {kind}")
    return lines
