"""Structured spans with a zero-overhead-when-disabled context API.

``tracer.span("compile", workload="matmul-tiled")`` is the whole API.  When
the tracer is disabled (the default) the call is one attribute check and
returns a shared null context manager -- no allocation, no clock read --
which is what lets the hot paths keep their spans compiled in.

Span *structure* is deterministic: nesting, names, categories, args and the
``seq``/``end_seq`` ordinals all come from a monotonic tick counter, never
from the wall clock, so two runs of the same workload produce identical
span trees (the determinism suite pins this).  Wall-clock timestamps ride
along in separate ``wall_start_us``/``wall_dur_us`` fields used only for
trace rendering; :func:`_wall_us` is the single audited clock read.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Dict, List, Optional


def _wall_us() -> int:
    """Microsecond wall timestamp for trace rendering (non-structural)."""
    return int(perf_counter() * 1_000_000)  # repro-lint: allow[wall-clock] -- telemetry boundary: span timestamps render traces only, never modelled time or golden output


class Span:
    """One node in a span tree."""

    __slots__ = ("name", "cat", "args", "seq", "end_seq",
                 "wall_start_us", "wall_dur_us", "children")

    def __init__(self, name: str, cat: str, args: Dict[str, Any]):
        self.name = name
        self.cat = cat
        self.args = args
        self.seq = 0
        self.end_seq = 0
        self.wall_start_us = 0
        self.wall_dur_us = 0
        self.children: List["Span"] = []

    def to_wire(self) -> dict:
        """JSON/pickle-safe form for shipping across process boundaries."""
        return {
            "name": self.name, "cat": self.cat, "args": dict(self.args),
            "seq": self.seq, "end_seq": self.end_seq,
            "wall_start_us": self.wall_start_us,
            "wall_dur_us": self.wall_dur_us,
            "children": [child.to_wire() for child in self.children],
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "Span":
        span = cls(payload["name"], payload["cat"], dict(payload["args"]))
        span.seq = payload["seq"]
        span.end_seq = payload["end_seq"]
        span.wall_start_us = payload["wall_start_us"]
        span.wall_dur_us = payload["wall_dur_us"]
        span.children = [cls.from_wire(child)
                         for child in payload["children"]]
        return span

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, cat={self.cat!r}, "
                f"children={len(self.children)})")


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def note(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a :class:`Span` on the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]):
        self._tracer = tracer
        self.span = Span(name, cat, args)

    def note(self, **args: Any) -> None:
        """Attach extra args to the open span."""
        self.span.args.update(args)

    def __enter__(self) -> "_SpanContext":
        self._tracer._open(self.span)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close(self.span)
        return False


class Tracer:
    """Per-process span recorder.  Disabled by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.roots: List[Span] = []
        self._tick = 0
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------------------

    def span(self, name: str, cat: str = "phase", **args: Any):
        """Open a span context.  One attribute check when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, cat, args)

    def record(self, name: str, cat: str = "event",
               wall_dur_us: int = 0, **args: Any) -> Optional[Span]:
        """Append a complete flat root span (no stack involvement).

        The asyncio daemon uses this for per-request spans: interleaved
        requests would corrupt a thread-local stack, so request spans are
        recorded flat, each a root of its own.
        """
        if not self.enabled:
            return None
        span = Span(name, cat, args)
        with self._lock:
            self._tick += 1
            span.seq = self._tick
            self._tick += 1
            span.end_seq = self._tick
        span.wall_start_us = _wall_us() - wall_dur_us
        span.wall_dur_us = wall_dur_us
        with self._lock:
            self.roots.append(span)
        return span

    def attach_wire(self, payloads: List[dict], parent: Optional[Span] = None,
                    ) -> List[Span]:
        """Graft wire-format spans from another process under *parent*
        (or as roots).  Shipped seq ordinals are kept -- they order spans
        within their originating process, which is all the determinism
        suite compares."""
        spans = [Span.from_wire(payload) for payload in payloads]
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._lock:
                self.roots.extend(spans)
        return spans

    # -- stack plumbing -----------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        with self._lock:
            self._tick += 1
            span.seq = self._tick
        span.wall_start_us = _wall_us()
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _close(self, span: Span) -> None:
        with self._lock:
            self._tick += 1
            span.end_seq = self._tick
        span.wall_dur_us = max(0, _wall_us() - span.wall_start_us)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:             # unwound through an exception
            del stack[stack.index(span):]

    # -- lifecycle ----------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.roots = []
        self._tick = 0
        self._local = threading.local()

    def drain(self) -> List[Span]:
        """Return and clear the recorded roots."""
        roots, self.roots = self.roots, []
        return roots
