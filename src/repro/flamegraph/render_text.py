"""ASCII flame-graph rendering.

Produces a fixed-width rendition in which every line is one stack depth and
frame widths are proportional to their weight -- good enough to eyeball the
same "which box is widest" comparisons the paper makes between Figure 3's
subplots, and convenient for golden-output tests.
"""

from __future__ import annotations

from typing import List

from repro.flamegraph.model import FlameNode


def _layout(node: FlameNode, start: float, width: float, rows: List[List[tuple]]) -> None:
    while len(rows) <= node.depth:
        rows.append([])
    if node.depth >= 0:
        rows[node.depth].append((start, width, node.name))
    if node.value == 0 or not node.children:
        return
    offset = start
    for child in node.sorted_children():
        child_width = width * (child.value / node.value)
        _layout(child, offset, child_width, rows)
        offset += child_width


def render_text(root: FlameNode, width: int = 100, show_root: bool = False) -> str:
    """Render the flame graph as fixed-width text, one row per depth."""
    if root.value == 0:
        return "(empty flame graph)"
    rows: List[List[tuple]] = []
    _layout(root, 0.0, float(width), rows)
    lines: List[str] = []
    start_row = 0 if show_root else 1
    for depth in range(len(rows) - 1, start_row - 1, -1):
        line = [" "] * width
        for start, cell_width, name in rows[depth]:
            begin = int(round(start))
            end = max(begin + 1, int(round(start + cell_width)))
            end = min(end, width)
            if end <= begin:
                continue
            cell = max(1, end - begin)
            label = name[:cell - 1] if cell > 2 else ""
            text = ("|" + label).ljust(cell, "-")
            line[begin:end] = list(text[:cell])
        lines.append("".join(line).rstrip())
    return "\n".join(lines)


def render_summary(root: FlameNode, top: int = 10) -> str:
    """A one-line-per-function summary of the widest frames."""
    totals = {}

    def walk(node: FlameNode) -> None:
        if node.depth > 0:
            totals[node.name] = totals.get(node.name, 0) + node.self_value
        for child in node.children.values():
            walk(child)

    walk(root)
    total = root.value or 1
    lines = []
    for name, value in sorted(totals.items(), key=lambda kv: kv[1], reverse=True)[:top]:
        lines.append(f"{100.0 * value / total:6.2f}%  {name}")
    return "\n".join(lines)
