"""Flame graphs (Brendan Gregg style) built from perf samples.

The x-axis is the stack-profile population (frames sorted alphabetically to
maximise merging), the y-axis is stack depth, and a frame's width is
proportional to how often it appeared in the sampled stacks -- either sample
counts (cycle-proportional, when cycles drive the sampling) or any group
event's per-sample delta (the instructions-retired variant of the paper's
Figure 3).
"""

from repro.flamegraph.model import (
    FlameNode,
    build_flame_graph,
    fold_stacks,
    merge_flame_graphs,
)
from repro.flamegraph.render_text import render_text
from repro.flamegraph.render_svg import render_svg
from repro.flamegraph.diff import diff_flame_graphs, FrameDiff

__all__ = [
    "FlameNode",
    "build_flame_graph",
    "fold_stacks",
    "merge_flame_graphs",
    "render_text",
    "render_svg",
    "diff_flame_graphs",
    "FrameDiff",
]
