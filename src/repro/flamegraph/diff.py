"""Differential flame graphs.

The paper's Section 5.1 motivates comparing flame graphs across platforms or
metrics ("as straightforward as comparing two images"): a function whose
instructions-retired frame is 8x wider on one platform signals missing
vectorisation.  This module makes that comparison quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.flamegraph.model import FlameNode


@dataclass
class FrameDiff:
    """One function's share in two flame graphs."""

    function: str
    fraction_a: float
    fraction_b: float

    @property
    def ratio(self) -> float:
        """How many times wider the frame is in B than in A."""
        if self.fraction_a == 0:
            return float("inf") if self.fraction_b > 0 else 1.0
        return self.fraction_b / self.fraction_a

    @property
    def delta(self) -> float:
        return self.fraction_b - self.fraction_a


def _self_fractions(root: FlameNode) -> Dict[str, float]:
    totals: Dict[str, int] = {}

    def walk(node: FlameNode) -> None:
        if node.depth > 0:
            totals[node.name] = totals.get(node.name, 0) + node.self_value
        for child in node.children.values():
            walk(child)

    walk(root)
    denominator = root.value or 1
    return {name: value / denominator for name, value in totals.items()}


def diff_flame_graphs(a: FlameNode, b: FlameNode, minimum_fraction: float = 0.0
                      ) -> List[FrameDiff]:
    """Compare two flame graphs function by function (self-time fractions)."""
    fractions_a = _self_fractions(a)
    fractions_b = _self_fractions(b)
    names = set(fractions_a) | set(fractions_b)
    diffs = [
        FrameDiff(
            function=name,
            fraction_a=fractions_a.get(name, 0.0),
            fraction_b=fractions_b.get(name, 0.0),
        )
        for name in names
    ]
    diffs = [
        d for d in diffs
        if max(d.fraction_a, d.fraction_b) >= minimum_fraction
    ]
    diffs.sort(key=lambda d: abs(d.delta), reverse=True)
    return diffs
