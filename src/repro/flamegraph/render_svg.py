"""SVG flame-graph rendering (self-contained, no external dependencies)."""

from __future__ import annotations

import html
import zlib
from typing import List

from repro.flamegraph.model import FlameNode

_FRAME_HEIGHT = 16
_PALETTE = [
    "#e5541b", "#ef7f32", "#f5a54a", "#fac863", "#d6732c",
    "#e0893a", "#c9601f", "#f09044", "#e36e26", "#f7b055",
]


def _color_for(name: str) -> str:
    # Stable across processes (hash() of a str is PYTHONHASHSEED-randomised):
    # the same frame always gets the same colour in regenerated SVGs.
    return _PALETTE[zlib.crc32(name.encode("utf-8")) % len(_PALETTE)]


def _emit(node: FlameNode, x: float, width: float, total_depth: int,
          image_width: int, parts: List[str]) -> None:
    if node.depth > 0 and width >= 0.5:
        y = (total_depth - node.depth) * _FRAME_HEIGHT
        label = html.escape(node.name)
        title = f"{label} ({node.value})"
        parts.append(
            f'<g><title>{title}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{width:.2f}" height="{_FRAME_HEIGHT - 1}" '
            f'fill="{_color_for(node.name)}" rx="2" ry="2"/>'
        )
        if width > 40:
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + 11}" font-size="10" '
                f'font-family="monospace">{label[: int(width / 7)]}</text>'
            )
        parts.append("</g>")
    if node.value == 0:
        return
    offset = x
    for child in node.sorted_children():
        child_width = width * (child.value / node.value)
        _emit(child, offset, child_width, total_depth, image_width, parts)
        offset += child_width


def render_svg(root: FlameNode, title: str = "Flame Graph", width: int = 1000) -> str:
    """Render the flame graph to an SVG document string."""
    depth = max(1, root.max_depth())
    height = (depth + 2) * _FRAME_HEIGHT + 24
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#f8f8f8"/>',
        f'<text x="{width / 2:.0f}" y="16" text-anchor="middle" font-size="13" '
        f'font-family="sans-serif">{html.escape(title)}</text>',
        f'<g transform="translate(0, 24)">',
    ]
    _emit(root, 0.0, float(width), depth, width, parts)
    parts.append("</g></svg>")
    return "\n".join(parts)


def write_svg(root: FlameNode, path: str, title: str = "Flame Graph",
              width: int = 1000) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(root, title=title, width=width))
