"""Flame-graph data model: folded stacks and the merged frame tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.kernel.ring_buffer import SampleRecord


class FlameNode:
    """One frame in the merged flame graph."""

    def __init__(self, name: str, depth: int = 0):
        self.name = name
        self.depth = depth
        self.value = 0                      # weight of samples ending here or below
        self.self_value = 0                 # weight of samples ending exactly here
        self.children: Dict[str, "FlameNode"] = {}

    def child(self, name: str) -> "FlameNode":
        node = self.children.get(name)
        if node is None:
            node = FlameNode(name, self.depth + 1)
            self.children[name] = node
        return node

    def sorted_children(self) -> List["FlameNode"]:
        """Children sorted alphabetically (the flame-graph x-axis convention)."""
        return [self.children[name] for name in sorted(self.children)]

    def total_frames(self) -> int:
        return 1 + sum(child.total_frames() for child in self.children.values())

    def max_depth(self) -> int:
        if not self.children:
            return self.depth
        return max(child.max_depth() for child in self.children.values())

    def find(self, name: str) -> Optional["FlameNode"]:
        """Depth-first search for the first frame called *name*."""
        if self.name == name:
            return self
        for child in self.sorted_children():
            found = child.find(name)
            if found is not None:
                return found
        return None

    def frame_fraction(self, name: str) -> float:
        """Combined weight of all frames named *name*, as a fraction of the root."""
        if self.value == 0:
            return 0.0
        total = 0

        def walk(node: "FlameNode") -> None:
            nonlocal total
            if node.name == name:
                total += node.value
                return  # do not double-count descendants of a matching frame
            for child in node.children.values():
                walk(child)

        walk(self)
        return total / self.value

    def __repr__(self) -> str:
        return f"FlameNode({self.name!r}, value={self.value}, children={len(self.children)})"


def _sample_weight(sample: SampleRecord, weight: str,
                   previous: Dict[str, int]) -> int:
    """Weight of one sample: 1 (sample count) or a group event's delta."""
    if weight == "samples":
        return 1
    current = sample.group_values.get(weight)
    if current is None:
        return 1
    last = previous.get(weight, 0)
    delta = max(0, current - last)
    previous[weight] = max(last, current)
    return delta


def build_flame_graph(samples: Sequence[SampleRecord], weight: str = "samples") -> FlameNode:
    """Merge samples into a flame graph.

    ``weight`` is ``"samples"`` or the name of a group event
    (``"instructions"``, ``"cycles"``); event weights use per-sample deltas of
    the cumulative group readouts.
    """
    root = FlameNode("all")
    previous: Dict[str, int] = {}
    for sample in samples:
        value = _sample_weight(sample, weight, previous)
        if value <= 0:
            continue
        # Call chains are leaf-first; flame graphs grow root-first.
        stack = list(reversed(sample.callchain)) or ["<unknown>"]
        root.value += value
        node = root
        for frame in stack:
            node = node.child(frame)
            node.value += value
        node.self_value += value
    return root


def merge_flame_graphs(named_roots: Dict[str, FlameNode],
                       name: str = "all") -> FlameNode:
    """Graft several flame graphs under one root, labelled by their key.

    Used for SMP recordings: each hart's flame graph becomes a ``cpuN``
    frame directly under the merged root, so per-hart time is visible as
    first-level frame widths while the per-hart call trees stay intact.
    Keys are laid out in sorted order (the flame-graph x-axis convention).
    """

    def graft(parent: FlameNode, node: FlameNode) -> None:
        for child in node.children.values():
            target = parent.child(child.name)
            target.value += child.value
            target.self_value += child.self_value
            graft(target, child)

    root = FlameNode(name)
    for label in sorted(named_roots):
        source = named_roots[label]
        if source.value == 0:
            continue
        frame = root.child(label)
        frame.value += source.value
        frame.self_value += source.self_value
        root.value += source.value
        graft(frame, source)
    return root


def fold_stacks(samples: Sequence[SampleRecord], weight: str = "samples") -> List[str]:
    """Produce Brendan Gregg's folded-stack format (``a;b;c count``)."""
    collapsed: Dict[Tuple[str, ...], int] = {}
    previous: Dict[str, int] = {}
    for sample in samples:
        value = _sample_weight(sample, weight, previous)
        if value <= 0:
            continue
        stack = tuple(reversed(sample.callchain)) or ("<unknown>",)
        collapsed[stack] = collapsed.get(stack, 0) + value
    lines = [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(collapsed.items())
    ]
    return lines
