"""The IR execution engine.

Semantics and timing are computed together, instruction by instruction:

* the *interpreter* part computes real values (loads/stores go through the
  :class:`~repro.vm.memory.Memory`), so workload results can be checked
  against numpy references in tests;
* the *accounting* part lowers each executed instruction through the target
  lowering into machine ops and retires them on the platform's core timing
  model, which updates caches, the branch predictor and every PMU counter --
  and therefore can raise sampling interrupts mid-run.

External calls (the ``mperf_roofline_internal_*`` runtime and a small libm
subset) are dispatched to registered Python handlers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import FloatType, IntType, PointerType, Type
from repro.compiler.ir.values import Argument, Constant, UndefValue, Value
from repro.compiler.targets.base import TargetLowering
from repro.compiler.transforms.vectorize import VECTOR_WIDTH_KEY
from repro.isa.machine_ops import MachineOp
from repro.kernel.task import Task
from repro.platforms.machine import Machine
from repro.vm.memory import Memory


class ExternalCallError(Exception):
    """Raised when a call to an undefined external function cannot be dispatched."""


@dataclass
class ExecutionStats:
    """What one engine has executed so far."""

    ir_instructions: int = 0
    machine_ops: int = 0
    calls: int = 0
    external_calls: int = 0
    per_function_instructions: Dict[str, int] = field(default_factory=dict)


#: Builtin math externals (a tiny libm) available to KernelC programs.
_BUILTIN_MATH: Dict[str, Callable] = {
    "sqrtf": lambda x: math.sqrt(x) if x >= 0 else float("nan"),
    "fabsf": abs,
    "expf": math.exp,
    "logf": lambda x: math.log(x) if x > 0 else float("-inf"),
    "fminf": min,
    "fmaxf": max,
}


class _Frame:
    """One activation record."""

    __slots__ = ("function", "values", "stack_token")

    def __init__(self, function: Function, stack_token: int):
        self.function = function
        self.values: Dict[Value, object] = {}
        self.stack_token = stack_token


class ExecutionEngine:
    """Interprets a module on (optionally) a modelled machine.

    Parameters
    ----------
    module:
        The IR module to execute.
    machine:
        Platform model that accounts time and PMU events.  ``None`` runs the
        program functionally only (fast path for semantics tests).
    target:
        Target lowering; required when *machine* is given.
    task:
        The profiled task whose call stack samples should attribute to.
    memory:
        Shared memory object (one is created if not supplied), so callers can
        pre-allocate and later inspect arrays.
    external_handlers:
        Objects with ``handles(name) -> bool`` and ``call(name, args)``
        methods consulted (in order) for calls to declared-only functions.
        The roofline runtime registers itself this way.
    """

    def __init__(
        self,
        module: Module,
        machine: Optional[Machine] = None,
        target: Optional[TargetLowering] = None,
        task: Optional[Task] = None,
        memory: Optional[Memory] = None,
        external_handlers: Optional[Sequence[object]] = None,
    ):
        if machine is not None and target is None:
            raise ValueError("a target lowering is required when a machine is given")
        self.module = module
        self.machine = machine
        self.target = target
        self.task = task
        self.memory = memory if memory is not None else Memory()
        self.external_handlers: List[object] = list(external_handlers or [])
        self.stats = ExecutionStats()
        self._vector_counters: Dict[int, int] = {}
        self._pc_of: Dict[int, int] = {}
        self._assign_pcs()
        self._accounting_enabled = machine is not None

    # -- setup -----------------------------------------------------------------------------

    def _assign_pcs(self) -> None:
        pc = 0x0040_0000
        for function in self.module:
            for block in function.blocks:
                for inst in block.instructions:
                    self._pc_of[id(inst)] = pc
                    pc += 4

    def register_external_handler(self, handler: object) -> None:
        self.external_handlers.append(handler)

    def set_accounting(self, enabled: bool) -> None:
        """Temporarily disable timing/PMU accounting (used by microbenchmarks)."""
        self._accounting_enabled = enabled and self.machine is not None

    # -- public API -------------------------------------------------------------------------

    def run(self, function_name: str, args: Sequence[object] = ()) -> object:
        """Execute *function_name* with *args*; returns its return value."""
        function = self.module.get_function(function_name)
        if function.is_declaration:
            raise ValueError(f"cannot run declaration @{function_name}")
        if len(args) != len(function.args):
            raise ValueError(
                f"@{function_name} expects {len(function.args)} arguments, "
                f"got {len(args)}"
            )
        return self._call_function(function, list(args))

    # -- call machinery -----------------------------------------------------------------------

    def _call_function(self, function: Function, args: List[object]) -> object:
        frame = _Frame(function, self.memory.push_stack_frame())
        for formal, actual in zip(function.args, args):
            frame.values[formal] = actual
        if self.task is not None:
            entry_pc = 0
            if function.blocks and function.entry_block.instructions:
                entry_pc = self._pc_of[id(function.entry_block.instructions[0])]
            self.task.push_frame(function.name, pc=entry_pc,
                                 source_file=function.source_file)
        self.stats.calls += 1
        try:
            return self._run_frame(frame)
        finally:
            self.memory.pop_stack_frame(frame.stack_token)
            if self.task is not None:
                self.task.pop_frame()

    def _run_frame(self, frame: _Frame) -> object:
        function = frame.function
        per_fn = self.stats.per_function_instructions
        block = function.entry_block
        prev_block: Optional[BasicBlock] = None
        while True:
            # Phi nodes read their incoming values simultaneously.
            phis = block.phis()
            if phis:
                incoming = [
                    self._eval(frame, phi.incoming_for(prev_block)) for phi in phis
                ]
                for phi, value in zip(phis, incoming):
                    frame.values[phi] = value
                    self._account(phi, frame)

            next_block: Optional[BasicBlock] = None
            return_value: object = None
            returned = False
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    continue
                self.stats.ir_instructions += 1
                per_fn[function.name] = per_fn.get(function.name, 0) + 1

                if isinstance(inst, Branch):
                    condition = bool(self._eval(frame, inst.condition))
                    self._account(inst, frame, taken=condition)
                    next_block = inst.then_block if condition else inst.else_block
                    break
                if isinstance(inst, Jump):
                    self._account(inst, frame, taken=True)
                    next_block = inst.target
                    break
                if isinstance(inst, Ret):
                    self._account(inst, frame, taken=True)
                    return_value = (
                        self._eval(frame, inst.value) if inst.value is not None else None
                    )
                    returned = True
                    break

                result = self._execute(frame, inst)
                if not inst.type.is_void:
                    frame.values[inst] = result

            if returned:
                return return_value
            if next_block is None:
                raise RuntimeError(
                    f"block {block.name} in @{function.name} fell through without "
                    "a terminator"
                )
            prev_block, block = block, next_block

    # -- instruction execution -----------------------------------------------------------------

    def _eval(self, frame: _Frame, value: Optional[Value]) -> object:
        if value is None:
            return None
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, Function):
            return value
        try:
            return frame.values[value]
        except KeyError:
            raise RuntimeError(
                f"value %{value.name} used before definition in @{frame.function.name}"
            )

    def _execute(self, frame: _Frame, inst: Instruction) -> object:
        if isinstance(inst, BinaryOp):
            result = self._execute_binary(frame, inst)
            self._account(inst, frame)
            return result
        if isinstance(inst, CompareOp):
            result = self._execute_compare(frame, inst)
            self._account(inst, frame)
            return result
        if isinstance(inst, Load):
            address = int(self._eval(frame, inst.pointer))
            value = self.memory.load_typed(address, inst.type)
            self._account(inst, frame, address=address)
            return value
        if isinstance(inst, Store):
            address = int(self._eval(frame, inst.pointer))
            self.memory.store_typed(address, inst.value.type,
                                    self._eval(frame, inst.value))
            self._account(inst, frame, address=address)
            return None
        if isinstance(inst, Alloca):
            address = self.memory.stack_alloc(max(1, inst.allocated_bytes))
            self._account(inst, frame)
            return address
        if isinstance(inst, GetElementPtr):
            base = int(self._eval(frame, inst.base))
            index = int(self._eval(frame, inst.index))
            self._account(inst, frame)
            return base + index * inst.element_bytes
        if isinstance(inst, Call):
            return self._execute_call(frame, inst)
        if isinstance(inst, Cast):
            result = self._execute_cast(frame, inst)
            self._account(inst, frame)
            return result
        if isinstance(inst, Select):
            condition = bool(self._eval(frame, inst.condition))
            result = self._eval(frame, inst.true_value if condition else inst.false_value)
            self._account(inst, frame)
            return result
        raise RuntimeError(f"cannot execute instruction {inst.opcode}")

    def _execute_binary(self, frame: _Frame, inst: BinaryOp) -> object:
        lhs = self._eval(frame, inst.lhs)
        rhs = self._eval(frame, inst.rhs)
        opcode = inst.opcode
        if inst.is_float_op:
            lhs, rhs = float(lhs), float(rhs)
            if opcode == "fadd":
                return lhs + rhs
            if opcode == "fsub":
                return lhs - rhs
            if opcode == "fmul":
                return lhs * rhs
            if opcode == "fdiv":
                return lhs / rhs if rhs != 0.0 else math.copysign(float("inf"), lhs)
            if opcode == "frem":
                return math.fmod(lhs, rhs) if rhs != 0.0 else float("nan")
        a, b = int(lhs), int(rhs)
        type_ = inst.type
        assert isinstance(type_, IntType)
        if opcode == "add":
            return type_.wrap(a + b)
        if opcode == "sub":
            return type_.wrap(a - b)
        if opcode == "mul":
            return type_.wrap(a * b)
        if opcode in ("sdiv", "udiv"):
            if b == 0:
                return 0
            quotient = abs(a) // abs(b)
            return type_.wrap(-quotient if (a < 0) != (b < 0) else quotient)
        if opcode in ("srem", "urem"):
            if b == 0:
                return 0
            quotient = abs(a) // abs(b)
            signed = -quotient if (a < 0) != (b < 0) else quotient
            return type_.wrap(a - b * signed)
        if opcode == "and":
            return type_.wrap(a & b)
        if opcode == "or":
            return type_.wrap(a | b)
        if opcode == "xor":
            return type_.wrap(a ^ b)
        if opcode == "shl":
            return type_.wrap(a << (b % type_.bits))
        if opcode == "lshr":
            mask = (1 << type_.bits) - 1
            return type_.wrap((a & mask) >> (b % type_.bits))
        if opcode == "ashr":
            return type_.wrap(a >> (b % type_.bits))
        raise RuntimeError(f"unhandled binary opcode {opcode}")

    def _execute_compare(self, frame: _Frame, inst: CompareOp) -> int:
        lhs = self._eval(frame, inst.lhs)
        rhs = self._eval(frame, inst.rhs)
        predicate = inst.predicate
        if inst.opcode == "fcmp":
            a, b = float(lhs), float(rhs)
            table = {
                "oeq": a == b, "one": a != b, "olt": a < b,
                "ole": a <= b, "ogt": a > b, "oge": a >= b,
            }
            return int(table[predicate])
        a, b = int(lhs), int(rhs)
        if predicate.startswith("u"):
            bits = inst.lhs.type.bits if isinstance(inst.lhs.type, IntType) else 64
            mask = (1 << bits) - 1
            a &= mask
            b &= mask
        table = {
            "eq": a == b, "ne": a != b,
            "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
            "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
        }
        return int(table[predicate])

    def _execute_cast(self, frame: _Frame, inst: Cast) -> object:
        value = self._eval(frame, inst.value)
        opcode = inst.opcode
        to_type = inst.type
        if opcode in ("sext", "zext", "trunc"):
            assert isinstance(to_type, IntType)
            return to_type.wrap(int(value))
        if opcode in ("fpext", "fptrunc"):
            if isinstance(to_type, FloatType) and to_type.bits == 32:
                import struct as _struct
                return _struct.unpack("<f", _struct.pack("<f", float(value)))[0]
            return float(value)
        if opcode == "sitofp":
            return float(int(value))
        if opcode == "fptosi":
            assert isinstance(to_type, IntType)
            return to_type.wrap(int(value))
        if opcode in ("bitcast", "inttoptr", "ptrtoint"):
            return value
        raise RuntimeError(f"unhandled cast opcode {opcode}")

    def _execute_call(self, frame: _Frame, inst: Call) -> object:
        args = [self._eval(frame, a) for a in inst.operands]
        self._account(inst, frame)
        callee = inst.callee
        callee_fn: Optional[Function] = None
        if isinstance(callee, Function):
            callee_fn = callee
        elif isinstance(callee, str) and self.module.has_function(callee):
            callee_fn = self.module.get_function(callee)

        if callee_fn is not None and not callee_fn.is_declaration:
            return self._call_function(callee_fn, args)
        name = callee if isinstance(callee, str) else callee.name
        return self._dispatch_external(name, args)

    def _dispatch_external(self, name: str, args: List[object]) -> object:
        self.stats.external_calls += 1
        for handler in self.external_handlers:
            if handler.handles(name):
                return handler.call(name, args)
        builtin = _BUILTIN_MATH.get(name)
        if builtin is not None:
            return builtin(*[float(a) for a in args])
        raise ExternalCallError(
            f"no handler registered for external function @{name}"
        )

    # -- accounting ---------------------------------------------------------------------------

    def _account(self, inst: Instruction, frame: _Frame,
                 address: Optional[int] = None, taken: bool = False) -> None:
        if not self._accounting_enabled:
            return
        assert self.machine is not None and self.target is not None
        vector_width = 0
        annotated = inst.metadata.get(VECTOR_WIDTH_KEY, 0)
        if annotated and self.target.supports_vector:
            # One vector machine op is retired every `width` executions of the
            # annotated instruction; the other executions are lanes of it.
            width = min(int(annotated), self.target.vector_sp_lanes)
            if width > 1:
                key = id(inst)
                count = self._vector_counters.get(key, 0) + 1
                self._vector_counters[key] = count
                if count % width != 0:
                    return
                vector_width = width
        pc = self._pc_of.get(id(inst), 0)
        ops = self.target.lower(inst, address=address, taken=taken, pc=pc,
                                vector_width=vector_width)
        task = self.task
        for op in ops:
            self.stats.machine_ops += 1
            self.machine.execute(op, task)
