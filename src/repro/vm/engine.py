"""The IR execution engine.

Semantics and timing are computed together, instruction by instruction:

* the *interpreter* part computes real values (loads/stores go through the
  :class:`~repro.vm.memory.Memory`), so workload results can be checked
  against numpy references in tests;
* the *accounting* part lowers each executed instruction through the target
  lowering into machine ops and retires them on the platform's core timing
  model, which updates caches, the branch predictor and every PMU counter --
  and therefore can raise sampling interrupts mid-run.

External calls (the ``mperf_roofline_internal_*`` runtime and a small libm
subset) are dispatched to registered Python handlers.

Dispatch architecture
---------------------

The engine has two dispatch strategies over the same semantics:

* **Fast dispatch** (the default): each function is *predecoded* once, on
  first entry, into per-basic-block lists of closure-compiled executor
  thunks.  All the per-step decisions the naive interpreter repeats on every
  dynamic instruction -- the ``isinstance`` chain over instruction classes,
  operand classification (constant vs. SSA value), opcode/predicate table
  lookups, integer wrap parameters, ``struct`` format selection for memory
  accesses, vector-annotation checks and the target lowering itself -- are
  resolved at predecode time and captured in the closures.  Target lowerings
  are memoized per ``(instruction, taken, vector_width)`` through
  :meth:`~repro.compiler.targets.base.TargetLowering.lower_cached`, with the
  effective address of memory ops patched into the cached template at
  execution time.

  Retired machine ops are not handed to the machine one at a time either:
  they accumulate in a pending buffer that is flushed in chunks through
  :meth:`~repro.platforms.machine.Machine.execute_batch` -- at call
  boundaries (external handlers read the machine clock), at function return
  (before the task's stack frame pops, so samples attribute correctly) and
  when the buffer reaches a size threshold.  ``execute_batch`` retires op by
  op whenever a sampling counter is armed (every op is then a potential
  overflow boundary), and aggregates event-bus publications per chunk
  otherwise; final counter values, bus totals, sample counts and sample
  contents are bit-identical to the per-op path.

  On top of the batching, basic blocks that retire no addressed memory ops,
  no conditional branches, no calls and no vector-gated ops are classified
  at predecode time and retired through a precomputed
  :class:`~repro.cpu.core.BlockDelta` signature -- one sentinel per block
  execution instead of the block's op stream (see ``block_delta`` below).
  The addressed memory accesses of a flush are collected in stream order
  alongside the pending ops and resolved in one batched
  ``hierarchy.access_lines`` call on the non-sampling path.

* **Slow dispatch** (``fast_dispatch=False``): the original instruction-at-
  a-time interpreter, kept as the reference implementation.  Equivalence
  tests run both engines on the same workload and assert identical results,
  PMU counter values and sample streams.

Preemptible execution
---------------------

:meth:`ExecutionEngine.run_yielding` drives either dispatch path as a
*generator* that yields control after every *quantum* of executed IR
instructions -- the SMP scheduler's time slice.  The yield points are
decided by one shared fuel counter that both dispatch paths decrement at
basic-block boundaries, so the fast and the slow engine are preempted after
exactly the same dynamic instruction, and a multi-hart schedule (and every
per-hart sample stream) is bit-identical across the two.  Pending batched
machine ops are always flushed *before* yielding: once another hart runs,
the shared LLC and the contended memory controller must have observed every
access this hart already executed, in program order.  Predecode state,
the value environment and the whole call stack survive the yield, so a
thread resumes mid-function exactly where it was preempted.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.analysis.blockdelta import STATIC_DELTA_KEY
from repro.analysis.blockdelta import target_key as _static_target_key
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import FloatType, IntType, Type
from repro.compiler.ir.values import Constant, UndefValue, Value
from repro.compiler.targets.base import TargetLowering
from repro.compiler.transforms.vectorize import VECTOR_WIDTH_KEY
from repro.isa.machine_ops import MachineOp
from repro.kernel.task import Task
from repro.platforms.machine import Machine
from repro.telemetry import span as _span
from repro.vm.memory import Memory


class ExternalCallError(Exception):
    """Raised when a call to an undefined external function cannot be dispatched."""


@dataclass
class ExecutionStats:
    """What one engine has executed so far."""

    ir_instructions: int = 0
    machine_ops: int = 0
    calls: int = 0
    external_calls: int = 0
    per_function_instructions: Dict[str, int] = field(default_factory=dict)


def _libm_fminf(a: float, b: float) -> float:
    """``fminf`` with libm NaN semantics: a NaN operand loses."""
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return min(a, b)


def _libm_fmaxf(a: float, b: float) -> float:
    """``fmaxf`` with libm NaN semantics: a NaN operand loses."""
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return max(a, b)


#: Builtin math externals (a tiny libm) available to KernelC programs.
_BUILTIN_MATH: Dict[str, Callable] = {
    "sqrtf": lambda x: math.sqrt(x) if x >= 0 else float("nan"),
    "fabsf": abs,
    "expf": math.exp,
    "logf": lambda x: math.log(x) if x > 0 else float("-inf"),
    "fminf": _libm_fminf,
    "fmaxf": _libm_fmaxf,
}

def _fdiv(a: float, b: float) -> float:
    """IEEE-754 division: x/0 is signed infinity, but 0/0 and NaN/0 are NaN."""
    if b != 0.0:
        return a / b
    if a == 0.0 or math.isnan(a):
        return float("nan")
    return math.copysign(float("inf"), a)


#: Float binary opcodes -> semantics (both dispatch paths share these).
_FLOAT_BINOPS: Dict[str, Callable[[float, float], float]] = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _fdiv,
    "frem": lambda a, b: math.fmod(a, b) if b != 0.0 else float("nan"),
}

#: fcmp ordered predicates -> semantics: ordered comparisons are false
#: whenever an operand is NaN, which Python's operators already give us for
#: every predicate except inequality ("one" is ordered-AND-unequal, so the
#: naive `a != b` would wrongly return true on NaN).
_FCMP_PREDICATES: Dict[str, Callable[[float, float], bool]] = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a < b or a > b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}

_F32_STRUCT = struct.Struct("<f")


class _Frame:
    """One activation record."""

    __slots__ = ("function", "values", "stack_token")

    def __init__(self, function: Function, stack_token: int):
        self.function = function
        self.values: Dict[Value, object] = {}
        self.stack_token = stack_token


class _Ret:
    """Sentinel returned by a predecoded ``ret`` terminator."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value


class _PendingCall:
    """Sentinel returned by a compiled call step in yieldable mode.

    The generator block loop sees it and delegates to the generator call
    machinery (``yield from``), so a preemption inside the callee propagates
    all the way up through the caller's frames.
    """

    __slots__ = ("callee", "args", "dest")

    def __init__(self, callee: "Function", args: List[object],
                 dest: Optional[Instruction]):
        self.callee = callee
        self.args = args
        self.dest = dest


class _DecodedBlock:
    """A basic block predecoded into executor thunks."""

    __slots__ = ("name", "steps", "terminator", "phi_nodes", "phi_sources",
                 "phi_accounts", "instr_count", "delta")

    def __init__(self, name: str):
        self.name = name
        self.steps: List[Callable[[dict], None]] = []
        self.terminator: Optional[Callable[[dict], object]] = None
        self.phi_nodes: List[Phi] = []
        # Predecessor decoded block -> per-phi operand getters.
        self.phi_sources: Dict["_DecodedBlock", List[Callable[[dict], object]]] = {}
        self.phi_accounts: Optional[List[Callable[[], None]]] = None
        self.instr_count = 0
        # Precomputed retirement signature (BlockDelta) of a memory-free,
        # branch-free, call-free block; None when the block must account per
        # op.  When set, the steps are compiled without account thunks and
        # one sentinel is appended to the pending stream per execution.
        self.delta = None


class _DecodedFunction:
    __slots__ = ("entry",)

    def __init__(self, entry: _DecodedBlock):
        self.entry = entry


class ExecutionEngine:
    """Interprets a module on (optionally) a modelled machine.

    Parameters
    ----------
    module:
        The IR module to execute.
    machine:
        Platform model that accounts time and PMU events.  ``None`` runs the
        program functionally only (fast path for semantics tests).
    target:
        Target lowering; required when *machine* is given.
    task:
        The profiled task whose call stack samples should attribute to.
    memory:
        Shared memory object (one is created if not supplied), so callers can
        pre-allocate and later inspect arrays.
    external_handlers:
        Objects with ``handles(name) -> bool`` and ``call(name, args)``
        methods consulted (in order) for calls to declared-only functions.
        The roofline runtime registers itself this way.
    fast_dispatch:
        Use the predecode + closure-dispatch execution path (default).  The
        slow path is the reference interpreter used by equivalence tests.
    block_delta:
        Retire memory-free, branch-free, call-free basic blocks through
        precomputed :class:`~repro.cpu.core.BlockDelta` signatures (default;
        fast dispatch only).  Such a block's retirement cost and event
        pulses are constants of the core config, so one sentinel replaces
        the block's per-op account stream.  Counters, cycles and -- because
        the machine expands sentinels back to per-op retirement whenever a
        sampling counter is armed -- sample streams are bit-identical with
        the flag off; the switch exists for differential suites.
    """

    #: Pending machine ops are flushed to the machine once the buffer reaches
    #: this size (and always at call/return boundaries).
    _FLUSH_THRESHOLD = 2048

    #: Default preemption quantum of :meth:`run_yielding`, in executed IR
    #: instructions.
    DEFAULT_QUANTUM = 20_000

    def __init__(
        self,
        module: Module,
        machine: Optional[Machine] = None,
        target: Optional[TargetLowering] = None,
        task: Optional[Task] = None,
        memory: Optional[Memory] = None,
        external_handlers: Optional[Sequence[object]] = None,
        fast_dispatch: bool = True,
        block_delta: bool = True,
    ):
        if machine is not None and target is None:
            raise ValueError("a target lowering is required when a machine is given")
        self.module = module
        self.machine = machine
        self.target = target
        self.task = task
        self.memory = memory if memory is not None else Memory()
        self.external_handlers: List[object] = list(external_handlers or [])
        self.stats = ExecutionStats()
        self._vector_counters: Dict[int, int] = {}
        self._pc_of: Dict[int, int] = {}
        self._assign_pcs()
        self._accounting_enabled = machine is not None
        self.fast_dispatch = fast_dispatch
        self.block_delta = block_delta
        # Fast-dispatch state: the shared accounting-enabled cell (closures
        # test it so set_accounting() keeps working), the pending retired-op
        # buffer (plus the stream-ordered addressed memory accesses it
        # contains, handed to the hierarchy's batched access_lines), and the
        # per-function predecode cache.
        self._acct_cell: List[bool] = [self._accounting_enabled]
        self._pending: List[MachineOp] = []
        self._pending_mem: List[tuple] = []
        self._suppress_accounts = False
        self._decoded: Dict[Function, _DecodedFunction] = {}
        # Yieldable-execution state: compiled call steps consult the mode
        # cell (so one predecode serves run() and run_yielding()), and both
        # dispatch paths decrement the shared fuel cell at block boundaries.
        self._yield_cell: List[bool] = [False]
        self._fuel: List[int] = [0]

    # -- setup -----------------------------------------------------------------------------

    def _assign_pcs(self) -> None:
        pc = 0x0040_0000
        for function in self.module:
            for block in function.blocks:
                for inst in block.instructions:
                    self._pc_of[id(inst)] = pc  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
                    pc += 4

    def register_external_handler(self, handler: object) -> None:
        self.external_handlers.append(handler)

    def set_accounting(self, enabled: bool) -> None:
        """Temporarily disable timing/PMU accounting (used by microbenchmarks)."""
        self._accounting_enabled = enabled and self.machine is not None
        self._acct_cell[0] = self._accounting_enabled

    # -- public API -------------------------------------------------------------------------

    def run(self, function_name: str, args: Sequence[object] = ()) -> object:
        """Execute *function_name* with *args*; returns its return value."""
        function = self.module.get_function(function_name)
        if function.is_declaration:
            raise ValueError(f"cannot run declaration @{function_name}")
        if len(args) != len(function.args):
            raise ValueError(
                f"@{function_name} expects {len(function.args)} arguments, "
                f"got {len(args)}"
            )
        yield_cell = self._yield_cell
        if not yield_cell[0]:
            return self._call_function(function, list(args))
        # run() while a run_yielding() generator of this engine is suspended:
        # compiled call steps consult the shared mode cell, so it must read
        # False for the duration or internal calls would be handed back as
        # _PendingCall markers that the non-generator loop cannot execute.
        yield_cell[0] = False
        try:
            return self._call_function(function, list(args))
        finally:
            yield_cell[0] = True

    def run_yielding(self, function_name: str, args: Sequence[object] = (),
                     quantum: Optional[int] = None):
        """Execute *function_name* as a preemptible generator.

        Yields ``None`` after every *quantum* executed IR instructions (at
        the next basic-block boundary, wherever that is in the call stack)
        and returns the function's return value when it finishes, so a
        scheduler can drive it with ``yield from``.  Pending batched machine
        ops are flushed before every yield; both dispatch paths yield after
        the same dynamic instruction, which keeps multi-hart interleavings
        (and therefore shared-cache state, DRAM contention and sample
        streams) bit-identical between ``fast_dispatch=True`` and ``False``.

        Validation happens here, eagerly -- a bad function name, argument
        count or quantum raises at the call site, not at the scheduler's
        first ``next()``.
        """
        if quantum is None:
            quantum = self.DEFAULT_QUANTUM
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1 (got {quantum})")
        function = self.module.get_function(function_name)
        if function.is_declaration:
            raise ValueError(f"cannot run declaration @{function_name}")
        if len(args) != len(function.args):
            raise ValueError(
                f"@{function_name} expects {len(function.args)} arguments, "
                f"got {len(args)}"
            )
        return self._drive_yielding(function, list(args), quantum)

    def _drive_yielding(self, function: Function, args: List[object],
                        quantum: int):
        """The generator behind :meth:`run_yielding` (already validated)."""
        fuel = self._fuel
        yield_cell = self._yield_cell
        fuel[0] = quantum
        previous_mode = yield_cell[0]
        yield_cell[0] = True
        try:
            inner = self._call_function_gen(function, args)
            while True:
                try:
                    next(inner)
                except StopIteration as stop:
                    return stop.value
                yield
                fuel[0] = quantum
        finally:
            yield_cell[0] = previous_mode

    # -- call machinery -----------------------------------------------------------------------

    def _call_function(self, function: Function, args: List[object]) -> object:
        frame = _Frame(function, self.memory.push_stack_frame())
        for formal, actual in zip(function.args, args):
            frame.values[formal] = actual
        if self.task is not None:
            entry_pc = 0
            if function.blocks and function.entry_block.instructions:
                entry_pc = self._pc_of[id(function.entry_block.instructions[0])]  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
            self.task.push_frame(function.name, pc=entry_pc,
                                 source_file=function.source_file)
        self.stats.calls += 1
        try:
            if self.fast_dispatch:
                return self._run_frame_fast(frame)
            return self._run_frame_slow(frame)
        finally:
            # Retire anything still pending before the frame pops, so any
            # sampling interrupt attributes to the call stack that executed
            # the ops.
            if self._pending:
                self._flush()
            self.memory.pop_stack_frame(frame.stack_token)
            if self.task is not None:
                self.task.pop_frame()

    def _flush(self) -> None:
        """Retire all pending machine ops on the machine."""
        pending = self._pending
        if pending:
            pending_mem = self._pending_mem
            self.machine.execute_batch(pending, self.task,
                                       pending_mem if pending_mem else None)
            del pending[:]
            if pending_mem:
                del pending_mem[:]

    # -- yieldable call machinery --------------------------------------------------------------

    def _call_function_gen(self, function: Function, args: List[object]):
        """Generator twin of :meth:`_call_function` (same frame discipline)."""
        frame = _Frame(function, self.memory.push_stack_frame())
        for formal, actual in zip(function.args, args):
            frame.values[formal] = actual
        if self.task is not None:
            entry_pc = 0
            if function.blocks and function.entry_block.instructions:
                entry_pc = self._pc_of[id(function.entry_block.instructions[0])]  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
            self.task.push_frame(function.name, pc=entry_pc,
                                 source_file=function.source_file)
        self.stats.calls += 1
        try:
            if self.fast_dispatch:
                result = yield from self._run_frame_fast_gen(frame)
            else:
                result = yield from self._run_frame_slow_gen(frame)
            return result
        finally:
            if self._pending:
                self._flush()
            self.memory.pop_stack_frame(frame.stack_token)
            if self.task is not None:
                self.task.pop_frame()

    def _run_frame_fast_gen(self, frame: _Frame):
        """Generator twin of :meth:`_run_frame_fast`.

        Identical block loop, plus: compiled call steps return a
        :class:`_PendingCall` (the mode cell is set) that is delegated to
        the generator call machinery, and the shared fuel cell is decremented
        by each block's instruction count -- when it runs out, pending ops
        are flushed and control is yielded.
        """
        function = frame.function
        decoded = self._decoded.get(function)
        if decoded is None:
            decoded = self._decode_function(function)
        values = frame.values
        stats = self.stats
        per_fn = stats.per_function_instructions
        fname = function.name
        pending = self._pending
        flush = self._flush
        threshold = self._FLUSH_THRESHOLD
        fuel = self._fuel
        acct_cell = self._acct_cell
        call_gen = self._call_function_gen
        block = decoded.entry
        prev: Optional[_DecodedBlock] = None
        try:
            while True:
                phis = block.phi_nodes
                if phis:
                    getters = block.phi_sources.get(prev)
                    if getters is None:
                        for phi in phis:
                            values[phi] = None
                    else:
                        incoming = [g(values) for g in getters]
                        for phi, value in zip(phis, incoming):
                            values[phi] = value
                    accounts = block.phi_accounts
                    if accounts is not None:
                        for account in accounts:
                            account()
                stats.ir_instructions += block.instr_count
                per_fn[fname] = per_fn.get(fname, 0) + block.instr_count
                for step in block.steps:
                    marker = step(values)
                    if marker is not None:
                        result = yield from call_gen(marker.callee, marker.args)
                        if marker.dest is not None:
                            values[marker.dest] = result
                nxt = block.terminator(values)
                delta = block.delta
                if delta is not None and acct_cell[0]:
                    pending.append(delta)
                    stats.machine_ops += delta.instructions
                if nxt.__class__ is _Ret:
                    return nxt.value
                fuel[0] -= block.instr_count
                if fuel[0] <= 0:
                    if pending:
                        flush()
                    yield
                elif len(pending) >= threshold:
                    flush()
                prev = block
                block = nxt
        except KeyError as exc:
            key = exc.args[0] if exc.args else None
            if isinstance(key, Value):
                raise RuntimeError(
                    f"value %{key.name} used before definition in "
                    f"@{frame.function.name}"
                ) from None
            raise

    def _run_frame_slow_gen(self, frame: _Frame):
        """The reference interpreter's dispatch loop (the one and only copy).

        Retires ops one at a time (nothing is ever pending), so a quantum
        boundary is just a yield; it lands after exactly the same executed
        IR instruction as in the fast twin because both decrement the one
        fuel cell per block they complete.  :meth:`_run_frame_slow` drives
        this generator to completion for plain ``run()`` calls, ignoring the
        side-effect-free yields.
        """
        function = frame.function
        per_fn = self.stats.per_function_instructions
        fuel = self._fuel
        block = function.entry_block
        prev_block: Optional[BasicBlock] = None
        while True:
            phis = block.phis()
            if phis:
                incoming = [
                    self._eval(frame, phi.incoming_for(prev_block)) for phi in phis
                ]
                for phi, value in zip(phis, incoming):
                    frame.values[phi] = value
                    self._account(phi, frame)

            next_block: Optional[BasicBlock] = None
            return_value: object = None
            returned = False
            executed = 0
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    continue
                self.stats.ir_instructions += 1
                per_fn[function.name] = per_fn.get(function.name, 0) + 1
                executed += 1

                if isinstance(inst, Branch):
                    condition = bool(self._eval(frame, inst.condition))
                    self._account(inst, frame, taken=condition)
                    next_block = inst.then_block if condition else inst.else_block
                    break
                if isinstance(inst, Jump):
                    self._account(inst, frame, taken=True)
                    next_block = inst.target
                    break
                if isinstance(inst, Ret):
                    self._account(inst, frame, taken=True)
                    return_value = (
                        self._eval(frame, inst.value) if inst.value is not None else None
                    )
                    returned = True
                    break

                if isinstance(inst, Call):
                    result = yield from self._execute_call_gen(frame, inst)
                else:
                    result = self._execute(frame, inst)
                if not inst.type.is_void:
                    frame.values[inst] = result

            if returned:
                return return_value
            if next_block is None:
                raise RuntimeError(
                    f"block {block.name} in @{function.name} fell through without "
                    "a terminator"
                )
            fuel[0] -= executed
            if fuel[0] <= 0:
                yield
            prev_block, block = block, next_block

    def _execute_call_gen(self, frame: _Frame, inst: Call):
        """Evaluate a call instruction on the reference path (generator)."""
        args = [self._eval(frame, a) for a in inst.operands]
        self._account(inst, frame)
        callee = inst.callee
        callee_fn: Optional[Function] = None
        if isinstance(callee, Function):
            callee_fn = callee
        elif isinstance(callee, str) and self.module.has_function(callee):
            callee_fn = self.module.get_function(callee)

        if callee_fn is not None and not callee_fn.is_declaration:
            result = yield from self._call_function_gen(callee_fn, args)
            return result
        name = callee if isinstance(callee, str) else callee.name
        return self._dispatch_external(name, args)

    # -- fast dispatch ------------------------------------------------------------------------

    def _run_frame_fast(self, frame: _Frame) -> object:
        function = frame.function
        decoded = self._decoded.get(function)
        if decoded is None:
            decoded = self._decode_function(function)
        values = frame.values
        stats = self.stats
        per_fn = stats.per_function_instructions
        fname = function.name
        pending = self._pending
        flush = self._flush
        threshold = self._FLUSH_THRESHOLD
        acct_cell = self._acct_cell
        block = decoded.entry
        prev: Optional[_DecodedBlock] = None
        # Executed-instruction bookkeeping is accumulated locally and folded
        # into the (externally only observed at rest) stats on frame exit.
        executed = 0
        try:
            while True:
                phis = block.phi_nodes
                if phis:
                    getters = block.phi_sources.get(prev)
                    if getters is None:
                        for phi in phis:
                            values[phi] = None
                    else:
                        incoming = [g(values) for g in getters]
                        for phi, value in zip(phis, incoming):
                            values[phi] = value
                    accounts = block.phi_accounts
                    if accounts is not None:
                        for account in accounts:
                            account()
                executed += block.instr_count
                for step in block.steps:
                    step(values)
                nxt = block.terminator(values)
                delta = block.delta
                if delta is not None and acct_cell[0]:
                    pending.append(delta)
                    stats.machine_ops += delta.instructions
                if nxt.__class__ is _Ret:
                    return nxt.value
                if len(pending) >= threshold:
                    flush()
                prev = block
                block = nxt
        except KeyError as exc:
            key = exc.args[0] if exc.args else None
            if isinstance(key, Value):
                raise RuntimeError(
                    f"value %{key.name} used before definition in "
                    f"@{frame.function.name}"
                ) from None
            raise
        finally:
            stats.ir_instructions += executed
            per_fn[fname] = per_fn.get(fname, 0) + executed

    # -- predecoding --------------------------------------------------------------------------

    def _decode_function(self, function: Function) -> _DecodedFunction:
        with _span("predecode", cat="engine", function=function.name,
                   blocks=len(function.blocks)):
            dmap = {block: _DecodedBlock(block.name) for block in function.blocks}
            for block in function.blocks:
                self._decode_block(function, block, dmap)
            decoded = _DecodedFunction(dmap[function.entry_block])
            self._decoded[function] = decoded
            return decoded

    def _decode_block(self, function: Function, block: BasicBlock,
                      dmap: Dict[BasicBlock, _DecodedBlock]) -> None:
        d = dmap[block]
        phis = block.phis()
        if phis:
            d.phi_nodes = phis
            preds: List[BasicBlock] = []
            for phi in phis:
                for _value, pred in phi.incoming:
                    if pred not in preds:
                        preds.append(pred)
            for pred in preds:
                d.phi_sources[dmap[pred]] = [
                    self._compile_operand(phi.incoming_for(pred)) for phi in phis
                ]
            accounts = [self._compile_plain_account(phi) for phi in phis]
            if any(account is not None for account in accounts):
                d.phi_accounts = [a for a in accounts if a is not None]

        body: List[Instruction] = []
        terminator: Optional[Instruction] = None
        count = 0
        for inst in block.instructions:
            if isinstance(inst, Phi):
                continue
            count += 1
            if isinstance(inst, (Branch, Jump, Ret)):
                terminator = inst
                break
            body.append(inst)
        d.instr_count = count
        delta = self._classify_block_delta(block, body, terminator)
        if delta is not None:
            # The delta carries the whole block's constant retirement
            # signature; compile the executor thunks accounting-free.
            d.delta = delta
            self._suppress_accounts = True
        try:
            d.steps = [self._compile_inst(inst) for inst in body]
            if terminator is None:
                block_name, function_name = block.name, function.name

                def fell_through(values: dict) -> object:
                    raise RuntimeError(
                        f"block {block_name} in @{function_name} fell through "
                        "without a terminator"
                    )

                d.terminator = fell_through
            else:
                d.terminator = self._compile_terminator(terminator, dmap)
        finally:
            self._suppress_accounts = False

    def _classify_block_delta(self, block: BasicBlock, body: List[Instruction],
                              terminator: Optional[Instruction]):
        """The block's :class:`~repro.cpu.core.BlockDelta`, or None.

        A block qualifies when every op it retires has a cost that is a
        constant of the core config: no addressed memory ops (register-
        promoted accesses lower to nothing and are fine), no conditional
        branch terminator (predictor state feeds the cost), no calls (they
        flush at frame boundaries and run other blocks), and no
        vector-annotated instructions (their accounts fire on every
        ``width``-th execution, so the per-execution delta is not constant).
        Signatures are cached per (block, core config) on the machine.

        Modules that went through the compile pipeline carry static
        eligibility verdicts (:mod:`repro.analysis.blockdelta`); this method
        cross-checks its decision against them and raises on divergence, so
        a drift between the static model and the engine fails loudly.
        """
        if self.machine is None or not self.block_delta:
            return None
        delta = self._classify_block_delta_runtime(block, body, terminator)
        stats = self.machine.delta_stats
        stats["eligible" if delta is not None else "ineligible"] += 1
        self._cross_check_static_delta(block, delta is not None)
        return delta

    def _classify_block_delta_runtime(self, block: BasicBlock,
                                      body: List[Instruction],
                                      terminator: Optional[Instruction]):
        """The runtime eligibility decision (machine/flag gates already passed)."""
        if terminator is None or isinstance(terminator, Branch):
            return None
        cache = self.machine.block_deltas
        cached = cache.get(block)
        if cached is not None:
            self.machine.delta_stats["cache_hits"] += 1
            return cached
        lower = self.target.lower_cached
        pc_of = self._pc_of
        ops: List[MachineOp] = []
        for inst in body:
            if isinstance(inst, Call) or self._effective_vector_width(inst):
                return None
            lowered = lower(inst, pc=pc_of.get(id(inst), 0))  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
            for op in lowered:
                if op.is_memory:
                    return None
            ops.extend(lowered)
        if self._effective_vector_width(terminator):
            return None
        ops.extend(lower(terminator, taken=True,
                         pc=pc_of.get(id(terminator), 0)))  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
        if not ops:
            return None
        delta = self.machine.core.block_delta_for(ops)
        cache[block] = delta
        self.machine.delta_stats["cache_misses"] += 1
        return delta

    def _cross_check_static_delta(self, block: BasicBlock,
                                  runtime_eligible: bool) -> None:
        """Compare the runtime decision with the certified static verdict.

        Uncertified modules (hand-built IR in tests, modules that bypassed
        ``compile_source_cached``) carry no verdicts and are skipped; for
        certified ones a disagreement is a bug in either the engine or the
        static classifier, never acceptable drift.
        """
        function = block.parent
        if function is None:
            return
        per_target = function.metadata.get(STATIC_DELTA_KEY)
        if not isinstance(per_target, dict):
            return
        verdicts = per_target.get(_static_target_key(self.target))
        if verdicts is None:
            return
        verdict = verdicts.get(block.name)
        if verdict is None:
            return
        if verdict.eligible != runtime_eligible:
            raise RuntimeError(
                f"static block-delta verdict diverges from the engine for "
                f"block {block.name!r} in @{function.name} on target "
                f"{_static_target_key(self.target)}: static says "
                f"{'eligible' if verdict.eligible else f'ineligible ({verdict.reason})'}, "
                f"engine says {'eligible' if runtime_eligible else 'ineligible'}"
            )

    # .. operand access ........................................................................

    def _compile_operand(self, value: Optional[Value]) -> Callable[[dict], object]:
        if value is None:
            return lambda values: None
        if isinstance(value, Constant):
            const = value.value
            return lambda values: const
        if isinstance(value, UndefValue):
            return lambda values: 0
        if isinstance(value, Function):
            function = value
            return lambda values: function
        return lambda values, key=value: values[key]

    # .. accounting closures ...................................................................

    def _effective_vector_width(self, inst: Instruction) -> int:
        """The vector group size the accounting path uses for *inst* (0 = scalar)."""
        annotated = inst.metadata.get(VECTOR_WIDTH_KEY, 0)
        if annotated and self.target.supports_vector:
            width = min(int(annotated), self.target.vector_sp_lanes)
            if width > 1:
                return width
        return 0

    def _guard_account(self, width: int, emit: Callable) -> Callable:
        """Wrap *emit* in the shared accounting gate.

        The returned thunk checks the accounting-enabled cell and -- for a
        vector-annotated instruction (``width`` > 1) -- fires *emit* only on
        every ``width``-th execution, the executions in between being lanes
        of the one retired vector op.  All accounting thunks share this gate
        so the gating rule lives in exactly one place.
        """
        cell = self._acct_cell
        if width == 0:
            def account(*args) -> None:
                if cell[0]:
                    emit(*args)
            return account
        counter = [0]

        def account_vector(*args) -> None:
            if not cell[0]:
                return
            count = counter[0] + 1
            counter[0] = count
            if count % width:
                return
            emit(*args)
        return account_vector

    def _compile_plain_account(self, inst: Instruction,
                               taken: bool = False) -> Optional[Callable[[], None]]:
        """Accounting thunk for instructions whose lowering needs no address.

        Returns ``None`` when nothing would ever be retired (no machine, or
        an empty lowering such as a phi or a bitcast), or when the enclosing
        block retires through a precomputed :class:`~repro.cpu.core.
        BlockDelta` (the delta already carries these ops).
        """
        if self.machine is None or self._suppress_accounts:
            return None
        pc = self._pc_of.get(id(inst), 0)  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
        width = self._effective_vector_width(inst)
        ops = self.target.lower_cached(inst, taken=taken, pc=pc, vector_width=width)
        n = len(ops)
        if n == 0:
            return None
        pending = self._pending
        stats = self.stats

        def emit() -> None:
            pending.extend(ops)
            stats.machine_ops += n
        return self._guard_account(width, emit)

    def _compile_branch_account(self, inst: Branch) -> Optional[Callable[[bool], None]]:
        if self.machine is None:
            return None
        pc = self._pc_of.get(id(inst), 0)  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
        width = self._effective_vector_width(inst)
        ops_taken = self.target.lower_cached(inst, taken=True, pc=pc,
                                             vector_width=width)
        ops_not = self.target.lower_cached(inst, taken=False, pc=pc,
                                           vector_width=width)
        if not ops_taken and not ops_not:
            return None
        pending = self._pending
        stats = self.stats

        def emit(taken: bool) -> None:
            ops = ops_taken if taken else ops_not
            pending.extend(ops)
            stats.machine_ops += len(ops)
        return self._guard_account(width, emit)

    def _compile_memory_account(self, inst: Instruction) -> Optional[Callable[[int], None]]:
        """Accounting thunk for loads/stores: cached lowering, address patched."""
        if self.machine is None:
            return None
        pc = self._pc_of.get(id(inst), 0)  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
        width = self._effective_vector_width(inst)
        ops = self.target.lower_cached(inst, pc=pc, vector_width=width)
        if not ops:
            return None        # register-promoted access: nothing retires
        pending = self._pending
        pending_mem = self._pending_mem
        stats = self.stats
        if len(ops) == 1 and ops[0].is_memory:
            template = ops[0]
            opclass = template.opclass
            size_bytes = template.size_bytes
            lanes = template.lanes
            op_taken = template.taken
            op_target = template.target
            op_pc = template.pc
            is_store = template.is_store
            if size_bytes > 0:
                def emit(address: int) -> None:
                    pending.append(MachineOp(opclass, size_bytes, address,
                                             lanes, op_taken, op_target, op_pc))
                    pending_mem.append((address, size_bytes, is_store))
                    stats.machine_ops += 1
            else:
                def emit(address: int) -> None:
                    pending.append(MachineOp(opclass, size_bytes, address,
                                             lanes, op_taken, op_target, op_pc))
                    stats.machine_ops += 1
            return self._guard_account(width, emit)

        # Exotic lowering (several ops per access): fall back to lowering per
        # execution so the address lands wherever the target puts it.
        target = self.target

        def emit_general(address: int) -> None:
            lowered = target.lower(inst, address=address, pc=pc,
                                   vector_width=width)
            pending.extend(lowered)
            for op in lowered:
                # Mirror retire_batch's addressed-memory predicate so the
                # batched access stream stays aligned with the op stream.
                if op.is_memory and op.address is not None and op.size_bytes > 0:
                    pending_mem.append((op.address, op.size_bytes, op.is_store))
            stats.machine_ops += len(lowered)
        return self._guard_account(width, emit_general)

    # .. instruction compilation ................................................................

    def _wrap_value_step(self, inst: Instruction,
                         compute: Callable[[dict], object],
                         account: Optional[Callable[[], None]]) -> Callable[[dict], None]:
        if account is None:
            def step(values: dict) -> None:
                values[inst] = compute(values)
        else:
            def step(values: dict) -> None:
                values[inst] = compute(values)
                account()
        return step

    def _compile_inst(self, inst: Instruction) -> Callable[[dict], None]:
        if isinstance(inst, BinaryOp):
            compute = self._compile_binary(inst)
            return self._wrap_value_step(inst, compute,
                                         self._compile_plain_account(inst))
        if isinstance(inst, CompareOp):
            compute = self._compile_compare(inst)
            return self._wrap_value_step(inst, compute,
                                         self._compile_plain_account(inst))
        if isinstance(inst, Load):
            return self._compile_load(inst)
        if isinstance(inst, Store):
            return self._compile_store(inst)
        if isinstance(inst, Alloca):
            size = max(1, inst.allocated_bytes)
            stack_alloc = self.memory.stack_alloc
            return self._wrap_value_step(inst, lambda values: stack_alloc(size),
                                         self._compile_plain_account(inst))
        if isinstance(inst, GetElementPtr):
            base_get = self._compile_operand(inst.base)
            index_get = self._compile_operand(inst.index)
            element_bytes = inst.element_bytes

            def compute_gep(values: dict) -> int:
                return int(base_get(values)) + int(index_get(values)) * element_bytes
            return self._wrap_value_step(inst, compute_gep,
                                         self._compile_plain_account(inst))
        if isinstance(inst, Call):
            return self._compile_call(inst)
        if isinstance(inst, Cast):
            compute = self._compile_cast(inst)
            return self._wrap_value_step(inst, compute,
                                         self._compile_plain_account(inst))
        if isinstance(inst, Select):
            cond_get = self._compile_operand(inst.condition)
            true_get = self._compile_operand(inst.true_value)
            false_get = self._compile_operand(inst.false_value)

            def compute_select(values: dict) -> object:
                return true_get(values) if cond_get(values) else false_get(values)
            return self._wrap_value_step(inst, compute_select,
                                         self._compile_plain_account(inst))
        opcode = inst.opcode

        def unexecutable(values: dict) -> None:
            raise RuntimeError(f"cannot execute instruction {opcode}")
        return unexecutable

    def _compile_binary(self, inst: BinaryOp) -> Callable[[dict], object]:
        lhs_get = self._compile_operand(inst.lhs)
        rhs_get = self._compile_operand(inst.rhs)
        opcode = inst.opcode
        if inst.is_float_op:
            fn = _FLOAT_BINOPS.get(opcode)
            if fn is None:
                raise RuntimeError(f"unhandled binary opcode {opcode}")
            return lambda values: fn(float(lhs_get(values)), float(rhs_get(values)))
        type_ = inst.type
        assert isinstance(type_, IntType)
        wrap = type_.wrap
        bits = type_.bits
        mask = (1 << bits) - 1
        if opcode == "add":
            return lambda values: wrap(int(lhs_get(values)) + int(rhs_get(values)))
        if opcode == "sub":
            return lambda values: wrap(int(lhs_get(values)) - int(rhs_get(values)))
        if opcode == "mul":
            return lambda values: wrap(int(lhs_get(values)) * int(rhs_get(values)))
        if opcode == "sdiv":
            def sdiv(values: dict) -> int:
                a, b = int(lhs_get(values)), int(rhs_get(values))
                if b == 0:
                    return 0
                quotient = abs(a) // abs(b)
                return wrap(-quotient if (a < 0) != (b < 0) else quotient)
            return sdiv
        if opcode == "udiv":
            def udiv(values: dict) -> int:
                b = int(rhs_get(values)) & mask
                if b == 0:
                    return 0
                return wrap((int(lhs_get(values)) & mask) // b)
            return udiv
        if opcode == "srem":
            def srem(values: dict) -> int:
                a, b = int(lhs_get(values)), int(rhs_get(values))
                if b == 0:
                    return 0
                quotient = abs(a) // abs(b)
                signed = -quotient if (a < 0) != (b < 0) else quotient
                return wrap(a - b * signed)
            return srem
        if opcode == "urem":
            def urem(values: dict) -> int:
                b = int(rhs_get(values)) & mask
                if b == 0:
                    return 0
                return wrap((int(lhs_get(values)) & mask) % b)
            return urem
        if opcode == "and":
            return lambda values: wrap(int(lhs_get(values)) & int(rhs_get(values)))
        if opcode == "or":
            return lambda values: wrap(int(lhs_get(values)) | int(rhs_get(values)))
        if opcode == "xor":
            return lambda values: wrap(int(lhs_get(values)) ^ int(rhs_get(values)))
        if opcode == "shl":
            return lambda values: wrap(
                int(lhs_get(values)) << (int(rhs_get(values)) % bits))
        if opcode == "lshr":
            return lambda values: wrap(
                (int(lhs_get(values)) & mask) >> (int(rhs_get(values)) % bits))
        if opcode == "ashr":
            return lambda values: wrap(
                int(lhs_get(values)) >> (int(rhs_get(values)) % bits))
        raise RuntimeError(f"unhandled binary opcode {opcode}")

    def _compile_compare(self, inst: CompareOp) -> Callable[[dict], int]:
        lhs_get = self._compile_operand(inst.lhs)
        rhs_get = self._compile_operand(inst.rhs)
        predicate = inst.predicate
        if inst.opcode == "fcmp":
            cmp = _FCMP_PREDICATES[predicate]
            return lambda values: int(cmp(float(lhs_get(values)),
                                          float(rhs_get(values))))
        table = {
            "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
            "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
            "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
            "ult": lambda a, b: a < b, "ule": lambda a, b: a <= b,
            "ugt": lambda a, b: a > b, "uge": lambda a, b: a >= b,
        }
        cmp = table[predicate]
        if predicate.startswith("u"):
            bits = inst.lhs.type.bits if isinstance(inst.lhs.type, IntType) else 64
            mask = (1 << bits) - 1
            return lambda values: int(cmp(int(lhs_get(values)) & mask,
                                          int(rhs_get(values)) & mask))
        return lambda values: int(cmp(int(lhs_get(values)), int(rhs_get(values))))

    def _compile_cast(self, inst: Cast) -> Callable[[dict], object]:
        value_get = self._compile_operand(inst.value)
        opcode = inst.opcode
        to_type = inst.type
        if opcode in ("sext", "zext", "trunc"):
            assert isinstance(to_type, IntType)
            wrap = to_type.wrap
            return lambda values: wrap(int(value_get(values)))
        if opcode in ("fpext", "fptrunc"):
            if isinstance(to_type, FloatType) and to_type.bits == 32:
                pack = _F32_STRUCT.pack
                unpack = _F32_STRUCT.unpack
                return lambda values: unpack(pack(float(value_get(values))))[0]
            return lambda values: float(value_get(values))
        if opcode == "sitofp":
            return lambda values: float(int(value_get(values)))
        if opcode == "fptosi":
            assert isinstance(to_type, IntType)
            wrap = to_type.wrap
            return lambda values: wrap(int(value_get(values)))
        if opcode in ("bitcast", "inttoptr", "ptrtoint"):
            return value_get
        raise RuntimeError(f"unhandled cast opcode {opcode}")

    def _compile_load(self, inst: Load) -> Callable[[dict], None]:
        pointer_get = self._compile_operand(inst.pointer)
        loader = self.memory.load_fn(inst.type)
        account = self._compile_memory_account(inst)
        if account is None:
            def step(values: dict) -> None:
                values[inst] = loader(int(pointer_get(values)))
        else:
            def step(values: dict) -> None:
                address = int(pointer_get(values))
                values[inst] = loader(address)
                account(address)
        return step

    def _compile_store(self, inst: Store) -> Callable[[dict], None]:
        value_get = self._compile_operand(inst.value)
        pointer_get = self._compile_operand(inst.pointer)
        storer = self.memory.store_fn(inst.value.type)
        account = self._compile_memory_account(inst)
        if account is None:
            def step(values: dict) -> None:
                storer(int(pointer_get(values)), value_get(values))
        else:
            def step(values: dict) -> None:
                address = int(pointer_get(values))
                storer(address, value_get(values))
                account(address)
        return step

    def _compile_call(self, inst: Call) -> Callable[[dict], None]:
        arg_getters = [self._compile_operand(operand) for operand in inst.operands]
        account = self._compile_plain_account(inst)
        flush = self._flush
        store_result = not inst.type.is_void

        callee = inst.callee
        callee_fn: Optional[Function] = None
        if isinstance(callee, Function):
            callee_fn = callee
        elif isinstance(callee, str) and self.module.has_function(callee):
            callee_fn = self.module.get_function(callee)

        if callee_fn is not None and not callee_fn.is_declaration:
            call_function = self._call_function
            yield_cell = self._yield_cell

            def step(values: dict) -> Optional[_PendingCall]:
                args = [g(values) for g in arg_getters]
                if account is not None:
                    account()
                flush()
                if yield_cell[0]:
                    # run_yielding(): the generator block loop performs the
                    # call, so preemption propagates through the callee.
                    return _PendingCall(callee_fn, args,
                                        inst if store_result else None)
                result = call_function(callee_fn, args)
                if store_result:
                    values[inst] = result
                return None
            return step

        name = callee if isinstance(callee, str) else callee.name
        dispatch = self._dispatch_external

        def step_external(values: dict) -> None:
            args = [g(values) for g in arg_getters]
            if account is not None:
                account()
            flush()
            result = dispatch(name, args)
            if store_result:
                values[inst] = result
        return step_external

    def _compile_terminator(self, inst: Instruction,
                            dmap: Dict[BasicBlock, _DecodedBlock]) -> Callable[[dict], object]:
        if isinstance(inst, Branch):
            cond_get = self._compile_operand(inst.condition)
            account = self._compile_branch_account(inst)
            then_block = dmap[inst.then_block]
            else_block = dmap[inst.else_block]
            if account is None:
                def branch(values: dict) -> object:
                    return then_block if cond_get(values) else else_block
                return branch

            def branch_accounted(values: dict) -> object:
                condition = bool(cond_get(values))
                account(condition)
                return then_block if condition else else_block
            return branch_accounted
        if isinstance(inst, Jump):
            account = self._compile_plain_account(inst, taken=True)
            target_block = dmap[inst.target]
            if account is None:
                return lambda values: target_block

            def jump(values: dict) -> object:
                account()
                return target_block
            return jump
        assert isinstance(inst, Ret)
        account = self._compile_plain_account(inst, taken=True)
        value_get = (self._compile_operand(inst.value)
                     if inst.value is not None else None)
        if account is None:
            if value_get is None:
                return lambda values: _Ret(None)
            return lambda values: _Ret(value_get(values))
        if value_get is None:
            def ret_void(values: dict) -> object:
                account()
                return _Ret(None)
            return ret_void

        def ret(values: dict) -> object:
            account()
            return _Ret(value_get(values))
        return ret

    # -- slow (reference) dispatch --------------------------------------------------------------

    def _run_frame_slow(self, frame: _Frame) -> object:
        """Drive the reference interpreter's one dispatch loop to completion.

        The generator twin *is* the reference implementation -- keeping a
        second verbatim copy of the loop here would have to be edited in
        lockstep forever.  A quantum "yield" has no side effect on the slow
        path (nothing is ever pending), so draining the generator and
        ignoring its yields executes identically; the fuel cell is whatever
        the last run_yielding() left behind, which only determines where the
        ignored yields land.
        """
        fuel = self._fuel
        saved_fuel = fuel[0]
        # A drained run never wants quantum yields: park the fuel cell at a
        # value no realistic run exhausts, so the generator runs straight
        # through instead of suspending at every block boundary.
        fuel[0] = 1 << 62
        gen = self._run_frame_slow_gen(frame)
        try:
            while True:
                try:
                    next(gen)
                except StopIteration as stop:
                    return stop.value
        finally:
            # Fuel-neutral, like the fast path's run(): a slow run() while a
            # run_yielding() generator is suspended must not shift the
            # suspended run's quantum boundaries.
            fuel[0] = saved_fuel

    # -- instruction execution (reference path) -------------------------------------------------

    def _eval(self, frame: _Frame, value: Optional[Value]) -> object:
        if value is None:
            return None
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, Function):
            return value
        try:
            return frame.values[value]
        except KeyError:
            raise RuntimeError(
                f"value %{value.name} used before definition in @{frame.function.name}"
            )

    def _execute(self, frame: _Frame, inst: Instruction) -> object:
        if isinstance(inst, BinaryOp):
            result = self._execute_binary(frame, inst)
            self._account(inst, frame)
            return result
        if isinstance(inst, CompareOp):
            result = self._execute_compare(frame, inst)
            self._account(inst, frame)
            return result
        if isinstance(inst, Load):
            address = int(self._eval(frame, inst.pointer))
            value = self.memory.load_typed(address, inst.type)
            self._account(inst, frame, address=address)
            return value
        if isinstance(inst, Store):
            address = int(self._eval(frame, inst.pointer))
            self.memory.store_typed(address, inst.value.type,
                                    self._eval(frame, inst.value))
            self._account(inst, frame, address=address)
            return None
        if isinstance(inst, Alloca):
            address = self.memory.stack_alloc(max(1, inst.allocated_bytes))
            self._account(inst, frame)
            return address
        if isinstance(inst, GetElementPtr):
            base = int(self._eval(frame, inst.base))
            index = int(self._eval(frame, inst.index))
            self._account(inst, frame)
            return base + index * inst.element_bytes
        if isinstance(inst, Cast):
            result = self._execute_cast(frame, inst)
            self._account(inst, frame)
            return result
        if isinstance(inst, Select):
            condition = bool(self._eval(frame, inst.condition))
            result = self._eval(frame, inst.true_value if condition else inst.false_value)
            self._account(inst, frame)
            return result
        raise RuntimeError(f"cannot execute instruction {inst.opcode}")

    def _execute_binary(self, frame: _Frame, inst: BinaryOp) -> object:
        lhs = self._eval(frame, inst.lhs)
        rhs = self._eval(frame, inst.rhs)
        opcode = inst.opcode
        if inst.is_float_op:
            fn = _FLOAT_BINOPS.get(opcode)
            if fn is None:
                raise RuntimeError(f"unhandled binary opcode {opcode}")
            return fn(float(lhs), float(rhs))
        a, b = int(lhs), int(rhs)
        type_ = inst.type
        assert isinstance(type_, IntType)
        if opcode == "add":
            return type_.wrap(a + b)
        if opcode == "sub":
            return type_.wrap(a - b)
        if opcode == "mul":
            return type_.wrap(a * b)
        if opcode == "sdiv":
            if b == 0:
                return 0
            quotient = abs(a) // abs(b)
            return type_.wrap(-quotient if (a < 0) != (b < 0) else quotient)
        if opcode == "udiv":
            # Unsigned semantics: operate on the masked (unsigned) values, not
            # the wrapped signed representation.
            mask = (1 << type_.bits) - 1
            ub = b & mask
            if ub == 0:
                return 0
            return type_.wrap((a & mask) // ub)
        if opcode == "srem":
            if b == 0:
                return 0
            quotient = abs(a) // abs(b)
            signed = -quotient if (a < 0) != (b < 0) else quotient
            return type_.wrap(a - b * signed)
        if opcode == "urem":
            mask = (1 << type_.bits) - 1
            ub = b & mask
            if ub == 0:
                return 0
            return type_.wrap((a & mask) % ub)
        if opcode == "and":
            return type_.wrap(a & b)
        if opcode == "or":
            return type_.wrap(a | b)
        if opcode == "xor":
            return type_.wrap(a ^ b)
        if opcode == "shl":
            return type_.wrap(a << (b % type_.bits))
        if opcode == "lshr":
            mask = (1 << type_.bits) - 1
            return type_.wrap((a & mask) >> (b % type_.bits))
        if opcode == "ashr":
            return type_.wrap(a >> (b % type_.bits))
        raise RuntimeError(f"unhandled binary opcode {opcode}")

    def _execute_compare(self, frame: _Frame, inst: CompareOp) -> int:
        lhs = self._eval(frame, inst.lhs)
        rhs = self._eval(frame, inst.rhs)
        predicate = inst.predicate
        if inst.opcode == "fcmp":
            return int(_FCMP_PREDICATES[predicate](float(lhs), float(rhs)))
        a, b = int(lhs), int(rhs)
        if predicate.startswith("u"):
            bits = inst.lhs.type.bits if isinstance(inst.lhs.type, IntType) else 64
            mask = (1 << bits) - 1
            a &= mask
            b &= mask
        table = {
            "eq": a == b, "ne": a != b,
            "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
            "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
        }
        return int(table[predicate])

    def _execute_cast(self, frame: _Frame, inst: Cast) -> object:
        value = self._eval(frame, inst.value)
        opcode = inst.opcode
        to_type = inst.type
        if opcode in ("sext", "zext", "trunc"):
            assert isinstance(to_type, IntType)
            return to_type.wrap(int(value))
        if opcode in ("fpext", "fptrunc"):
            if isinstance(to_type, FloatType) and to_type.bits == 32:
                return _F32_STRUCT.unpack(_F32_STRUCT.pack(float(value)))[0]
            return float(value)
        if opcode == "sitofp":
            return float(int(value))
        if opcode == "fptosi":
            assert isinstance(to_type, IntType)
            return to_type.wrap(int(value))
        if opcode in ("bitcast", "inttoptr", "ptrtoint"):
            return value
        raise RuntimeError(f"unhandled cast opcode {opcode}")

    def _dispatch_external(self, name: str, args: List[object]) -> object:
        self.stats.external_calls += 1
        for handler in self.external_handlers:
            if handler.handles(name):
                return handler.call(name, args)
        builtin = _BUILTIN_MATH.get(name)
        if builtin is not None:
            return builtin(*[float(a) for a in args])
        raise ExternalCallError(
            f"no handler registered for external function @{name}"
        )

    # -- accounting (reference path) -------------------------------------------------------------

    def _account(self, inst: Instruction, frame: _Frame,
                 address: Optional[int] = None, taken: bool = False) -> None:
        if not self._accounting_enabled:
            return
        assert self.machine is not None and self.target is not None
        vector_width = 0
        annotated = inst.metadata.get(VECTOR_WIDTH_KEY, 0)
        if annotated and self.target.supports_vector:
            # One vector machine op is retired every `width` executions of the
            # annotated instruction; the other executions are lanes of it.
            width = min(int(annotated), self.target.vector_sp_lanes)
            if width > 1:
                key = id(inst)  # repro-lint: allow[no-id] -- per-engine lane counter key; ids never order or escape
                count = self._vector_counters.get(key, 0) + 1
                self._vector_counters[key] = count
                if count % width != 0:
                    return
                vector_width = width
        pc = self._pc_of.get(id(inst), 0)  # repro-lint: allow[no-id] -- per-engine pc map key; pcs come from a deterministic module walk, ids never order or escape
        ops = self.target.lower(inst, address=address, taken=taken, pc=pc,
                                vector_width=vector_width)
        task = self.task
        for op in ops:
            self.stats.machine_ops += 1
            self.machine.execute(op, task)
