"""Execution engine: runs compiled IR on a modelled platform.

The engine interprets IR for semantics (so the computed results are real and
checkable), and for every executed instruction asks the target lowering what
machine operations it retires, feeding those to the platform's core timing
model.  Because the timing model publishes PMU events as it goes, sampling
interrupts fire *during* execution with live call stacks -- the same
observable behaviour miniperf sees on hardware.
"""

from repro.vm.memory import Memory, MemoryError_
from repro.vm.engine import ExecutionEngine, ExecutionStats, ExternalCallError

__all__ = [
    "Memory",
    "MemoryError_",
    "ExecutionEngine",
    "ExecutionStats",
    "ExternalCallError",
]
