"""Flat byte-addressable memory for the execution engine.

Pointers in the IR are plain integer addresses into this memory, which is
what lets ``getelementptr`` arithmetic, the cache model (which needs real
addresses to decide hits and misses) and the instrumentation byte counts all
agree with each other.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.compiler.ir.types import FloatType, IntType, PointerType, Type


class MemoryError_(Exception):
    """Raised on out-of-bounds or unmapped accesses."""


_INT_FORMATS = {8: "b", 16: "h", 32: "i", 64: "q"}
_FLOAT_FORMATS = {32: "f", 64: "d"}


class Memory:
    """A bump-allocated heap plus a per-call stack region.

    The heap starts at ``HEAP_BASE`` and grows upward; stack frames are
    carved from a separate region so that freeing a frame on return is a
    single pointer reset.  All addresses are stable for the lifetime of the
    Memory object, which the cache simulator relies on.
    """

    HEAP_BASE = 0x0001_0000
    STACK_BASE = 0x4000_0000
    STACK_SIZE = 8 * 1024 * 1024

    def __init__(self, heap_size: int = 256 * 1024 * 1024):
        self.heap_size = heap_size
        self._heap = bytearray()
        self._heap_top = self.HEAP_BASE
        self._stack = bytearray(self.STACK_SIZE)
        self._stack_top = self.STACK_BASE
        self._allocations: Dict[int, int] = {}

    # -- allocation --------------------------------------------------------------------

    def malloc(self, size: int, align: int = 16) -> int:
        """Allocate *size* bytes on the heap; returns the address."""
        if size <= 0:
            raise MemoryError_("allocation size must be positive")
        top = self._heap_top
        if top % align:
            top += align - (top % align)
        address = top
        new_top = top + size
        if new_top - self.HEAP_BASE > self.heap_size:
            raise MemoryError_(
                f"heap exhausted: requested {size} bytes at {address:#x}"
            )
        needed = new_top - self.HEAP_BASE
        if needed > len(self._heap):
            self._heap.extend(b"\x00" * (needed - len(self._heap)))
        self._heap_top = new_top
        self._allocations[address] = size
        return address

    def allocation_size(self, address: int) -> int:
        return self._allocations.get(address, 0)

    def push_stack_frame(self) -> int:
        """Begin a stack frame; returns a token for :meth:`pop_stack_frame`."""
        return self._stack_top

    def stack_alloc(self, size: int, align: int = 16) -> int:
        if size <= 0:
            raise MemoryError_("allocation size must be positive")
        top = self._stack_top
        if top % align:
            top += align - (top % align)
        address = top
        self._stack_top = top + size
        if self._stack_top - self.STACK_BASE > self.STACK_SIZE:
            raise MemoryError_("stack overflow in modelled program")
        return address

    def pop_stack_frame(self, token: int) -> None:
        self._stack_top = token

    # -- raw byte access ------------------------------------------------------------------

    def _backing(self, address: int, size: int) -> Tuple[bytearray, int]:
        if self.HEAP_BASE <= address and address + size <= self.HEAP_BASE + len(self._heap):
            return self._heap, address - self.HEAP_BASE
        if self.STACK_BASE <= address and address + size <= self.STACK_BASE + self.STACK_SIZE:
            return self._stack, address - self.STACK_BASE
        raise MemoryError_(f"unmapped access of {size} bytes at {address:#x}")

    def read_bytes(self, address: int, size: int) -> bytes:
        backing, offset = self._backing(address, size)
        return bytes(backing[offset:offset + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        backing, offset = self._backing(address, len(data))
        backing[offset:offset + len(data)] = data

    # -- typed access ----------------------------------------------------------------------

    def load_typed(self, address: int, type_: Type):
        """Load a value of *type_* from *address*."""
        if isinstance(type_, IntType):
            if type_.bits == 1:
                return self.read_bytes(address, 1)[0] & 1
            fmt = _INT_FORMATS[type_.bits]
            return struct.unpack_from("<" + fmt, self.read_bytes(address, type_.bits // 8))[0]
        if isinstance(type_, FloatType):
            fmt = _FLOAT_FORMATS[type_.bits]
            return struct.unpack_from("<" + fmt, self.read_bytes(address, type_.bits // 8))[0]
        if isinstance(type_, PointerType):
            return struct.unpack_from("<q", self.read_bytes(address, 8))[0]
        raise MemoryError_(f"cannot load value of type {type_}")

    def store_typed(self, address: int, type_: Type, value) -> None:
        """Store *value* of *type_* at *address*."""
        if isinstance(type_, IntType):
            if type_.bits == 1:
                self.write_bytes(address, bytes([int(value) & 1]))
                return
            fmt = _INT_FORMATS[type_.bits]
            self.write_bytes(address, struct.pack("<" + fmt, type_.wrap(int(value))))
            return
        if isinstance(type_, FloatType):
            fmt = _FLOAT_FORMATS[type_.bits]
            self.write_bytes(address, struct.pack("<" + fmt, float(value)))
            return
        if isinstance(type_, PointerType):
            self.write_bytes(address, struct.pack("<q", int(value)))
            return
        raise MemoryError_(f"cannot store value of type {type_}")

    # -- predecoded access (execution-engine fast path) ---------------------------------------

    def load_fn(self, type_: Type):
        """Return a specialised ``loader(address) -> value`` for *type_*.

        Predecode hook used by the execution engine's fast dispatch: the type
        dispatch and struct-format selection happen once per instruction
        instead of once per access.  Bounds checking and results are
        identical to :meth:`load_typed`.  In-bounds accesses resolve their
        segment inline: both backing bytearrays are stable objects for the
        lifetime of the Memory (``malloc`` extends the heap in place), so
        the closures capture them once -- workload arrays live on the heap,
        register-promoted locals in alloca'd stack slots -- and only
        out-of-bounds addresses fall back to :meth:`_backing` for the
        error path.
        """
        backing_of = self._backing
        heap = self._heap
        heap_base = self.HEAP_BASE
        stack = self._stack
        stack_base = self.STACK_BASE
        stack_limit = self.STACK_SIZE
        if isinstance(type_, IntType):
            if type_.bits == 1:
                def load_i1(address: int) -> int:
                    backing, offset = backing_of(address, 1)
                    return backing[offset] & 1
                return load_i1
            size = type_.bits // 8
            unpack_from = struct.Struct("<" + _INT_FORMATS[type_.bits]).unpack_from
        elif isinstance(type_, FloatType):
            size = type_.bits // 8
            unpack_from = struct.Struct("<" + _FLOAT_FORMATS[type_.bits]).unpack_from
        elif isinstance(type_, PointerType):
            size = 8
            unpack_from = struct.Struct("<q").unpack_from
        else:
            raise MemoryError_(f"cannot load value of type {type_}")

        def load(address: int):
            offset = address - stack_base
            if 0 <= offset:
                if offset + size <= stack_limit:
                    return unpack_from(stack, offset)[0]
            else:
                offset = address - heap_base
                if 0 <= offset and offset + size <= len(heap):
                    return unpack_from(heap, offset)[0]
            backing, offset = backing_of(address, size)
            return unpack_from(backing, offset)[0]
        return load

    def store_fn(self, type_: Type):
        """Return a specialised ``storer(address, value)`` for *type_*.

        The counterpart of :meth:`load_fn`; semantics match
        :meth:`store_typed` (integers are wrapped to the type's range before
        being packed), including the heap fast path.
        """
        backing_of = self._backing
        heap = self._heap
        heap_base = self.HEAP_BASE
        stack = self._stack
        stack_base = self.STACK_BASE
        stack_limit = self.STACK_SIZE
        if isinstance(type_, IntType):
            if type_.bits == 1:
                def store_i1(address: int, value) -> None:
                    backing, offset = backing_of(address, 1)
                    backing[offset] = int(value) & 1
                return store_i1
            size = type_.bits // 8
            pack_into = struct.Struct("<" + _INT_FORMATS[type_.bits]).pack_into
            wrap = type_.wrap

            def store_int(address: int, value) -> None:
                offset = address - stack_base
                if 0 <= offset:
                    if offset + size <= stack_limit:
                        pack_into(stack, offset, wrap(int(value)))
                        return
                else:
                    offset = address - heap_base
                    if 0 <= offset and offset + size <= len(heap):
                        pack_into(heap, offset, wrap(int(value)))
                        return
                backing, offset = backing_of(address, size)
                pack_into(backing, offset, wrap(int(value)))
            return store_int
        if isinstance(type_, FloatType):
            size = type_.bits // 8
            pack_into = struct.Struct("<" + _FLOAT_FORMATS[type_.bits]).pack_into

            def store_float(address: int, value) -> None:
                offset = address - stack_base
                if 0 <= offset:
                    if offset + size <= stack_limit:
                        pack_into(stack, offset, float(value))
                        return
                else:
                    offset = address - heap_base
                    if 0 <= offset and offset + size <= len(heap):
                        pack_into(heap, offset, float(value))
                        return
                backing, offset = backing_of(address, size)
                pack_into(backing, offset, float(value))
            return store_float
        if isinstance(type_, PointerType):
            pack_into = struct.Struct("<q").pack_into

            def store_pointer(address: int, value) -> None:
                offset = address - stack_base
                if 0 <= offset:
                    if offset + 8 <= stack_limit:
                        pack_into(stack, offset, int(value))
                        return
                else:
                    offset = address - heap_base
                    if 0 <= offset and offset + 8 <= len(heap):
                        pack_into(heap, offset, int(value))
                        return
                backing, offset = backing_of(address, 8)
                pack_into(backing, offset, int(value))
            return store_pointer
        raise MemoryError_(f"cannot store value of type {type_}")

    # -- convenience for tests and workloads --------------------------------------------------

    def alloc_float_array(self, values: List[float], double: bool = False) -> int:
        """Allocate and initialise a float (or double) array; returns its address."""
        elem = 8 if double else 4
        address = self.malloc(len(values) * elem)
        fmt = "<" + ("d" if double else "f") * len(values)
        self.write_bytes(address, struct.pack(fmt, *values))
        return address

    def read_float_array(self, address: int, count: int, double: bool = False) -> List[float]:
        elem = 8 if double else 4
        fmt = "<" + ("d" if double else "f") * count
        return list(struct.unpack(fmt, self.read_bytes(address, count * elem)))

    def alloc_int_array(self, values: List[int], bits: int = 64) -> int:
        elem = bits // 8
        address = self.malloc(len(values) * elem)
        fmt = "<" + _INT_FORMATS[bits] * len(values)
        self.write_bytes(address, struct.pack(fmt, *values))
        return address

    def read_int_array(self, address: int, count: int, bits: int = 64) -> List[int]:
        elem = bits // 8
        fmt = "<" + _INT_FORMATS[bits] * count
        return list(struct.unpack(fmt, self.read_bytes(address, count * elem)))
