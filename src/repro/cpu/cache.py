"""Set-associative cache hierarchy and DRAM model.

The roofline memory roof and the IPC gap both hinge on the memory subsystem,
so the hierarchy is modelled structurally: per-level set-associative caches
with LRU replacement, a write-allocate / write-back policy, and a DRAM model
characterised by latency and peak bytes/cycle (the paper derives the X60
DRAM roof from a measured 3.16 bytes/cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    hit_latency: int = 3

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.line_bytes <= 0 or (self.line_bytes & (self.line_bytes - 1)):
            raise ValueError("line_bytes must be a positive power of two")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of line_bytes*associativity"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM characteristics."""

    latency_cycles: int = 120
    peak_bytes_per_cycle: float = 3.16

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")
        if self.peak_bytes_per_cycle <= 0:
            raise ValueError("peak_bytes_per_cycle must be positive")


@dataclass
class AccessResult:
    """Outcome of one memory access walked through the hierarchy."""

    hit_level: str                 # name of the level that served the access, or "DRAM"
    latency: int                   # total latency in cycles
    l1_miss: bool
    llc_miss: bool                 # missed all cache levels
    dram_bytes: int                # bytes moved to/from DRAM (line fills + writebacks)
    levels_missed: List[str] = field(default_factory=list)


class _CacheSet:
    """One set of a set-associative cache with true-LRU replacement."""

    __slots__ = ("capacity", "lines", "dirty")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.lines: List[int] = []      # tags, most-recently-used last
        self.dirty: Dict[int, bool] = {}

    def lookup(self, tag: int) -> bool:
        if tag in self.dirty:
            self.lines.remove(tag)
            self.lines.append(tag)
            return True
        return False

    def insert(self, tag: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert a line; return the evicted ``(tag, was_dirty)`` if any."""
        evicted = None
        if tag in self.dirty:
            self.lines.remove(tag)
        elif len(self.lines) >= self.capacity:
            victim = self.lines.pop(0)
            evicted = (victim, self.dirty.pop(victim))
        self.lines.append(tag)
        self.dirty[tag] = self.dirty.get(tag, False) or dirty
        return evicted

    def mark_dirty(self, tag: int) -> None:
        if tag in self.dirty:
            self.dirty[tag] = True


class Cache:
    """A single set-associative, write-allocate, write-back cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: Dict[int, _CacheSet] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_for(self, address: int) -> Tuple[_CacheSet, int]:
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        bucket = self._sets.get(set_index)
        if bucket is None:
            bucket = _CacheSet(self.config.associativity)
            self._sets[set_index] = bucket
        return bucket, tag

    def access(self, address: int, is_store: bool) -> bool:
        """Access one line; return True on hit.

        On a miss the line is *not* filled here -- the hierarchy decides how
        far down the miss travels and calls :meth:`fill` on the way back up.
        """
        bucket, tag = self._set_for(address)
        if bucket.lookup(tag):
            self.hits += 1
            if is_store:
                bucket.mark_dirty(tag)
            return True
        self.misses += 1
        return False

    def fill(self, address: int, is_store: bool) -> bool:
        """Fill the line containing *address*; return True if a dirty line was evicted."""
        bucket, tag = self._set_for(address)
        evicted = bucket.insert(tag, dirty=is_store)
        if evicted is not None and evicted[1]:
            self.writebacks += 1
            return True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0


class CacheHierarchy:
    """An inclusive multi-level cache hierarchy in front of DRAM.

    Accesses are performed at cache-line granularity; an access spanning
    multiple lines (for example a 32-byte vector load with a 64-byte line is
    one line, but a crossing access is two) touches each line once.
    """

    def __init__(self, levels: List[CacheConfig], memory: MemoryConfig):
        if not levels:
            raise ValueError("at least one cache level is required")
        self.levels = [Cache(cfg) for cfg in levels]
        self.memory = memory
        self.dram_read_bytes = 0
        self.dram_write_bytes = 0
        self.dram_accesses = 0

    @property
    def line_bytes(self) -> int:
        return self.levels[0].config.line_bytes

    def access(self, address: int, size_bytes: int, is_store: bool) -> AccessResult:
        """Walk one memory access through the hierarchy.

        Returns an aggregate :class:`AccessResult`; when the access spans
        several cache lines the worst latency is reported (the lines are
        fetched in parallel by the miss handling hardware) and DRAM bytes are
        summed.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        line = self.line_bytes
        first = address // line
        last = (address + size_bytes - 1) // line
        worst: Optional[AccessResult] = None
        total_dram = 0
        l1_miss = False
        llc_miss = False
        for line_index in range(first, last + 1):
            result = self._access_line(line_index * line, is_store)
            total_dram += result.dram_bytes
            l1_miss = l1_miss or result.l1_miss
            llc_miss = llc_miss or result.llc_miss
            if worst is None or result.latency > worst.latency:
                worst = result
        assert worst is not None
        return AccessResult(
            hit_level=worst.hit_level,
            latency=worst.latency,
            l1_miss=l1_miss,
            llc_miss=llc_miss,
            dram_bytes=total_dram,
            levels_missed=worst.levels_missed,
        )

    def _access_line(self, address: int, is_store: bool) -> AccessResult:
        latency = 0
        missed: List[str] = []
        for depth, cache in enumerate(self.levels):
            latency += cache.config.hit_latency
            if cache.access(address, is_store):
                # Fill the levels above (inclusive hierarchy).
                for upper in self.levels[:depth]:
                    upper.fill(address, is_store)
                return AccessResult(
                    hit_level=cache.config.name,
                    latency=latency,
                    l1_miss=depth > 0,
                    llc_miss=False,
                    dram_bytes=0,
                    levels_missed=missed,
                )
            missed.append(cache.config.name)
        # Missed every level: go to DRAM.
        latency += self.memory.latency_cycles
        dram_bytes = self.line_bytes
        self.dram_read_bytes += self.line_bytes
        self.dram_accesses += 1
        for cache in self.levels:
            if cache.fill(address, is_store):
                dram_bytes += self.line_bytes
                self.dram_write_bytes += self.line_bytes
        return AccessResult(
            hit_level="DRAM",
            latency=latency,
            l1_miss=True,
            llc_miss=True,
            dram_bytes=dram_bytes,
            levels_missed=missed,
        )

    # -- statistics -----------------------------------------------------------

    def level(self, name: str) -> Cache:
        for cache in self.levels:
            if cache.config.name == name:
                return cache
        raise KeyError(f"no cache level named {name!r}")

    def stats(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for cache in self.levels:
            out[cache.config.name] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "miss_rate": cache.miss_rate,
                "writebacks": cache.writebacks,
            }
        out["DRAM"] = {
            "read_bytes": self.dram_read_bytes,
            "write_bytes": self.dram_write_bytes,
            "accesses": self.dram_accesses,
        }
        return out

    def reset_stats(self) -> None:
        for cache in self.levels:
            cache.reset_stats()
        self.dram_read_bytes = 0
        self.dram_write_bytes = 0
        self.dram_accesses = 0
