"""Set-associative cache hierarchy and DRAM model.

The roofline memory roof and the IPC gap both hinge on the memory subsystem,
so the hierarchy is modelled structurally: per-level set-associative caches
with LRU replacement, a write-allocate / write-back policy, and a DRAM model
characterised by latency and peak bytes/cycle (the paper derives the X60
DRAM roof from a measured 3.16 bytes/cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    hit_latency: int = 3

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.line_bytes <= 0 or (self.line_bytes & (self.line_bytes - 1)):
            raise ValueError("line_bytes must be a positive power of two")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of line_bytes*associativity"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM characteristics."""

    latency_cycles: int = 120
    peak_bytes_per_cycle: float = 3.16

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")
        if self.peak_bytes_per_cycle <= 0:
            raise ValueError("peak_bytes_per_cycle must be positive")


@dataclass
class AccessResult:
    """Outcome of one memory access walked through the hierarchy."""

    hit_level: str                 # name of the level that served the access, or "DRAM"
    latency: int                   # total latency in cycles
    l1_miss: bool
    llc_miss: bool                 # missed all cache levels
    dram_bytes: int                # bytes moved to/from DRAM (line fills + writebacks)
    levels_missed: List[str] = field(default_factory=list)


class _CacheSet:
    """One set of a set-associative cache with true-LRU replacement."""

    __slots__ = ("capacity", "lines", "dirty")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.lines: List[int] = []      # tags, most-recently-used last
        self.dirty: Dict[int, bool] = {}

    def lookup(self, tag: int) -> bool:
        if tag in self.dirty:
            self.lines.remove(tag)
            self.lines.append(tag)
            return True
        return False

    def insert(self, tag: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert a line; return the evicted ``(tag, was_dirty)`` if any."""
        evicted = None
        if tag in self.dirty:
            self.lines.remove(tag)
        elif len(self.lines) >= self.capacity:
            victim = self.lines.pop(0)
            evicted = (victim, self.dirty.pop(victim))
        self.lines.append(tag)
        self.dirty[tag] = self.dirty.get(tag, False) or dirty
        return evicted

    def mark_dirty(self, tag: int) -> None:
        if tag in self.dirty:
            self.dirty[tag] = True


class Cache:
    """A single set-associative, write-allocate, write-back cache level.

    Fast path: the set/tag split is precomputed as shift/mask operations
    (line size is a power of two by construction; nearly every modelled
    geometry also has a power-of-two set count), and the cache remembers the
    *last line it touched* (hit or fill).  A repeated access to that line is
    guaranteed to hit -- nothing can have evicted it in between, because
    every other hit or fill would have retargeted the memo -- and its LRU
    move is a no-op (the line is already most-recently-used), so the access
    short-circuits to a hit counter bump.  The short-circuit is therefore
    bit-exact: hits, misses, LRU order, dirty bits and writebacks are
    identical with ``fast_path`` off.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: Dict[int, _CacheSet] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        #: How many hits were served by the same-line short-circuit (a
        #: subset of ``hits``; observability only, never modelled time).
        self.mru_hits = 0
        self.fast_path = True
        self._line_shift = config.line_bytes.bit_length() - 1
        num_sets = config.num_sets
        if num_sets & (num_sets - 1) == 0:
            self._set_mask: Optional[int] = num_sets - 1
            self._set_shift = num_sets.bit_length() - 1
        else:
            self._set_mask = None
            self._set_shift = 0
        # Last-touched-line memo (absolute line number, its set bucket and
        # tag); -1 means no line touched yet.
        self._mru_line = -1
        self._mru_bucket: Optional[_CacheSet] = None
        self._mru_tag = 0

    def _bucket_for(self, line: int) -> Tuple[_CacheSet, int]:
        if self._set_mask is not None:
            set_index = line & self._set_mask
            tag = line >> self._set_shift
        else:
            num_sets = self.config.num_sets
            set_index = line % num_sets
            tag = line // num_sets
        bucket = self._sets.get(set_index)
        if bucket is None:
            bucket = _CacheSet(self.config.associativity)
            self._sets[set_index] = bucket
        return bucket, tag

    def _set_for(self, address: int) -> Tuple[_CacheSet, int]:
        return self._bucket_for(address >> self._line_shift)

    def access(self, address: int, is_store: bool) -> bool:
        """Access one line; return True on hit.

        On a miss the line is *not* filled here -- the hierarchy decides how
        far down the miss travels and calls :meth:`fill` on the way back up.
        """
        line = address >> self._line_shift
        if line == self._mru_line and self.fast_path:
            self.hits += 1
            self.mru_hits += 1
            if is_store:
                self._mru_bucket.dirty[self._mru_tag] = True
            return True
        bucket, tag = self._bucket_for(line)
        if bucket.lookup(tag):
            self.hits += 1
            self._mru_line = line
            self._mru_bucket = bucket
            self._mru_tag = tag
            if is_store:
                bucket.mark_dirty(tag)
            return True
        self.misses += 1
        return False

    def fill(self, address: int, is_store: bool) -> bool:
        """Fill the line containing *address*; return True if a dirty line was evicted."""
        line = address >> self._line_shift
        bucket, tag = self._bucket_for(line)
        evicted = bucket.insert(tag, dirty=is_store)
        self._mru_line = line
        self._mru_bucket = bucket
        self._mru_tag = tag
        if evicted is not None and evicted[1]:
            self.writebacks += 1
            return True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.mru_hits = 0


class FastPathHierarchy:
    """Shared hierarchy-level fast path: the walk entry points of every
    hierarchy flavour (single-hart :class:`CacheHierarchy`, per-hart
    :class:`repro.smp.memory.HartCacheHierarchy`).

    Subclasses provide ``_access_line`` (the actual level walk), a ``levels``
    attribute/property, ``fast_path`` and the precomputed ``_l1`` /
    ``_line_shift`` / ``_l1_hit`` state (see :meth:`_init_fast_path`).  The
    short-circuit logic then lives in exactly one place, so the two
    hierarchies can never drift apart on the invariant the differential
    suites guard.
    """

    def _init_fast_path(self) -> None:
        """Precompute the fast-path state; call once the levels exist."""
        self.fast_path = True
        l1 = self.levels[0]
        self._l1 = l1
        self._line_shift = l1.config.line_bytes.bit_length() - 1
        # The canonical result of a repeated single-line L1 hit.  After any
        # access the accessed line is resident in L1 (the hierarchy is
        # inclusive: hits below L1 fill the upper levels on the way back),
        # so when the next single-line access touches L1's last-touched line
        # it must hit L1 -- with exactly this result.  The instance is
        # shared; consumers only read it.
        self._l1_hit = AccessResult(
            hit_level=l1.config.name, latency=l1.config.hit_latency,
            l1_miss=False, llc_miss=False, dram_bytes=0,
        )

    def set_fast_path(self, enabled: bool) -> None:
        """Toggle the same-line short-circuits (hierarchy and per level).

        Results are bit-identical either way; the switch exists so
        differential suites can run the plain walk as the reference.
        """
        self.fast_path = enabled
        for cache in self.levels:
            cache.fast_path = enabled

    def access(self, address: int, size_bytes: int, is_store: bool) -> AccessResult:
        """Walk one memory access through the hierarchy.

        Returns an aggregate :class:`AccessResult`; when the access spans
        several cache lines the worst latency is reported (the lines are
        fetched in parallel by the miss handling hardware) and DRAM bytes are
        summed.  A single-line access to the line L1 touched last
        short-circuits the walk entirely (see :class:`Cache`).
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        shift = self._line_shift
        first = address >> shift
        last = (address + size_bytes - 1) >> shift
        if first == last:
            l1 = self._l1
            if first == l1._mru_line and self.fast_path:
                l1.hits += 1
                l1.mru_hits += 1
                if is_store:
                    l1._mru_bucket.dirty[l1._mru_tag] = True
                return self._l1_hit
            return self._access_line(first << shift, is_store)
        worst: Optional[AccessResult] = None
        total_dram = 0
        l1_miss = False
        llc_miss = False
        for line_index in range(first, last + 1):
            result = self._access_line(line_index << shift, is_store)
            total_dram += result.dram_bytes
            l1_miss = l1_miss or result.l1_miss
            llc_miss = llc_miss or result.llc_miss
            if worst is None or result.latency > worst.latency:
                worst = result
        assert worst is not None
        return AccessResult(
            hit_level=worst.hit_level,
            latency=worst.latency,
            l1_miss=l1_miss,
            llc_miss=llc_miss,
            dram_bytes=total_dram,
            levels_missed=worst.levels_missed,
        )

    def fast_path_hits(self) -> Dict[str, int]:
        """Same-line short-circuit hits per level name.

        Observability only (the telemetry run collector folds deltas into
        ``repro_fast_cache_short_circuits_total``); deliberately not part of
        :meth:`stats`, which feeds golden-pinned run exports.
        """
        return {cache.config.name: cache.mru_hits for cache in self.levels}

    def access_lines(self, accesses) -> List[AccessResult]:
        """Batched :meth:`access`: one call for a stream of resolved accesses.

        *accesses* is a sequence of ``(address, size_bytes, is_store)``
        tuples -- typically the addressed memory ops of one engine flush, in
        program order.  Equivalent to calling :meth:`access` per element (the
        walk order, and therefore every hit/miss/LRU/latency outcome, is the
        same); the batched loop exists so spatially local streams pay the
        call overhead once and ride the same-line short-circuit in a tight
        loop.
        """
        out: List[AccessResult] = []
        append = out.append
        shift = self._line_shift
        l1 = self._l1
        fast = self.fast_path
        l1_hit = self._l1_hit
        access_line = self._access_line
        for address, size_bytes, is_store in accesses:
            if size_bytes <= 0:
                raise ValueError("size_bytes must be positive")
            first = address >> shift
            if first == (address + size_bytes - 1) >> shift:
                if fast and first == l1._mru_line:
                    l1.hits += 1
                    l1.mru_hits += 1
                    if is_store:
                        l1._mru_bucket.dirty[l1._mru_tag] = True
                    append(l1_hit)
                else:
                    append(access_line(first << shift, is_store))
            else:
                append(self.access(address, size_bytes, is_store))
        return out

    def _access_line(self, address: int, is_store: bool) -> AccessResult:
        raise NotImplementedError


class CacheHierarchy(FastPathHierarchy):
    """An inclusive multi-level cache hierarchy in front of DRAM.

    Accesses are performed at cache-line granularity; an access spanning
    multiple lines (for example a 32-byte vector load with a 64-byte line is
    one line, but a crossing access is two) touches each line once.
    """

    def __init__(self, levels: List[CacheConfig], memory: MemoryConfig):
        if not levels:
            raise ValueError("at least one cache level is required")
        self.levels = [Cache(cfg) for cfg in levels]
        self.memory = memory
        self.dram_read_bytes = 0
        self.dram_write_bytes = 0
        self.dram_accesses = 0
        self._init_fast_path()

    @property
    def line_bytes(self) -> int:
        return self.levels[0].config.line_bytes

    def _access_line(self, address: int, is_store: bool) -> AccessResult:
        latency = 0
        missed: List[str] = []
        for depth, cache in enumerate(self.levels):
            latency += cache.config.hit_latency
            if cache.access(address, is_store):
                # Fill the levels above (inclusive hierarchy).
                for upper in self.levels[:depth]:
                    upper.fill(address, is_store)
                return AccessResult(
                    hit_level=cache.config.name,
                    latency=latency,
                    l1_miss=depth > 0,
                    llc_miss=False,
                    dram_bytes=0,
                    levels_missed=missed,
                )
            missed.append(cache.config.name)
        # Missed every level: go to DRAM.
        latency += self.memory.latency_cycles
        dram_bytes = self.line_bytes
        self.dram_read_bytes += self.line_bytes
        self.dram_accesses += 1
        for cache in self.levels:
            if cache.fill(address, is_store):
                dram_bytes += self.line_bytes
                self.dram_write_bytes += self.line_bytes
        return AccessResult(
            hit_level="DRAM",
            latency=latency,
            l1_miss=True,
            llc_miss=True,
            dram_bytes=dram_bytes,
            levels_missed=missed,
        )

    # -- statistics -----------------------------------------------------------

    def level(self, name: str) -> Cache:
        for cache in self.levels:
            if cache.config.name == name:
                return cache
        raise KeyError(f"no cache level named {name!r}")

    def stats(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for cache in self.levels:
            out[cache.config.name] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "miss_rate": cache.miss_rate,
                "writebacks": cache.writebacks,
            }
        out["DRAM"] = {
            "read_bytes": self.dram_read_bytes,
            "write_bytes": self.dram_write_bytes,
            "accesses": self.dram_accesses,
        }
        return out

    def reset_stats(self) -> None:
        for cache in self.levels:
            cache.reset_stats()
        self.dram_read_bytes = 0
        self.dram_write_bytes = 0
        self.dram_accesses = 0
