"""Hardware event taxonomy and the event bus connecting cores to the PMU.

The PMU never looks inside the core: it observes a stream of *event
increments* published on an :class:`EventBus`.  This mirrors how real HPM
counters are wired -- an ``mhpmevent`` selector picks one event signal, and the
corresponding counter accumulates its pulses.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List


class HwEvent(enum.Enum):
    """Microarchitectural events that counters can be programmed to track.

    The first group corresponds to the Linux ``PERF_TYPE_HARDWARE`` generic
    events; the second group are vendor-specific events that only exist on
    some cores (notably the SpacemiT X60's per-privilege-mode cycle counters,
    which are central to the paper's sampling workaround).
    """

    # Generic events (perf "hardware" events).
    CYCLES = "cycles"
    INSTRUCTIONS = "instructions"
    CACHE_REFERENCES = "cache-references"
    CACHE_MISSES = "cache-misses"
    BRANCH_INSTRUCTIONS = "branch-instructions"
    BRANCH_MISSES = "branch-misses"
    STALLED_CYCLES_FRONTEND = "stalled-cycles-frontend"
    STALLED_CYCLES_BACKEND = "stalled-cycles-backend"

    # Cache / memory detail events.
    L1D_LOADS = "L1-dcache-loads"
    L1D_LOAD_MISSES = "L1-dcache-load-misses"
    L1D_STORES = "L1-dcache-stores"
    L1D_STORE_MISSES = "L1-dcache-store-misses"
    L2_REFERENCES = "l2-references"
    L2_MISSES = "l2-misses"
    DRAM_READ_BYTES = "dram-read-bytes"
    DRAM_WRITE_BYTES = "dram-write-bytes"

    # Instruction-mix events.
    FP_OPS_RETIRED = "fp-ops-retired"
    INT_OPS_RETIRED = "int-ops-retired"
    VECTOR_OPS_RETIRED = "vector-ops-retired"
    LOADS_RETIRED = "loads-retired"
    STORES_RETIRED = "stores-retired"

    # Vendor-specific: SpacemiT X60 per-privilege-mode cycle counters.
    # These are the non-standard, sampling-capable counters the workaround
    # relies upon (Section 3.3 of the paper).
    U_MODE_CYCLE = "u_mode_cycle"
    S_MODE_CYCLE = "s_mode_cycle"
    M_MODE_CYCLE = "m_mode_cycle"


#: Events every modelled core can provide.
GENERIC_EVENTS = frozenset(
    {
        HwEvent.CYCLES,
        HwEvent.INSTRUCTIONS,
        HwEvent.CACHE_REFERENCES,
        HwEvent.CACHE_MISSES,
        HwEvent.BRANCH_INSTRUCTIONS,
        HwEvent.BRANCH_MISSES,
    }
)


class EventCounts:
    """A bag of event counts: ``HwEvent -> int``.

    Used both as the accumulation target of the event bus and as the return
    value of PMU reads.
    """

    def __init__(self, initial: Dict[HwEvent, int] = None):
        self._counts: Dict[HwEvent, int] = defaultdict(int)
        if initial:
            for event, count in initial.items():
                self._counts[event] = int(count)

    def add(self, event: HwEvent, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("event increments must be non-negative")
        self._counts[event] += amount

    def get(self, event: HwEvent) -> int:
        return self._counts.get(event, 0)

    def merge(self, other: "EventCounts") -> "EventCounts":
        merged = EventCounts(dict(self._counts))
        for event, count in other._counts.items():
            merged._counts[event] += count
        return merged

    def as_dict(self) -> Dict[HwEvent, int]:
        return dict(self._counts)

    def __getitem__(self, event: HwEvent) -> int:
        return self.get(event)

    def __iter__(self):
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{e.value}={c}" for e, c in sorted(
            self._counts.items(), key=lambda kv: kv[0].value))
        return f"EventCounts({inner})"


#: Signature of event-bus subscribers: (event, amount) -> None.
EventObserver = Callable[[HwEvent, int], None]


class EventBus:
    """Publish/subscribe channel for hardware event increments.

    Cores publish increments; the PMU (and any diagnostic listener) subscribes.
    The bus also keeps its own global :class:`EventCounts` so tests and
    benches can ask "how many cycles did this run take" without going through
    the PMU at all.
    """

    def __init__(self) -> None:
        self._observers: List[EventObserver] = []
        self.totals = EventCounts()

    def subscribe(self, observer: EventObserver) -> None:
        self._observers.append(observer)

    def unsubscribe(self, observer: EventObserver) -> None:
        self._observers.remove(observer)

    def publish(self, event: HwEvent, amount: int = 1) -> None:
        if amount == 0:
            return
        self.totals.add(event, amount)
        for observer in self._observers:
            observer(event, amount)

    def publish_many(self, increments: Iterable) -> None:
        """Publish an iterable of ``(event, amount)`` pairs."""
        for event, amount in increments:
            self.publish(event, amount)
