"""Branch predictors.

Branch mispredictions are one of the stall sources the in-order timing model
exposes directly, and ``branch-misses`` is one of the generic perf events the
PMU must be able to count.  Two predictors are provided: a gshare-style
history predictor (used by the real platform models) and an always-taken
predictor (useful as a pessimistic baseline in ablations).
"""

from __future__ import annotations

from typing import Dict


class BranchPredictor:
    """Interface: predict, then update with the real outcome."""

    def predict(self, pc: int, target: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, target: int, taken: bool) -> bool:
        """Record the outcome; return True when the prediction was wrong."""
        raise NotImplementedError

    @property
    def mispredictions(self) -> int:
        raise NotImplementedError

    @property
    def predictions(self) -> int:
        raise NotImplementedError

    @property
    def miss_rate(self) -> float:
        total = self.predictions
        return self.mispredictions / total if total else 0.0


class GsharePredictor(BranchPredictor):
    """A gshare predictor: global history XOR PC indexes a table of 2-bit counters."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12):
        if table_bits <= 0 or table_bits > 24:
            raise ValueError("table_bits must be in (0, 24]")
        self._table_size = 1 << table_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._counters: Dict[int, int] = {}
        self._predictions = 0
        self._mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self._table_size

    def predict(self, pc: int, target: int = 0) -> bool:
        counter = self._counters.get(self._index(pc), 2)
        return counter >= 2

    def update(self, pc: int, target: int, taken: bool) -> bool:
        index = self._index(pc)
        counter = self._counters.get(index, 2)
        predicted = counter >= 2
        mispredicted = predicted != taken
        self._predictions += 1
        if mispredicted:
            self._mispredictions += 1
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[index] = counter
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return mispredicted

    @property
    def mispredictions(self) -> int:
        return self._mispredictions

    @property
    def predictions(self) -> int:
        return self._predictions


class AlwaysTakenPredictor(BranchPredictor):
    """Predicts every branch taken; a floor for ablation studies."""

    def __init__(self) -> None:
        self._predictions = 0
        self._mispredictions = 0

    def predict(self, pc: int, target: int = 0) -> bool:
        return True

    def update(self, pc: int, target: int, taken: bool) -> bool:
        self._predictions += 1
        mispredicted = not taken
        if mispredicted:
            self._mispredictions += 1
        return mispredicted

    @property
    def mispredictions(self) -> int:
        return self._mispredictions

    @property
    def predictions(self) -> int:
        return self._predictions
