"""Microarchitectural substrate: core timing models, caches, branch prediction.

The paper evaluates on four pieces of silicon (SiFive U74, T-Head C910,
SpacemiT X60, Intel i5-1135G7).  We replace them with cycle-approximate
timing models that reproduce the *relative* behaviour the paper reports:
the IPC gap between an in-order RISC-V core and a wide out-of-order x86 core,
and the memory/compute roofs that bound the roofline plot.
"""

from repro.cpu.events import HwEvent, EventCounts, EventBus
from repro.cpu.cache import Cache, CacheConfig, CacheHierarchy, MemoryConfig, AccessResult
from repro.cpu.branch import BranchPredictor, GsharePredictor, AlwaysTakenPredictor
from repro.cpu.core import (
    CoreConfig,
    CoreTimingModel,
    InOrderCore,
    OutOfOrderCore,
    RetireResult,
)

__all__ = [
    "HwEvent",
    "EventCounts",
    "EventBus",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "MemoryConfig",
    "AccessResult",
    "BranchPredictor",
    "GsharePredictor",
    "AlwaysTakenPredictor",
    "CoreConfig",
    "CoreTimingModel",
    "InOrderCore",
    "OutOfOrderCore",
    "RetireResult",
]
