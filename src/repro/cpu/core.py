"""Core timing models.

Two models are provided:

* :class:`InOrderCore` -- a dual-issue in-order pipeline in the spirit of the
  SiFive U74 and SpacemiT X60.  Dependent-operation latency, load-use delay,
  cache-miss latency and branch mispredictions are all exposed to the retire
  stream, which is what produces the low IPC the paper measures (0.86 on the
  X60 for sqlite3).
* :class:`OutOfOrderCore` -- a wide out-of-order machine in the spirit of the
  T-Head C910 and the Intel i5-1135G7 comparator.  Most latency is hidden by
  the scheduler; only a configurable exposed fraction of miss latency and the
  mispredict penalty reach the bottom line, giving the high IPC (3.4) the
  paper reports for x86.

The models are *cycle-approximate*: they accumulate fractional cycles per
retired :class:`~repro.isa.machine_ops.MachineOp` and publish integer cycle
increments on the :class:`~repro.cpu.events.EventBus` so the PMU sees a
monotonically increasing cycle count while execution is in flight (necessary
for sampling interrupts to fire mid-run, exactly as on hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.cpu.branch import BranchPredictor, GsharePredictor
from repro.cpu.cache import AccessResult, CacheHierarchy
from repro.cpu.events import EventBus, HwEvent
from repro.isa.machine_ops import (
    FLOP_OP_CLASSES,
    MEMORY_OP_CLASSES,
    MachineOp,
    OpClass,
    VECTOR_OP_CLASSES,
)
from repro.isa.privilege import ModeCycleAccounting, PrivilegeMode

#: Privilege mode -> the vendor per-mode cycle event it pulses.
_MODE_CYCLE_EVENT = {
    PrivilegeMode.USER: HwEvent.U_MODE_CYCLE,
    PrivilegeMode.SUPERVISOR: HwEvent.S_MODE_CYCLE,
    PrivilegeMode.MACHINE: HwEvent.M_MODE_CYCLE,
}


#: Default operation latencies (cycles), roughly matching published numbers
#: for small in-order RISC-V cores.
DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 20,
    OpClass.FP_ADD: 4,
    OpClass.FP_MUL: 5,
    OpClass.FP_FMA: 5,
    OpClass.FP_DIV: 18,
    OpClass.FP_MISC: 2,
    OpClass.LOAD: 3,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RET: 1,
    OpClass.CSR: 3,
    OpClass.ECALL: 10,
    OpClass.FENCE: 5,
    OpClass.VECTOR_ALU: 2,
    OpClass.VECTOR_FP: 4,
    OpClass.VECTOR_FMA: 4,
    OpClass.VECTOR_LOAD: 4,
    OpClass.VECTOR_STORE: 2,
    OpClass.NOP: 1,
}


@dataclass(frozen=True)
class CoreConfig:
    """Tunable parameters of a core timing model."""

    name: str
    frequency_hz: float
    issue_width: int = 2
    out_of_order: bool = False
    #: Per-opclass execution latency in cycles.
    latencies: Dict[OpClass, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    #: Fraction of (latency - 1) cycles of a non-memory op that stalls retire.
    #: In-order cores expose most of it; out-of-order cores hide most of it.
    dependency_exposure: float = 0.45
    #: Fraction of a memory access's latency (beyond the first cycle) that
    #: stalls retire.  Models load-use stalls and limited MLP for in-order
    #: cores and deep MLP for out-of-order cores.
    memory_exposure: float = 0.6
    #: Cycles lost on a branch misprediction.
    mispredict_penalty: int = 8
    #: Number of single-precision FLOPs the FP/vector datapath can retire per
    #: cycle at peak (used by the theoretical roofline roof, not the timing).
    peak_sp_flops_per_cycle: float = 16.0
    #: Single-precision lanes per vector instruction.
    vector_sp_lanes: int = 8
    #: Fixed front-end cost (cycles) added per taken control-flow transfer.
    taken_branch_bubble: float = 0.5

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if not 0.0 <= self.dependency_exposure <= 1.0:
            raise ValueError("dependency_exposure must be in [0, 1]")
        if not 0.0 <= self.memory_exposure <= 1.0:
            raise ValueError("memory_exposure must be in [0, 1]")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be non-negative")

    def latency_of(self, opclass: OpClass) -> int:
        return self.latencies.get(opclass, 1)


class BlockDelta:
    """Precomputed retirement signature of one memory-free, branch-free block.

    A basic block that retires no memory accesses and no conditional branches
    costs the same fractional cycles on every execution: nothing it does
    depends on cache or predictor state.  The engine therefore lowers such a
    block once per ``(block, core config)``, precomputes the per-op cost
    sequence and the aggregate event pulses, and retires every subsequent
    execution through :meth:`CoreTimingModel.retire_block_delta` (or as one
    sentinel in a :meth:`CoreTimingModel.retire_batch` stream) instead of op
    by op.

    Bit-exactness: the integer cycles a cost sequence produces depend only on
    the incoming fractional-cycle remainder, so the delta keeps the exact
    per-op cost list and replays the remainder walk -- and memoizes the
    ``remainder -> (cycles, new remainder)`` map, which converges to a handful
    of entries inside any loop.  Event pulse totals are constant and
    precomputed outright.  When a sampling counter arms, the machine expands
    the delta back into its per-op stream (``ops``), so overflow interrupts
    observe precise pc/cycle state.
    """

    __slots__ = ("ops", "costs", "instructions", "int_ops", "flops",
                 "vector_ops", "frontend_total", "backend_total",
                 "frontend_pulses", "backend_pulses", "last_pc", "walk_cache")

    #: Bound on the memoized remainder walk (remainders cycle quickly; the
    #: cap only guards pathological cost sequences).
    WALK_CACHE_LIMIT = 1024

    def __init__(self, ops: Tuple[MachineOp, ...], costs: Tuple[float, ...],
                 int_ops: int, flops: int, vector_ops: int,
                 frontend_total: float, backend_total: float,
                 frontend_pulses: int, backend_pulses: int, last_pc: int):
        self.ops = ops
        self.costs = costs
        self.instructions = len(ops)
        self.int_ops = int_ops
        self.flops = flops
        self.vector_ops = vector_ops
        self.frontend_total = frontend_total
        self.backend_total = backend_total
        self.frontend_pulses = frontend_pulses
        self.backend_pulses = backend_pulses
        self.last_pc = last_pc
        self.walk_cache: Dict[float, Tuple[int, float]] = {}

    def __repr__(self) -> str:
        return (f"BlockDelta(ops={self.instructions}, "
                f"cost={sum(self.costs):.3f}cyc)")


@dataclass
class RetireResult:
    """What retiring one machine op cost."""

    cycles: int
    base_cycles: float
    stall_cycles: float
    l1_miss: bool = False
    llc_miss: bool = False
    mispredicted: bool = False
    dram_bytes: int = 0


class CoreTimingModel:
    """Common machinery shared by the in-order and out-of-order models."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: CacheHierarchy,
        bus: EventBus,
        predictor: Optional[BranchPredictor] = None,
    ):
        self.config = config
        self.hierarchy = hierarchy
        self.bus = bus
        self.predictor = predictor or GsharePredictor()
        self.privilege_mode = PrivilegeMode.USER
        self.mode_cycles = ModeCycleAccounting()
        self.retired_instructions = 0
        self.total_cycles = 0
        #: How many BlockDelta sentinels the batched path retired as
        #: aggregates (observability only; never feeds modelled time).
        self.delta_blocks_retired = 0
        self._cycle_remainder = 0.0
        self.frontend_stall_cycles = 0.0
        self.backend_stall_cycles = 0.0
        # Batched-retirement dispatch tables, built lazily on first use (the
        # config is immutable after construction): per-opclass cost/flag
        # rows, and a mem-latency -> cost memo shared by all memory classes.
        self._batch_info: Optional[list] = None
        self._mem_cost_cache: Dict[int, float] = {}

    # -- to be provided by subclasses ------------------------------------------

    def _op_cost(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool) -> Tuple[float, float, float]:
        """Return ``(base, frontend_stall, backend_stall)`` fractional cycles."""
        raise NotImplementedError

    # -- public API -------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Instructions per cycle retired so far."""
        return self.retired_instructions / self.total_cycles if self.total_cycles else 0.0

    @property
    def frequency_hz(self) -> float:
        return self.config.frequency_hz

    def elapsed_seconds(self) -> float:
        return self.total_cycles / self.config.frequency_hz

    def retire(self, op: MachineOp) -> RetireResult:
        """Retire one machine op: advance time, publish PMU events."""
        mem: Optional[AccessResult] = None
        mispredicted = False

        if op.is_memory and op.address is not None and op.size_bytes > 0:
            mem = self.hierarchy.access(op.address, op.size_bytes, op.is_store)
        if op.is_branch:
            mispredicted = self.predictor.update(op.pc, op.target, op.taken)

        base, frontend, backend = self._op_cost(op, mem, mispredicted)
        self.frontend_stall_cycles += frontend
        self.backend_stall_cycles += backend
        total = base + frontend + backend

        self._cycle_remainder += total
        cycles = int(self._cycle_remainder)
        self._cycle_remainder -= cycles
        self.total_cycles += cycles
        self.retired_instructions += 1
        self.mode_cycles.add(self.privilege_mode, cycles)

        self._publish(op, mem, mispredicted, cycles, frontend, backend)

        return RetireResult(
            cycles=cycles,
            base_cycles=base,
            stall_cycles=frontend + backend,
            l1_miss=bool(mem and mem.l1_miss),
            llc_miss=bool(mem and mem.llc_miss),
            mispredicted=mispredicted,
            dram_bytes=mem.dram_bytes if mem else 0,
        )

    # -- batched retirement -----------------------------------------------------

    def _cost_row(self, op: MachineOp, mispredicted: bool = False) -> Tuple:
        """``(total, frontend, backend, frontend_pulse, backend_pulse)`` for
        one op retired with no memory result -- the same arithmetic, float op
        for float op, as the per-op path, frozen into a table row."""
        base, frontend, backend = self._op_cost(op, None, mispredicted)
        total = base + frontend + backend
        fp = int(frontend) if frontend >= 1.0 else 0
        bp = int(backend) if backend >= 1.0 else 0
        return (total, frontend, backend, fp, bp)

    def _build_batch_info(self) -> list:
        """Per-opclass dispatch rows for :meth:`retire_batch`.

        Indexed by ``OpClass.<member>.index``.  Row layouts:

        * plain ops      -- ``(0, cost_row, flop_factor, is_int, is_vector)``;
          the cost is a constant of the core config.
        * memory ops     -- ``(1, addressless_cost_row, is_load, is_store,
          is_vector)``; the addressed cost depends only on the access
          latency and is memoized in ``_mem_cost_cache``.
        * branches       -- ``(2, rows[taken][mispredicted])``.
        """
        table: list = [None] * len(OpClass)
        for opclass in OpClass:
            if opclass in MEMORY_OP_CLASSES:
                row = (1,
                       self._cost_row(MachineOp(opclass)),
                       opclass is OpClass.LOAD or opclass is OpClass.VECTOR_LOAD,
                       opclass is OpClass.STORE or opclass is OpClass.VECTOR_STORE,
                       opclass in VECTOR_OP_CLASSES)
            elif opclass is OpClass.BRANCH:
                rows = [
                    [self._cost_row(MachineOp(OpClass.BRANCH, taken=taken),
                                    mispredicted)
                     for mispredicted in (False, True)]
                    for taken in (False, True)
                ]
                row = (2, rows)
            else:
                if opclass in (OpClass.FP_FMA, OpClass.VECTOR_FMA):
                    flop_factor = 2
                elif opclass in FLOP_OP_CLASSES:
                    flop_factor = 1
                else:
                    flop_factor = 0
                is_int = opclass in (OpClass.INT_ALU, OpClass.INT_MUL,
                                     OpClass.INT_DIV, OpClass.VECTOR_ALU)
                row = (0, self._cost_row(MachineOp(opclass)), flop_factor,
                       is_int, opclass in VECTOR_OP_CLASSES)
            table[opclass.index] = row
        return table

    def block_delta_for(self, ops: Sequence[MachineOp]) -> BlockDelta:
        """Precompute the :class:`BlockDelta` of a memory-free, branch-free
        op stream (one basic block's constant retirement signature)."""
        costs = []
        int_ops = flops = vector_ops = 0
        frontend_total = 0.0
        backend_total = 0.0
        frontend_pulses = backend_pulses = 0
        last_pc = 0
        for op in ops:
            if op.opclass in MEMORY_OP_CLASSES or op.opclass is OpClass.BRANCH:
                raise ValueError(
                    "block deltas require memory-free, branch-free blocks "
                    f"(got a {op.opclass.value} op)")
            base, frontend, backend = self._op_cost(op, None, False)
            costs.append(base + frontend + backend)
            frontend_total += frontend
            backend_total += backend
            if frontend >= 1.0:
                frontend_pulses += int(frontend)
            if backend >= 1.0:
                backend_pulses += int(backend)
            flops += op.flop_count
            int_ops += op.int_op_count
            if op.is_vector:
                vector_ops += 1
            if op.pc:
                last_pc = op.pc
        return BlockDelta(tuple(ops), tuple(costs), int_ops, flops,
                          vector_ops, frontend_total, backend_total,
                          frontend_pulses, backend_pulses, last_pc)

    def retire_block_delta(self, delta: BlockDelta) -> int:
        """Retire one execution of a precomputed block in a single call.

        Equivalent to retiring ``delta.ops`` through :meth:`retire_batch`:
        the remainder walk reuses the delta's memoized ``remainder ->
        (cycles, remainder)`` map and event pulses are published from the
        precomputed aggregates.  Returns the integer cycles consumed.
        """
        return self.retire_batch((delta,))

    def retire_batch(self, ops: Sequence[object],
                     mem_results: Optional[Sequence[AccessResult]] = None) -> int:
        """Retire a chunk of ops with coalesced event publication.

        Microarchitectural state (cache hierarchy, branch predictor, the
        fractional-cycle remainder) advances op by op in stream order, so the
        per-op integer cycle sequence is identical to calling :meth:`retire`
        in a loop.  Only the event-bus publications are aggregated into one
        pulse per event per batch, which is observationally identical *as
        long as no armed sampling counter is listening* -- final counter
        values and bus totals match exactly, but a mid-batch overflow
        interrupt would fire at the flush instead of at the triggering op.
        :meth:`~repro.platforms.machine.Machine.execute_batch` enforces that
        precondition by falling back to per-op retirement while sampling is
        armed.  Returns the total integer cycles the batch consumed.

        *ops* may contain :class:`BlockDelta` sentinels (a whole precomputed
        block execution each); *mem_results* optionally supplies the
        :class:`~repro.cpu.cache.AccessResult` sequence of the batch's
        addressed memory ops, as produced by the hierarchy's batched
        ``access_lines`` entry point (the accesses are replayed in stream
        order either way, so cache state and results are identical).
        """
        table = self._batch_info
        if table is None:
            table = self._build_batch_info()
            self._batch_info = table
        access = self.hierarchy.access
        predictor_update = self.predictor.update
        mem_costs = self._mem_cost_cache
        op_cost = self._op_cost
        remainder = self._cycle_remainder
        walk_limit = BlockDelta.WALK_CACHE_LIMIT

        count = 0
        cycles_total = 0
        frontend_total = 0.0
        backend_total = 0.0
        frontend_pulses = 0
        backend_pulses = 0
        loads = stores = cache_refs = 0
        load_misses = store_misses = llc_misses = 0
        dram_read = dram_write = 0
        branches = branch_misses = 0
        flops = int_ops = vector_ops = 0
        delta_blocks = 0
        mem_index = 0

        for op in ops:
            if op.__class__ is BlockDelta:
                walk_cache = op.walk_cache
                walked = walk_cache.get(remainder)
                if walked is None:
                    r = remainder
                    total_cycles = 0
                    for cost in op.costs:
                        r += cost
                        c = int(r)
                        r -= c
                        total_cycles += c
                    if len(walk_cache) < walk_limit:
                        walk_cache[remainder] = (total_cycles, r)
                    remainder = r
                else:
                    total_cycles, remainder = walked
                cycles_total += total_cycles
                count += op.instructions
                delta_blocks += 1
                int_ops += op.int_ops
                flops += op.flops
                vector_ops += op.vector_ops
                frontend_total += op.frontend_total
                backend_total += op.backend_total
                frontend_pulses += op.frontend_pulses
                backend_pulses += op.backend_pulses
                continue

            count += 1
            info = table[op.opclass.index]
            kind = info[0]
            if kind == 0:
                total, frontend, backend, fp, bp = info[1]
                flop_factor = info[2]
                if flop_factor:
                    flops += flop_factor * op.lanes
                elif info[3]:
                    int_ops += op.lanes
                if info[4]:
                    vector_ops += 1
            elif kind == 1:
                is_load = info[2]
                is_store = info[3]
                if is_load:
                    loads += 1
                else:
                    stores += 1
                cache_refs += 1
                address = op.address
                if address is not None and op.size_bytes > 0:
                    if mem_results is None:
                        mem = access(address, op.size_bytes, is_store)
                    else:
                        mem = mem_results[mem_index]
                        mem_index += 1
                    cached = mem_costs.get(mem.latency)
                    if cached is None:
                        base, frontend, backend = op_cost(op, mem, False)
                        cached = (base + frontend + backend, backend,
                                  int(backend) if backend >= 1.0 else 0)
                        mem_costs[mem.latency] = cached
                    total, backend, bp = cached
                    frontend = 0.0
                    fp = 0
                    if mem.l1_miss:
                        if is_load:
                            load_misses += 1
                        else:
                            store_misses += 1
                    if mem.llc_miss:
                        llc_misses += 1
                    dram = mem.dram_bytes
                    if dram:
                        if is_store:
                            dram_write += dram
                        else:
                            dram_read += dram
                else:
                    total, frontend, backend, fp, bp = info[1]
                if info[4]:
                    vector_ops += 1
            else:
                mispredicted = predictor_update(op.pc, op.target, op.taken)
                branches += 1
                if mispredicted:
                    branch_misses += 1
                total, frontend, backend, fp, bp = info[1][op.taken][mispredicted]

            frontend_total += frontend
            backend_total += backend
            frontend_pulses += fp
            backend_pulses += bp
            remainder += total
            cycles = int(remainder)
            remainder -= cycles
            cycles_total += cycles

        self._cycle_remainder = remainder
        self.total_cycles += cycles_total
        self.retired_instructions += count
        self.delta_blocks_retired += delta_blocks
        self.frontend_stall_cycles += frontend_total
        self.backend_stall_cycles += backend_total
        self.mode_cycles.add(self.privilege_mode, cycles_total)

        publish = self.bus.publish
        if cycles_total:
            publish(HwEvent.CYCLES, cycles_total)
            publish(_MODE_CYCLE_EVENT[self.privilege_mode], cycles_total)
        if count:
            publish(HwEvent.INSTRUCTIONS, count)
        if loads:
            publish(HwEvent.LOADS_RETIRED, loads)
            publish(HwEvent.L1D_LOADS, loads)
        if stores:
            publish(HwEvent.STORES_RETIRED, stores)
            publish(HwEvent.L1D_STORES, stores)
        if cache_refs:
            publish(HwEvent.CACHE_REFERENCES, cache_refs)
        if load_misses:
            publish(HwEvent.L1D_LOAD_MISSES, load_misses)
        if store_misses:
            publish(HwEvent.L1D_STORE_MISSES, store_misses)
        if llc_misses:
            publish(HwEvent.CACHE_MISSES, llc_misses)
        if dram_read:
            publish(HwEvent.DRAM_READ_BYTES, dram_read)
        if dram_write:
            publish(HwEvent.DRAM_WRITE_BYTES, dram_write)
        if branches:
            publish(HwEvent.BRANCH_INSTRUCTIONS, branches)
        if branch_misses:
            publish(HwEvent.BRANCH_MISSES, branch_misses)
        if flops:
            publish(HwEvent.FP_OPS_RETIRED, flops)
        if int_ops:
            publish(HwEvent.INT_OPS_RETIRED, int_ops)
        if vector_ops:
            publish(HwEvent.VECTOR_OPS_RETIRED, vector_ops)
        if frontend_pulses:
            publish(HwEvent.STALLED_CYCLES_FRONTEND, frontend_pulses)
        if backend_pulses:
            publish(HwEvent.STALLED_CYCLES_BACKEND, backend_pulses)
        return cycles_total

    # -- event publication ------------------------------------------------------

    def _publish(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool, cycles: int,
                 frontend: float, backend: float) -> None:
        bus = self.bus
        if cycles:
            bus.publish(HwEvent.CYCLES, cycles)
            bus.publish(_MODE_CYCLE_EVENT[self.privilege_mode], cycles)
        bus.publish(HwEvent.INSTRUCTIONS, 1)

        if op.is_load:
            bus.publish(HwEvent.LOADS_RETIRED, 1)
            bus.publish(HwEvent.L1D_LOADS, 1)
        elif op.is_store:
            bus.publish(HwEvent.STORES_RETIRED, 1)
            bus.publish(HwEvent.L1D_STORES, 1)
        if op.is_memory:
            bus.publish(HwEvent.CACHE_REFERENCES, 1)
            if mem is not None:
                if mem.l1_miss:
                    bus.publish(
                        HwEvent.L1D_LOAD_MISSES if op.is_load else HwEvent.L1D_STORE_MISSES,
                        1,
                    )
                if mem.llc_miss:
                    bus.publish(HwEvent.CACHE_MISSES, 1)
                if mem.dram_bytes:
                    if op.is_store:
                        bus.publish(HwEvent.DRAM_WRITE_BYTES, mem.dram_bytes)
                    else:
                        bus.publish(HwEvent.DRAM_READ_BYTES, mem.dram_bytes)

        if op.is_branch:
            bus.publish(HwEvent.BRANCH_INSTRUCTIONS, 1)
            if mispredicted:
                bus.publish(HwEvent.BRANCH_MISSES, 1)

        flops = op.flop_count
        if flops:
            bus.publish(HwEvent.FP_OPS_RETIRED, flops)
        int_ops = op.int_op_count
        if int_ops:
            bus.publish(HwEvent.INT_OPS_RETIRED, int_ops)
        if op.is_vector:
            bus.publish(HwEvent.VECTOR_OPS_RETIRED, 1)

        if frontend >= 1.0:
            bus.publish(HwEvent.STALLED_CYCLES_FRONTEND, int(frontend))
        if backend >= 1.0:
            bus.publish(HwEvent.STALLED_CYCLES_BACKEND, int(backend))

    # -- misc -------------------------------------------------------------------

    def set_privilege_mode(self, mode: PrivilegeMode) -> None:
        self.privilege_mode = mode

    def stats(self) -> Dict[str, float]:
        return {
            "instructions": self.retired_instructions,
            "cycles": self.total_cycles,
            "ipc": self.ipc,
            "frontend_stall_cycles": self.frontend_stall_cycles,
            "backend_stall_cycles": self.backend_stall_cycles,
            "branch_miss_rate": self.predictor.miss_rate,
        }


class InOrderCore(CoreTimingModel):
    """Dual-issue in-order pipeline: stalls are exposed at retire."""

    def _op_cost(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool) -> Tuple[float, float, float]:
        cfg = self.config
        base = 1.0 / cfg.issue_width
        frontend = 0.0
        backend = 0.0

        latency = cfg.latency_of(op.opclass)
        if op.is_memory:
            if mem is not None:
                # The first hit-latency cycle overlaps with issue; the rest is
                # exposed according to the core's (limited) MLP.
                backend += max(0, mem.latency - 1) * cfg.memory_exposure
            else:
                backend += max(0, latency - 1) * cfg.memory_exposure
        else:
            backend += max(0, latency - 1) * cfg.dependency_exposure

        if op.is_control:
            if mispredicted:
                frontend += cfg.mispredict_penalty
            elif op.taken or op.opclass in (OpClass.JUMP, OpClass.CALL, OpClass.RET):
                frontend += cfg.taken_branch_bubble

        return base, frontend, backend


class OutOfOrderCore(CoreTimingModel):
    """Wide out-of-order machine: most latency is hidden by the scheduler."""

    #: How much of the *exposed* stall an OoO core still pays relative to the
    #: in-order formula.  The scheduler and deep MLP hide the rest.
    HIDE_FACTOR = 0.10

    def _op_cost(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool) -> Tuple[float, float, float]:
        cfg = self.config
        base = 1.0 / cfg.issue_width
        frontend = 0.0
        backend = 0.0

        latency = cfg.latency_of(op.opclass)
        if op.is_memory:
            if mem is not None:
                exposed = max(0, mem.latency - 1) * cfg.memory_exposure
            else:
                exposed = max(0, latency - 1) * cfg.memory_exposure
            backend += exposed * self.HIDE_FACTOR
        elif op.opclass in (OpClass.INT_DIV, OpClass.FP_DIV):
            # Divides are unpipelined even on big cores.
            backend += max(0, latency - 1) * cfg.dependency_exposure
        else:
            backend += max(0, latency - 1) * cfg.dependency_exposure * self.HIDE_FACTOR

        if op.is_branch and mispredicted:
            frontend += cfg.mispredict_penalty

        return base, frontend, backend
