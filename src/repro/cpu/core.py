"""Core timing models.

Two models are provided:

* :class:`InOrderCore` -- a dual-issue in-order pipeline in the spirit of the
  SiFive U74 and SpacemiT X60.  Dependent-operation latency, load-use delay,
  cache-miss latency and branch mispredictions are all exposed to the retire
  stream, which is what produces the low IPC the paper measures (0.86 on the
  X60 for sqlite3).
* :class:`OutOfOrderCore` -- a wide out-of-order machine in the spirit of the
  T-Head C910 and the Intel i5-1135G7 comparator.  Most latency is hidden by
  the scheduler; only a configurable exposed fraction of miss latency and the
  mispredict penalty reach the bottom line, giving the high IPC (3.4) the
  paper reports for x86.

The models are *cycle-approximate*: they accumulate fractional cycles per
retired :class:`~repro.isa.machine_ops.MachineOp` and publish integer cycle
increments on the :class:`~repro.cpu.events.EventBus` so the PMU sees a
monotonically increasing cycle count while execution is in flight (necessary
for sampling interrupts to fire mid-run, exactly as on hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.cpu.branch import BranchPredictor, GsharePredictor
from repro.cpu.cache import AccessResult, CacheHierarchy
from repro.cpu.events import EventBus, HwEvent
from repro.isa.machine_ops import (
    FLOP_OP_CLASSES,
    MEMORY_OP_CLASSES,
    MachineOp,
    OpClass,
    VECTOR_OP_CLASSES,
)
from repro.isa.privilege import ModeCycleAccounting, PrivilegeMode

#: Privilege mode -> the vendor per-mode cycle event it pulses.
_MODE_CYCLE_EVENT = {
    PrivilegeMode.USER: HwEvent.U_MODE_CYCLE,
    PrivilegeMode.SUPERVISOR: HwEvent.S_MODE_CYCLE,
    PrivilegeMode.MACHINE: HwEvent.M_MODE_CYCLE,
}


#: Default operation latencies (cycles), roughly matching published numbers
#: for small in-order RISC-V cores.
DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 20,
    OpClass.FP_ADD: 4,
    OpClass.FP_MUL: 5,
    OpClass.FP_FMA: 5,
    OpClass.FP_DIV: 18,
    OpClass.FP_MISC: 2,
    OpClass.LOAD: 3,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RET: 1,
    OpClass.CSR: 3,
    OpClass.ECALL: 10,
    OpClass.FENCE: 5,
    OpClass.VECTOR_ALU: 2,
    OpClass.VECTOR_FP: 4,
    OpClass.VECTOR_FMA: 4,
    OpClass.VECTOR_LOAD: 4,
    OpClass.VECTOR_STORE: 2,
    OpClass.NOP: 1,
}


@dataclass(frozen=True)
class CoreConfig:
    """Tunable parameters of a core timing model."""

    name: str
    frequency_hz: float
    issue_width: int = 2
    out_of_order: bool = False
    #: Per-opclass execution latency in cycles.
    latencies: Dict[OpClass, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    #: Fraction of (latency - 1) cycles of a non-memory op that stalls retire.
    #: In-order cores expose most of it; out-of-order cores hide most of it.
    dependency_exposure: float = 0.45
    #: Fraction of a memory access's latency (beyond the first cycle) that
    #: stalls retire.  Models load-use stalls and limited MLP for in-order
    #: cores and deep MLP for out-of-order cores.
    memory_exposure: float = 0.6
    #: Cycles lost on a branch misprediction.
    mispredict_penalty: int = 8
    #: Number of single-precision FLOPs the FP/vector datapath can retire per
    #: cycle at peak (used by the theoretical roofline roof, not the timing).
    peak_sp_flops_per_cycle: float = 16.0
    #: Single-precision lanes per vector instruction.
    vector_sp_lanes: int = 8
    #: Fixed front-end cost (cycles) added per taken control-flow transfer.
    taken_branch_bubble: float = 0.5

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if not 0.0 <= self.dependency_exposure <= 1.0:
            raise ValueError("dependency_exposure must be in [0, 1]")
        if not 0.0 <= self.memory_exposure <= 1.0:
            raise ValueError("memory_exposure must be in [0, 1]")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be non-negative")

    def latency_of(self, opclass: OpClass) -> int:
        return self.latencies.get(opclass, 1)


@dataclass
class RetireResult:
    """What retiring one machine op cost."""

    cycles: int
    base_cycles: float
    stall_cycles: float
    l1_miss: bool = False
    llc_miss: bool = False
    mispredicted: bool = False
    dram_bytes: int = 0


class CoreTimingModel:
    """Common machinery shared by the in-order and out-of-order models."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: CacheHierarchy,
        bus: EventBus,
        predictor: Optional[BranchPredictor] = None,
    ):
        self.config = config
        self.hierarchy = hierarchy
        self.bus = bus
        self.predictor = predictor or GsharePredictor()
        self.privilege_mode = PrivilegeMode.USER
        self.mode_cycles = ModeCycleAccounting()
        self.retired_instructions = 0
        self.total_cycles = 0
        self._cycle_remainder = 0.0
        self.frontend_stall_cycles = 0.0
        self.backend_stall_cycles = 0.0

    # -- to be provided by subclasses ------------------------------------------

    def _op_cost(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool) -> Tuple[float, float, float]:
        """Return ``(base, frontend_stall, backend_stall)`` fractional cycles."""
        raise NotImplementedError

    # -- public API -------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Instructions per cycle retired so far."""
        return self.retired_instructions / self.total_cycles if self.total_cycles else 0.0

    @property
    def frequency_hz(self) -> float:
        return self.config.frequency_hz

    def elapsed_seconds(self) -> float:
        return self.total_cycles / self.config.frequency_hz

    def retire(self, op: MachineOp) -> RetireResult:
        """Retire one machine op: advance time, publish PMU events."""
        mem: Optional[AccessResult] = None
        mispredicted = False

        if op.is_memory and op.address is not None and op.size_bytes > 0:
            mem = self.hierarchy.access(op.address, op.size_bytes, op.is_store)
        if op.is_branch:
            mispredicted = self.predictor.update(op.pc, op.target, op.taken)

        base, frontend, backend = self._op_cost(op, mem, mispredicted)
        self.frontend_stall_cycles += frontend
        self.backend_stall_cycles += backend
        total = base + frontend + backend

        self._cycle_remainder += total
        cycles = int(self._cycle_remainder)
        self._cycle_remainder -= cycles
        self.total_cycles += cycles
        self.retired_instructions += 1
        self.mode_cycles.add(self.privilege_mode, cycles)

        self._publish(op, mem, mispredicted, cycles, frontend, backend)

        return RetireResult(
            cycles=cycles,
            base_cycles=base,
            stall_cycles=frontend + backend,
            l1_miss=bool(mem and mem.l1_miss),
            llc_miss=bool(mem and mem.llc_miss),
            mispredicted=mispredicted,
            dram_bytes=mem.dram_bytes if mem else 0,
        )

    def retire_batch(self, ops: Sequence[MachineOp]) -> int:
        """Retire a chunk of ops with coalesced event publication.

        Microarchitectural state (cache hierarchy, branch predictor, the
        fractional-cycle remainder) advances op by op in stream order, so the
        per-op integer cycle sequence is identical to calling :meth:`retire`
        in a loop.  Only the event-bus publications are aggregated into one
        pulse per event per batch, which is observationally identical *as
        long as no armed sampling counter is listening* -- final counter
        values and bus totals match exactly, but a mid-batch overflow
        interrupt would fire at the flush instead of at the triggering op.
        :meth:`~repro.platforms.machine.Machine.execute_batch` enforces that
        precondition by falling back to per-op retirement while sampling is
        armed.  Returns the total integer cycles the batch consumed.
        """
        cfg = self.config
        access = self.hierarchy.access
        predictor_update = self.predictor.update
        op_cost = self._op_cost
        remainder = self._cycle_remainder

        count = 0
        cycles_total = 0
        frontend_total = 0.0
        backend_total = 0.0
        frontend_pulses = 0
        backend_pulses = 0
        loads = stores = cache_refs = 0
        load_misses = store_misses = llc_misses = 0
        dram_read = dram_write = 0
        branches = branch_misses = 0
        flops = int_ops = vector_ops = 0

        for op in ops:
            count += 1
            opclass = op.opclass
            mem: Optional[AccessResult] = None
            mispredicted = False
            is_memory = opclass in MEMORY_OP_CLASSES
            if is_memory and op.address is not None and op.size_bytes > 0:
                mem = access(op.address, op.size_bytes, op.is_store)
            if opclass is OpClass.BRANCH:
                mispredicted = predictor_update(op.pc, op.target, op.taken)

            base, frontend, backend = op_cost(op, mem, mispredicted)
            frontend_total += frontend
            backend_total += backend
            total = base + frontend + backend
            remainder += total
            cycles = int(remainder)
            remainder -= cycles
            cycles_total += cycles

            is_load = opclass is OpClass.LOAD or opclass is OpClass.VECTOR_LOAD
            is_store = opclass is OpClass.STORE or opclass is OpClass.VECTOR_STORE
            if is_load:
                loads += 1
            elif is_store:
                stores += 1
            if is_memory:
                cache_refs += 1
                if mem is not None:
                    if mem.l1_miss:
                        if is_load:
                            load_misses += 1
                        else:
                            store_misses += 1
                    if mem.llc_miss:
                        llc_misses += 1
                    if mem.dram_bytes:
                        if is_store:
                            dram_write += mem.dram_bytes
                        else:
                            dram_read += mem.dram_bytes

            if opclass is OpClass.BRANCH:
                branches += 1
                if mispredicted:
                    branch_misses += 1

            if opclass is OpClass.FP_FMA or opclass is OpClass.VECTOR_FMA:
                flops += 2 * op.lanes
            elif opclass in FLOP_OP_CLASSES:
                flops += op.lanes
            if (opclass is OpClass.INT_ALU or opclass is OpClass.INT_MUL
                    or opclass is OpClass.INT_DIV or opclass is OpClass.VECTOR_ALU):
                int_ops += op.lanes
            if opclass in VECTOR_OP_CLASSES:
                vector_ops += 1

            if frontend >= 1.0:
                frontend_pulses += int(frontend)
            if backend >= 1.0:
                backend_pulses += int(backend)

        self._cycle_remainder = remainder
        self.total_cycles += cycles_total
        self.retired_instructions += count
        self.frontend_stall_cycles += frontend_total
        self.backend_stall_cycles += backend_total
        self.mode_cycles.add(self.privilege_mode, cycles_total)

        publish = self.bus.publish
        if cycles_total:
            publish(HwEvent.CYCLES, cycles_total)
            publish(_MODE_CYCLE_EVENT[self.privilege_mode], cycles_total)
        if count:
            publish(HwEvent.INSTRUCTIONS, count)
        if loads:
            publish(HwEvent.LOADS_RETIRED, loads)
            publish(HwEvent.L1D_LOADS, loads)
        if stores:
            publish(HwEvent.STORES_RETIRED, stores)
            publish(HwEvent.L1D_STORES, stores)
        if cache_refs:
            publish(HwEvent.CACHE_REFERENCES, cache_refs)
        if load_misses:
            publish(HwEvent.L1D_LOAD_MISSES, load_misses)
        if store_misses:
            publish(HwEvent.L1D_STORE_MISSES, store_misses)
        if llc_misses:
            publish(HwEvent.CACHE_MISSES, llc_misses)
        if dram_read:
            publish(HwEvent.DRAM_READ_BYTES, dram_read)
        if dram_write:
            publish(HwEvent.DRAM_WRITE_BYTES, dram_write)
        if branches:
            publish(HwEvent.BRANCH_INSTRUCTIONS, branches)
        if branch_misses:
            publish(HwEvent.BRANCH_MISSES, branch_misses)
        if flops:
            publish(HwEvent.FP_OPS_RETIRED, flops)
        if int_ops:
            publish(HwEvent.INT_OPS_RETIRED, int_ops)
        if vector_ops:
            publish(HwEvent.VECTOR_OPS_RETIRED, vector_ops)
        if frontend_pulses:
            publish(HwEvent.STALLED_CYCLES_FRONTEND, frontend_pulses)
        if backend_pulses:
            publish(HwEvent.STALLED_CYCLES_BACKEND, backend_pulses)
        return cycles_total

    # -- event publication ------------------------------------------------------

    def _publish(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool, cycles: int,
                 frontend: float, backend: float) -> None:
        bus = self.bus
        if cycles:
            bus.publish(HwEvent.CYCLES, cycles)
            bus.publish(_MODE_CYCLE_EVENT[self.privilege_mode], cycles)
        bus.publish(HwEvent.INSTRUCTIONS, 1)

        if op.is_load:
            bus.publish(HwEvent.LOADS_RETIRED, 1)
            bus.publish(HwEvent.L1D_LOADS, 1)
        elif op.is_store:
            bus.publish(HwEvent.STORES_RETIRED, 1)
            bus.publish(HwEvent.L1D_STORES, 1)
        if op.is_memory:
            bus.publish(HwEvent.CACHE_REFERENCES, 1)
            if mem is not None:
                if mem.l1_miss:
                    bus.publish(
                        HwEvent.L1D_LOAD_MISSES if op.is_load else HwEvent.L1D_STORE_MISSES,
                        1,
                    )
                if mem.llc_miss:
                    bus.publish(HwEvent.CACHE_MISSES, 1)
                if mem.dram_bytes:
                    if op.is_store:
                        bus.publish(HwEvent.DRAM_WRITE_BYTES, mem.dram_bytes)
                    else:
                        bus.publish(HwEvent.DRAM_READ_BYTES, mem.dram_bytes)

        if op.is_branch:
            bus.publish(HwEvent.BRANCH_INSTRUCTIONS, 1)
            if mispredicted:
                bus.publish(HwEvent.BRANCH_MISSES, 1)

        flops = op.flop_count
        if flops:
            bus.publish(HwEvent.FP_OPS_RETIRED, flops)
        int_ops = op.int_op_count
        if int_ops:
            bus.publish(HwEvent.INT_OPS_RETIRED, int_ops)
        if op.is_vector:
            bus.publish(HwEvent.VECTOR_OPS_RETIRED, 1)

        if frontend >= 1.0:
            bus.publish(HwEvent.STALLED_CYCLES_FRONTEND, int(frontend))
        if backend >= 1.0:
            bus.publish(HwEvent.STALLED_CYCLES_BACKEND, int(backend))

    # -- misc -------------------------------------------------------------------

    def set_privilege_mode(self, mode: PrivilegeMode) -> None:
        self.privilege_mode = mode

    def stats(self) -> Dict[str, float]:
        return {
            "instructions": self.retired_instructions,
            "cycles": self.total_cycles,
            "ipc": self.ipc,
            "frontend_stall_cycles": self.frontend_stall_cycles,
            "backend_stall_cycles": self.backend_stall_cycles,
            "branch_miss_rate": self.predictor.miss_rate,
        }


class InOrderCore(CoreTimingModel):
    """Dual-issue in-order pipeline: stalls are exposed at retire."""

    def _op_cost(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool) -> Tuple[float, float, float]:
        cfg = self.config
        base = 1.0 / cfg.issue_width
        frontend = 0.0
        backend = 0.0

        latency = cfg.latency_of(op.opclass)
        if op.is_memory:
            if mem is not None:
                # The first hit-latency cycle overlaps with issue; the rest is
                # exposed according to the core's (limited) MLP.
                backend += max(0, mem.latency - 1) * cfg.memory_exposure
            else:
                backend += max(0, latency - 1) * cfg.memory_exposure
        else:
            backend += max(0, latency - 1) * cfg.dependency_exposure

        if op.is_control:
            if mispredicted:
                frontend += cfg.mispredict_penalty
            elif op.taken or op.opclass in (OpClass.JUMP, OpClass.CALL, OpClass.RET):
                frontend += cfg.taken_branch_bubble

        return base, frontend, backend


class OutOfOrderCore(CoreTimingModel):
    """Wide out-of-order machine: most latency is hidden by the scheduler."""

    #: How much of the *exposed* stall an OoO core still pays relative to the
    #: in-order formula.  The scheduler and deep MLP hide the rest.
    HIDE_FACTOR = 0.10

    def _op_cost(self, op: MachineOp, mem: Optional[AccessResult],
                 mispredicted: bool) -> Tuple[float, float, float]:
        cfg = self.config
        base = 1.0 / cfg.issue_width
        frontend = 0.0
        backend = 0.0

        latency = cfg.latency_of(op.opclass)
        if op.is_memory:
            if mem is not None:
                exposed = max(0, mem.latency - 1) * cfg.memory_exposure
            else:
                exposed = max(0, latency - 1) * cfg.memory_exposure
            backend += exposed * self.HIDE_FACTOR
        elif op.opclass in (OpClass.INT_DIV, OpClass.FP_DIV):
            # Divides are unpipelined even on big cores.
            backend += max(0, latency - 1) * cfg.dependency_exposure
        else:
            backend += max(0, latency - 1) * cfg.dependency_exposure * self.HIDE_FACTOR

        if op.is_branch and mispredicted:
            frontend += cfg.mispredict_penalty

        return base, frontend, backend
