"""Runtime support for the Roofline instrumentation.

The instrumentation pass inserts calls to four entry points; this module
implements them as an external-call handler for the execution engine:

* ``mperf_roofline_internal_notify_loop_begin(loop_id) -> handle``
* ``mperf_roofline_internal_is_instrumented_profiling() -> i1``
* ``mperf_roofline_internal_block_exec(handle, loaded, stored, intops, fpops)``
* ``mperf_roofline_internal_notify_loop_end(handle)``

Whether the instrumented or the baseline loop version runs is controlled per
runtime instance (and can be forced through the ``MPERF_INSTRUMENT``
environment variable, mirroring the real tool).  Each completed loop
execution produces a :class:`LoopExecutionRecord` combining the byte/op
counts accumulated by ``block_exec`` with the elapsed cycles and instructions
observed on the machine between begin and end -- exactly the quantities the
two-phase roofline construction needs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.transforms.roofline_pass import (
    LoopDescriptor,
    MPERF_LOOPS_KEY,
    RUNTIME_BLOCK_EXEC,
    RUNTIME_IS_INSTRUMENTED,
    RUNTIME_NOTIFY_BEGIN,
    RUNTIME_NOTIFY_END,
)
from repro.compiler.ir.module import Module
from repro.platforms.machine import Machine

#: Environment variable that forces instrumented profiling on (value "1").
MPERF_INSTRUMENT_ENV = "MPERF_INSTRUMENT"


@dataclass
class LoopExecutionRecord:
    """One dynamic execution of one instrumented loop nest."""

    loop_id: int
    descriptor: Optional[LoopDescriptor]
    instrumented: bool
    loaded_bytes: int = 0
    stored_bytes: int = 0
    int_ops: int = 0
    fp_ops: int = 0
    cycles: int = 0
    instructions: int = 0

    @property
    def total_bytes(self) -> int:
        return self.loaded_bytes + self.stored_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic (the roofline x-axis)."""
        return self.fp_ops / self.total_bytes if self.total_bytes else 0.0

    def gflops(self, frequency_hz: float) -> float:
        """Achieved GFLOP/s given the core frequency (the roofline y-axis)."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / frequency_hz
        return self.fp_ops / seconds / 1e9

    def bandwidth_gbps(self, frequency_hz: float) -> float:
        """Achieved memory traffic in GB/s."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / frequency_hz
        return self.total_bytes / seconds / 1e9

    def label(self) -> str:
        if self.descriptor is not None:
            return self.descriptor.label()
        return f"loop#{self.loop_id}"


class _ActiveLoop:
    __slots__ = ("record", "begin_cycles", "begin_instructions")

    def __init__(self, record: LoopExecutionRecord, begin_cycles: int,
                 begin_instructions: int):
        self.record = record
        self.begin_cycles = begin_cycles
        self.begin_instructions = begin_instructions


class RooflineRuntime:
    """External-call handler implementing the mperf runtime entry points."""

    def __init__(self, module: Optional[Module] = None,
                 machine: Optional[Machine] = None,
                 instrumented: Optional[bool] = None):
        self.machine = machine
        self.loops_table: Dict[int, LoopDescriptor] = {}
        if module is not None:
            self.loops_table = dict(module.metadata.get(MPERF_LOOPS_KEY, {}))
        if instrumented is None:
            instrumented = os.environ.get(MPERF_INSTRUMENT_ENV, "0") == "1"
        self.instrumented = instrumented
        self.records: List[LoopExecutionRecord] = []
        self._active: Dict[int, _ActiveLoop] = {}
        self._next_handle = 1

    # -- external-call handler protocol ---------------------------------------------------

    _HANDLED = frozenset({
        RUNTIME_NOTIFY_BEGIN,
        RUNTIME_NOTIFY_END,
        RUNTIME_IS_INSTRUMENTED,
        RUNTIME_BLOCK_EXEC,
    })

    def handles(self, name: str) -> bool:
        return name in self._HANDLED

    def call(self, name: str, args: List[object]) -> object:
        if name == RUNTIME_IS_INSTRUMENTED:
            return 1 if self.instrumented else 0
        if name == RUNTIME_NOTIFY_BEGIN:
            return self._notify_begin(int(args[0]))
        if name == RUNTIME_BLOCK_EXEC:
            return self._block_exec(int(args[0]), int(args[1]), int(args[2]),
                                    int(args[3]), int(args[4]))
        if name == RUNTIME_NOTIFY_END:
            return self._notify_end(int(args[0]))
        raise KeyError(f"RooflineRuntime does not handle {name!r}")

    # -- entry points ------------------------------------------------------------------------

    def _now(self) -> int:
        return self.machine.clock() if self.machine is not None else 0

    def _instructions_now(self) -> int:
        return self.machine.instructions if self.machine is not None else 0

    def _notify_begin(self, loop_id: int) -> int:
        handle = self._next_handle
        self._next_handle += 1
        record = LoopExecutionRecord(
            loop_id=loop_id,
            descriptor=self.loops_table.get(loop_id),
            instrumented=self.instrumented,
        )
        self._active[handle] = _ActiveLoop(record, self._now(), self._instructions_now())
        return handle

    def _block_exec(self, handle: int, loaded: int, stored: int,
                    int_ops: int, fp_ops: int) -> None:
        active = self._active.get(handle)
        if active is None:
            return
        record = active.record
        record.loaded_bytes += loaded
        record.stored_bytes += stored
        record.int_ops += int_ops
        record.fp_ops += fp_ops

    def _notify_end(self, handle: int) -> None:
        active = self._active.pop(handle, None)
        if active is None:
            return
        record = active.record
        record.cycles = self._now() - active.begin_cycles
        record.instructions = self._instructions_now() - active.begin_instructions
        self.records.append(record)

    # -- result access -----------------------------------------------------------------------

    def records_for_loop(self, loop_id: int) -> List[LoopExecutionRecord]:
        return [r for r in self.records if r.loop_id == loop_id]

    def merged_record(self, loop_id: int) -> Optional[LoopExecutionRecord]:
        """Aggregate every execution of one loop into a single record."""
        records = self.records_for_loop(loop_id)
        if not records:
            return None
        merged = LoopExecutionRecord(
            loop_id=loop_id,
            descriptor=records[0].descriptor,
            instrumented=any(r.instrumented for r in records),
        )
        for record in records:
            merged.loaded_bytes += record.loaded_bytes
            merged.stored_bytes += record.stored_bytes
            merged.int_ops += record.int_ops
            merged.fp_ops += record.fp_ops
            merged.cycles += record.cycles
            merged.instructions += record.instructions
        return merged

    def reset(self) -> None:
        self.records.clear()
        self._active.clear()
