"""The mperf roofline runtime (the library the instrumented code calls into)."""

from repro.runtime.roofline_runtime import (
    RooflineRuntime,
    LoopExecutionRecord,
    MPERF_INSTRUMENT_ENV,
)

__all__ = ["RooflineRuntime", "LoopExecutionRecord", "MPERF_INSTRUMENT_ENV"]
