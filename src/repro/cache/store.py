"""Dependency-free, content-addressed, disk-persistent artifact store.

The pattern behind ccache and Bazel's action cache, reduced to the stdlib:
artifacts live as flat files under a *versioned* cache directory,

    <root>/v1/<kind>/<key[:2]>/<key>

addressed by the sha256 content keys of :mod:`repro.cache.keys`.  Every
entry is a self-describing envelope::

    magic | header length | header JSON | payload bytes

where the header records the schema version, the kind, the key and the
payload's sha256 + size.  :meth:`DiskCache.get` re-derives the payload hash
on every read and treats *any* defect -- truncation, a flipped bit, a
foreign or future schema, a kind/key mismatch -- as a miss: the corrupt
entry is removed and the caller recomputes, so a damaged cache can cost
time but never correctness.  Writes go through a same-directory temp file
and ``os.replace``, so concurrent writers (two ``run_many`` workers racing
on one key) each leave a complete, readable entry and readers never observe
a partial write.

The store is a throughput lever, never a correctness dependency: every
artifact it holds is byte-reproducible from its inputs (the differential
suites enforce it), so serving from disk is equivalent to recomputing.

Process-wide wiring: :func:`default_store` resolves the shared store from
``REPRO_CACHE_DIR`` (default ``$XDG_CACHE_HOME/repro`` or
``~/.cache/repro``); ``REPRO_DISK_CACHE=0|off|false|no`` disables disk
persistence entirely.  Lookup outcomes land in the unified telemetry
registry (``repro_disk_cache_total{outcome=hit|miss|integrity_failure|
write}``).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
import tempfile
from typing import Dict, Iterator, Optional, Tuple

from repro import faults as _faults
from repro import telemetry as _telemetry

#: Bump to invalidate every existing entry (the version names the root dir).
SCHEMA_VERSION = 1

_MAGIC = b"RPROCACH"
_HEADER_LEN = struct.Struct(">I")

#: Values of ``REPRO_DISK_CACHE`` that turn disk persistence off.
_OFF_VALUES = frozenset({"0", "off", "false", "no"})


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file and
    ``os.replace``, so readers never observe a partial write.  Raises
    ``OSError`` on failure (callers decide whether that is fatal)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def _count(outcome: str, kind: str) -> None:
    _telemetry.REGISTRY.counter(
        "repro_disk_cache_total",
        "Disk artifact-store lookups by outcome").inc(
            outcome=outcome, kind=kind)


class DiskCache:
    """One content-addressed store rooted at a cache directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.version_dir = os.path.join(self.root, f"v{SCHEMA_VERSION}")
        # Plain process-wide tallies, mirrored into the telemetry registry
        # at the lookup sites (counter labels carry the artifact kind).
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.integrity_failures = 0

    # -- layout -------------------------------------------------------------------------

    def entry_path(self, kind: str, key: str) -> str:
        return os.path.join(self.version_dir, kind, key[:2], key)

    def entries(self, kind: Optional[str] = None) -> Iterator[Tuple[str, str, str]]:
        """Every stored ``(kind, key, path)``, in deterministic sorted order."""
        if not os.path.isdir(self.version_dir):
            return
        kinds = [kind] if kind is not None else sorted(
            name for name in os.listdir(self.version_dir)
            if os.path.isdir(os.path.join(self.version_dir, name)))
        for entry_kind in kinds:
            kind_dir = os.path.join(self.version_dir, entry_kind)
            if not os.path.isdir(kind_dir):
                continue
            for shard in sorted(os.listdir(kind_dir)):
                shard_dir = os.path.join(kind_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for key in sorted(os.listdir(shard_dir)):
                    path = os.path.join(shard_dir, key)
                    if os.path.isfile(path):
                        yield entry_kind, key, path

    # -- envelope -----------------------------------------------------------------------

    @staticmethod
    def _encode(kind: str, key: str, payload: bytes) -> bytes:
        header = json.dumps({
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "size": len(payload),
        }, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return _MAGIC + _HEADER_LEN.pack(len(header)) + header + payload

    @staticmethod
    def _decode(kind: str, key: str, blob: bytes) -> Optional[bytes]:
        """The payload of a well-formed entry, or None on any defect."""
        prefix = len(_MAGIC) + _HEADER_LEN.size
        if len(blob) < prefix or not blob.startswith(_MAGIC):
            return None
        (header_len,) = _HEADER_LEN.unpack(blob[len(_MAGIC):prefix])
        if len(blob) < prefix + header_len:
            return None
        try:
            header = json.loads(blob[prefix:prefix + header_len])
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        payload = blob[prefix + header_len:]
        if not isinstance(header, dict) \
                or header.get("schema") != SCHEMA_VERSION \
                or header.get("kind") != kind \
                or header.get("key") != key \
                or header.get("size") != len(payload) \
                or header.get("sha256") != hashlib.sha256(payload).hexdigest():
            return None
        return payload

    # -- store operations ---------------------------------------------------------------

    def get(self, kind: str, key: str) -> Optional[bytes]:
        """The stored payload, or None (counted miss; corrupt entries are
        removed and counted as integrity failures)."""
        path = self.entry_path(kind, key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.misses += 1
            _count("miss", kind)
            return None
        # Chaos hook: a read-side bit flip lands *inside* the envelope, so
        # the integrity check below turns it into a miss, never wrong bytes.
        blob = _faults.corrupt("store.read_corrupt", blob)
        payload = self._decode(kind, key, blob)
        if payload is None:
            self.integrity_failures += 1
            _count("integrity_failure", kind)
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        _count("hit", kind)
        return payload

    def put(self, kind: str, key: str, payload: bytes) -> bool:
        """Store *payload* atomically; best-effort (False on an I/O failure:
        a full or read-only disk degrades to a cold cache, never an error)."""
        path = self.entry_path(kind, key)
        blob = self._encode(kind, key, payload)
        # Chaos hooks mutate the *encoded* blob: the damage sits under the
        # envelope hash, so the next read detects it and recomputes.
        blob = _faults.corrupt("store.write_corrupt", blob)
        blob = _faults.truncate("store.partial_write", blob)
        try:
            atomic_write_bytes(path, blob)
        except OSError:
            return False
        self.writes += 1
        _count("write", kind)
        return True

    def clear(self) -> int:
        """Remove every entry (the whole versioned tree); returns the count."""
        removed = sum(1 for _entry in self.entries())
        shutil.rmtree(self.version_dir, ignore_errors=True)
        return removed

    def verify(self, remove: bool = True) -> dict:
        """Integrity-check every entry; corrupt ones are removed by default."""
        checked = ok = corrupt = removed = 0
        for kind, key, path in list(self.entries()):
            checked += 1
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except OSError:
                continue
            if self._decode(kind, key, blob) is not None:
                ok += 1
                continue
            corrupt += 1
            if remove:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        return {"checked": checked, "ok": ok, "corrupt": corrupt,
                "removed": removed}

    def stats(self, scan: bool = False) -> Dict[str, object]:
        """Process tallies; ``scan=True`` adds on-disk entry/byte totals."""
        stats: Dict[str, object] = {
            "root": self.root,
            "schema": SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "integrity_failures": self.integrity_failures,
        }
        if scan:
            entries = 0
            payload_bytes = 0
            per_kind: Dict[str, int] = {}
            for kind, _key, path in self.entries():
                entries += 1
                per_kind[kind] = per_kind.get(kind, 0) + 1
                try:
                    payload_bytes += os.path.getsize(path)
                except OSError:
                    pass
            stats["entries"] = entries
            stats["bytes"] = payload_bytes
            stats["kinds"] = per_kind
        return stats


# -- process-wide default store -----------------------------------------------------------

_STORES: Dict[str, DiskCache] = {}


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def cache_enabled() -> bool:
    """Whether disk persistence is on (``REPRO_DISK_CACHE`` can turn it off)."""
    return os.environ.get(
        "REPRO_DISK_CACHE", "").strip().lower() not in _OFF_VALUES


def default_store() -> Optional[DiskCache]:
    """The process's shared store, or None when disk persistence is off.

    Stores are memoized per resolved root, so a test that repoints
    ``REPRO_CACHE_DIR`` gets a fresh store while same-root callers share
    one set of tallies.
    """
    if not cache_enabled():
        return None
    root = os.path.abspath(default_cache_dir())
    store = _STORES.get(root)
    if store is None:
        store = DiskCache(root)
        _STORES[root] = store
    return store
