"""Persistent content-addressed caches (disk artifact store + key scheme).

See :mod:`repro.cache.store` for the on-disk format and
:mod:`repro.cache.keys` for the canonical content addresses every cache in
the repo shares (compile memo, disk store, service result cache).
"""

from repro.cache.keys import (
    cache_key,
    canonical_json,
    encode_body,
    lowering_config,
    module_key,
)
from repro.cache.store import (
    DiskCache,
    SCHEMA_VERSION,
    cache_enabled,
    default_cache_dir,
    default_store,
)

__all__ = [
    "DiskCache",
    "SCHEMA_VERSION",
    "cache_enabled",
    "cache_key",
    "canonical_json",
    "default_cache_dir",
    "default_store",
    "encode_body",
    "lowering_config",
    "module_key",
]
