"""Canonical serialization and content addresses for every repro cache.

One key scheme serves three consumers -- the in-memory compile memo, the
disk-persistent artifact store (:mod:`repro.cache.store`) and the service
result cache (:mod:`repro.service.cache`) -- so an artifact computed by any
of them is addressable by all of them.  The scheme:

* **Canonical JSON** -- keys hash over ``json.dumps(..., sort_keys=True)``
  of the request dict, so two spellings of the same request (key order,
  defaulted vs explicit fields) share an address.
* **Kind namespacing** -- the sha256 runs over ``{"kind": ..., "request":
  ...}``; artifacts of different kinds (``module`` / ``verdicts`` /
  ``run`` / ``compare``) can never collide even where their request dicts
  could.
* **Full lowering configuration** -- a compiled module's address covers
  *everything* that feeds target selection and the optimization pipeline
  (arch, march, vector extension/VLEN/lanes, vectorizer toggle), not just
  the march string: march is free-form while
  :func:`~repro.compiler.targets.registry.target_for_platform` keys on
  ``(arch, vector.supported, vlen_bits)``, so two descriptors agreeing on
  march and lanes can still lower differently and must never alias.
"""

from __future__ import annotations

import hashlib
import json


#: Disk-store kind for serialized response payloads.  The service result
#: cache and the sweep engine share it (with ``cache_key("run", ...)``
#: digests), so a sweep-filled store serves daemon requests and vice versa.
RESULT_KIND = "result"


def canonical_json(payload: object) -> str:
    """The key-order-insensitive serialization cache keys hash over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_body(payload: object) -> bytes:
    """Serialize a payload to the bytes caches store and serve.

    Key order is *preserved*, not sorted: the exporters build their dicts in
    a fixed order, so the bytes are deterministic anyway, and preserving it
    lets clients re-dump payloads into output byte-identical to the
    in-process CLI's.
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def cache_key(kind: str, canonical_request: dict) -> str:
    """Content address of one request: sha256 over (kind, canonical dict)."""
    body = canonical_json({"kind": kind, "request": canonical_request})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def lowering_config(descriptor, enable_vectorizer: bool) -> dict:
    """The canonical lowering configuration of one platform descriptor.

    Everything that can change the compiled module or its target lowering,
    and nothing that cannot: ``arch``/``vector.supported``/``vlen_bits``
    select the target (see ``targets/registry.py``), ``sp_lanes`` and the
    vectorizer toggle parameterize the optimization pipeline, and ``march``
    plus the extension name ride along so a future lowering that branches
    on them is covered the day it lands.
    """
    vector = descriptor.vector
    return {
        "arch": descriptor.arch,
        "march": descriptor.march,
        "vector_extension": vector.extension or "",
        "vector_supported": bool(vector.supported),
        "vlen_bits": int(vector.vlen_bits),
        "sp_lanes": int(vector.sp_lanes()),
        "enable_vectorizer": bool(enable_vectorizer),
    }


def module_key(source: str, filename: str, descriptor,
               enable_vectorizer: bool) -> str:
    """Content address of one compiled module: source + full lowering config."""
    return cache_key("module", {
        "source": source,
        "filename": filename,
        "lowering": lowering_config(descriptor, enable_vectorizer),
    })
