"""Retired-operation taxonomy.

The execution engine lowers compiler IR (or synthetic traces) into a stream of
*machine operations*.  A machine op is the unit the core timing models account
for and the unit the PMU observes.  It deliberately abstracts away encodings:
the paper's methodology never needs instruction bytes, only operation classes,
memory footprints and vector widths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpClass(enum.Enum):
    """Classes of retired operations, mirroring what hpmevent selectors count."""

    INT_ALU = "int_alu"          # add/sub/logic/shift/compare
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_FMA = "fp_fma"            # fused multiply-add: counts as 2 FLOPs
    FP_DIV = "fp_div"
    FP_MISC = "fp_misc"          # conversions, moves, compares
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"            # conditional branch
    JUMP = "jump"                # unconditional jump / jal
    CALL = "call"
    RET = "ret"
    CSR = "csr"
    ECALL = "ecall"
    FENCE = "fence"
    VECTOR_ALU = "vector_alu"
    VECTOR_FP = "vector_fp"
    VECTOR_FMA = "vector_fma"
    VECTOR_LOAD = "vector_load"
    VECTOR_STORE = "vector_store"
    NOP = "nop"


# Dense per-member index for table dispatch: the batched retirement path
# looks op metadata up in a list instead of hashing enum members, which is
# measurably cheaper on the retire hot loop.
for _index, _member in enumerate(OpClass):
    _member.index = _index
del _index, _member


#: Operation classes that access the memory hierarchy.
MEMORY_OP_CLASSES = frozenset(
    {OpClass.LOAD, OpClass.STORE, OpClass.VECTOR_LOAD, OpClass.VECTOR_STORE}
)

#: Operation classes that retire floating-point arithmetic.
FLOP_OP_CLASSES = frozenset(
    {
        OpClass.FP_ADD,
        OpClass.FP_MUL,
        OpClass.FP_FMA,
        OpClass.FP_DIV,
        OpClass.VECTOR_FP,
        OpClass.VECTOR_FMA,
    }
)

#: Operation classes that transfer control.
CONTROL_OP_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}
)

#: Vector operation classes.
VECTOR_OP_CLASSES = frozenset(
    {
        OpClass.VECTOR_ALU,
        OpClass.VECTOR_FP,
        OpClass.VECTOR_FMA,
        OpClass.VECTOR_LOAD,
        OpClass.VECTOR_STORE,
    }
)


@dataclass(frozen=True)
class MachineOp:
    """A single retired machine operation.

    Attributes
    ----------
    opclass:
        The operation class (see :class:`OpClass`).
    size_bytes:
        Bytes transferred for memory operations (0 otherwise).  For vector
        memory operations this is the *total* payload of the access.
    address:
        Effective address for memory operations, used by the cache model.
        ``None`` for non-memory ops or synthetic traces that only model an
        access-pattern statistically.
    lanes:
        Number of vector lanes (1 for scalar ops).
    taken:
        For branches: whether the branch was taken.
    target:
        For branches/jumps/calls: the target identifier (used by the branch
        predictor to index its tables deterministically).
    pc:
        A synthetic program-counter value used to attribute samples.
    """

    opclass: OpClass
    size_bytes: int = 0
    address: Optional[int] = None
    lanes: int = 1
    taken: bool = False
    target: int = 0
    pc: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")

    @property
    def is_memory(self) -> bool:
        return self.opclass in MEMORY_OP_CLASSES

    @property
    def is_load(self) -> bool:
        return self.opclass in (OpClass.LOAD, OpClass.VECTOR_LOAD)

    @property
    def is_store(self) -> bool:
        return self.opclass in (OpClass.STORE, OpClass.VECTOR_STORE)

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return self.opclass in CONTROL_OP_CLASSES

    @property
    def is_vector(self) -> bool:
        return self.opclass in VECTOR_OP_CLASSES

    @property
    def flop_count(self) -> int:
        """Number of floating-point operations this op retires.

        Fused multiply-adds count as two FLOPs per lane, matching the
        convention used by the paper (and by Intel Advisor / ERT).
        """
        if self.opclass in (OpClass.FP_FMA, OpClass.VECTOR_FMA):
            return 2 * self.lanes
        if self.opclass in FLOP_OP_CLASSES:
            return self.lanes
        return 0

    @property
    def int_op_count(self) -> int:
        """Number of integer arithmetic operations this op retires."""
        if self.opclass in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV):
            return self.lanes
        if self.opclass is OpClass.VECTOR_ALU:
            return self.lanes
        return 0


def op_is_memory(opclass: OpClass) -> bool:
    """Return True when *opclass* accesses the memory hierarchy."""
    return opclass in MEMORY_OP_CLASSES


def op_is_flop(opclass: OpClass) -> bool:
    """Return True when *opclass* retires floating-point arithmetic."""
    return opclass in FLOP_OP_CLASSES


# Convenience constructors -------------------------------------------------


def load(size_bytes: int, address: Optional[int] = None, pc: int = 0) -> MachineOp:
    """Build a scalar load of *size_bytes*."""
    return MachineOp(OpClass.LOAD, size_bytes=size_bytes, address=address, pc=pc)


def store(size_bytes: int, address: Optional[int] = None, pc: int = 0) -> MachineOp:
    """Build a scalar store of *size_bytes*."""
    return MachineOp(OpClass.STORE, size_bytes=size_bytes, address=address, pc=pc)


def int_alu(pc: int = 0) -> MachineOp:
    """Build a scalar integer ALU op."""
    return MachineOp(OpClass.INT_ALU, pc=pc)


def fp_fma(pc: int = 0) -> MachineOp:
    """Build a scalar fused multiply-add."""
    return MachineOp(OpClass.FP_FMA, pc=pc)


def branch(taken: bool, target: int = 0, pc: int = 0) -> MachineOp:
    """Build a conditional branch."""
    return MachineOp(OpClass.BRANCH, taken=taken, target=target, pc=pc)


def vector_fma(lanes: int, pc: int = 0) -> MachineOp:
    """Build a vector fused multiply-add over *lanes* elements."""
    return MachineOp(OpClass.VECTOR_FMA, lanes=lanes, pc=pc)


def vector_load(size_bytes: int, lanes: int, address: Optional[int] = None,
                pc: int = 0) -> MachineOp:
    """Build a vector (unit-stride) load with total payload *size_bytes*."""
    return MachineOp(
        OpClass.VECTOR_LOAD, size_bytes=size_bytes, lanes=lanes, address=address, pc=pc
    )


def vector_store(size_bytes: int, lanes: int, address: Optional[int] = None,
                 pc: int = 0) -> MachineOp:
    """Build a vector (unit-stride) store with total payload *size_bytes*."""
    return MachineOp(
        OpClass.VECTOR_STORE, size_bytes=size_bytes, lanes=lanes, address=address, pc=pc
    )
