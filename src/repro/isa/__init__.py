"""RISC-V architectural-state substrate.

This package models the pieces of the RISC-V privileged architecture that the
paper's PMU methodology depends on:

* :mod:`repro.isa.privilege` -- the Machine/Supervisor/User privilege modes and
  the trap/ecall mechanism used to reach OpenSBI.
* :mod:`repro.isa.csr` -- the Control and Status Register file, including the
  hardware performance-monitoring CSRs (``mcycle``, ``minstret``,
  ``mhpmcounter3..31``, ``mhpmevent3..31``, ``mcountinhibit``, ``mcounteren``)
  with privilege-checked access.
* :mod:`repro.isa.machine_ops` -- the retired-operation taxonomy consumed by
  the core timing models and observed by the PMU.
* :mod:`repro.isa.registers` -- integer / floating-point / vector register
  files used by the execution engine.
"""

from repro.isa.machine_ops import MachineOp, OpClass, op_is_memory, op_is_flop
from repro.isa.privilege import PrivilegeMode, Trap, TrapCause
from repro.isa.csr import (
    CsrFile,
    CsrAccessError,
    CSR_MCYCLE,
    CSR_MINSTRET,
    CSR_MCOUNTINHIBIT,
    CSR_MCOUNTEREN,
    CSR_SCOUNTEREN,
    CSR_MHPMCOUNTER_BASE,
    CSR_MHPMEVENT_BASE,
    CSR_MVENDORID,
    CSR_MARCHID,
    CSR_MIMPID,
    CSR_MHARTID,
)
from repro.isa.registers import IntRegisterFile, FpRegisterFile, VectorRegisterFile

__all__ = [
    "MachineOp",
    "OpClass",
    "op_is_memory",
    "op_is_flop",
    "PrivilegeMode",
    "Trap",
    "TrapCause",
    "CsrFile",
    "CsrAccessError",
    "CSR_MCYCLE",
    "CSR_MINSTRET",
    "CSR_MCOUNTINHIBIT",
    "CSR_MCOUNTEREN",
    "CSR_SCOUNTEREN",
    "CSR_MHPMCOUNTER_BASE",
    "CSR_MHPMEVENT_BASE",
    "CSR_MVENDORID",
    "CSR_MARCHID",
    "CSR_MIMPID",
    "CSR_MHARTID",
    "IntRegisterFile",
    "FpRegisterFile",
    "VectorRegisterFile",
]
