"""Architectural register files.

The execution engine is IR-level rather than binary-level, so these register
files mostly matter for two things: (1) vector state (``VLEN``) so that the
RVV lowering and the roofline peak calculator agree about lane counts, and
(2) carrying the synthetic ABI used when sampling interrupts capture register
context, as the Linux perf machinery does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


MASK64 = (1 << 64) - 1

#: RISC-V integer ABI register names (x0..x31).
INT_REG_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

#: RISC-V floating-point ABI register names (f0..f31).
FP_REG_NAMES = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
]


class IntRegisterFile:
    """The 32 general-purpose integer registers.

    ``x0`` is hard-wired to zero, as on real hardware; writes to it are
    silently discarded.
    """

    def __init__(self) -> None:
        self._regs: List[int] = [0] * 32

    def read(self, index: int) -> int:
        self._check_index(index)
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        self._check_index(index)
        if index == 0:
            return
        self._regs[index] = value & MASK64

    def read_by_name(self, name: str) -> int:
        return self.read(INT_REG_NAMES.index(name))

    def write_by_name(self, name: str, value: int) -> None:
        self.write(INT_REG_NAMES.index(name), value)

    def snapshot(self) -> Dict[str, int]:
        """Return a name -> value mapping, as captured in a perf sample."""
        return {name: self._regs[i] for i, name in enumerate(INT_REG_NAMES)}

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < 32:
            raise IndexError(f"integer register index out of range: {index}")


class FpRegisterFile:
    """The 32 floating-point registers (f0..f31)."""

    def __init__(self) -> None:
        self._regs: List[float] = [0.0] * 32

    def read(self, index: int) -> float:
        self._check_index(index)
        return self._regs[index]

    def write(self, index: int, value: float) -> None:
        self._check_index(index)
        self._regs[index] = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {name: self._regs[i] for i, name in enumerate(FP_REG_NAMES)}

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < 32:
            raise IndexError(f"fp register index out of range: {index}")


@dataclass
class VectorRegisterFile:
    """The RVV vector register state.

    Only the configuration that matters for performance modelling is kept:
    ``vlen_bits`` (the hardware vector length) and the currently configured
    ``sew`` (selected element width) and ``lmul`` (register grouping), from
    which the number of usable lanes is derived -- the same arithmetic the
    paper uses for the X60's theoretical compute roof (256-bit VLEN, 32-bit
    elements -> 8 single-precision lanes).
    """

    vlen_bits: int = 256
    sew_bits: int = 32
    lmul: int = 1

    def __post_init__(self) -> None:
        if self.vlen_bits <= 0 or self.vlen_bits % 8 != 0:
            raise ValueError("vlen_bits must be a positive multiple of 8")
        if self.sew_bits not in (8, 16, 32, 64):
            raise ValueError("sew_bits must be one of 8, 16, 32, 64")
        if self.lmul not in (1, 2, 4, 8):
            raise ValueError("lmul must be one of 1, 2, 4, 8")

    @property
    def lanes(self) -> int:
        """Number of elements processed per vector instruction (vlmax)."""
        return (self.vlen_bits * self.lmul) // self.sew_bits

    def configure(self, sew_bits: int, lmul: int = 1) -> int:
        """Model ``vsetvli``: set element width / grouping, return vlmax."""
        if sew_bits not in (8, 16, 32, 64):
            raise ValueError("sew_bits must be one of 8, 16, 32, 64")
        if lmul not in (1, 2, 4, 8):
            raise ValueError("lmul must be one of 1, 2, 4, 8")
        self.sew_bits = sew_bits
        self.lmul = lmul
        return self.lanes
