"""Control and Status Register (CSR) file with privilege-checked access.

Implements the hardware performance-monitoring CSRs defined by the RISC-V
Privileged Specification that the paper's Section 3 describes:

* ``mcycle`` / ``minstret`` -- machine cycle and instructions-retired counters.
* ``mhpmcounter3..31`` -- generic hardware performance monitor counters.
* ``mhpmevent3..31`` -- the event selectors programmed with vendor-specific
  event codes.
* ``mcountinhibit`` -- per-counter inhibit bits.
* ``mcounteren`` / ``scounteren`` -- delegation of counter *read* access to
  lower privilege modes, which is what lets the kernel read HPM counters
  directly from Supervisor mode without an SBI round-trip.
* ``mvendorid`` / ``marchid`` / ``mimpid`` / ``mhartid`` -- the identification
  registers miniperf uses instead of perf event discovery.

The model enforces the privilege rules that make the OpenSBI hop necessary:
machine-level CSRs may only be written from Machine mode, and the shadow
``cycle``/``instret``/``hpmcounterN`` user-level aliases are readable from
S/U mode only when the corresponding ``mcounteren``/``scounteren`` bit is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.isa.privilege import PrivilegeMode

MASK64 = (1 << 64) - 1

# Machine-level CSR addresses (from the privileged spec).
CSR_MVENDORID = 0xF11
CSR_MARCHID = 0xF12
CSR_MIMPID = 0xF13
CSR_MHARTID = 0xF14

CSR_MCOUNTINHIBIT = 0x320
CSR_MCOUNTEREN = 0x306
CSR_SCOUNTEREN = 0x106

CSR_MCYCLE = 0xB00
CSR_MINSTRET = 0xB02
CSR_MHPMCOUNTER_BASE = 0xB00      # mhpmcounterN lives at 0xB00 + N
CSR_MHPMEVENT_BASE = 0x320        # mhpmeventN lives at 0x320 + N

# User-level read-only shadows.
CSR_CYCLE = 0xC00
CSR_TIME = 0xC01
CSR_INSTRET = 0xC02
CSR_HPMCOUNTER_BASE = 0xC00       # hpmcounterN lives at 0xC00 + N

#: Index (in mcountinhibit / mcounteren bit position terms) of mcycle.
COUNTER_INDEX_CYCLE = 0
#: Index of the `time` counter (not implemented as a hardware counter here).
COUNTER_INDEX_TIME = 1
#: Index of minstret.
COUNTER_INDEX_INSTRET = 2
#: First generic HPM counter index.
HPM_FIRST_INDEX = 3
#: Last generic HPM counter index (inclusive).
HPM_LAST_INDEX = 31


class CsrAccessError(Exception):
    """Raised on privilege violations or accesses to unimplemented CSRs."""

    def __init__(self, message: str, address: int = 0):
        super().__init__(message)
        self.address = address


def hpm_counter_csr(index: int) -> int:
    """CSR address of ``mhpmcounter<index>`` (index 3..31)."""
    _check_hpm_index(index)
    return CSR_MHPMCOUNTER_BASE + index


def hpm_event_csr(index: int) -> int:
    """CSR address of ``mhpmevent<index>`` (index 3..31)."""
    _check_hpm_index(index)
    return CSR_MHPMEVENT_BASE + index


def user_counter_csr(index: int) -> int:
    """CSR address of the user-level shadow ``hpmcounter<index>``."""
    if index == COUNTER_INDEX_CYCLE:
        return CSR_CYCLE
    if index == COUNTER_INDEX_INSTRET:
        return CSR_INSTRET
    _check_hpm_index(index)
    return CSR_HPMCOUNTER_BASE + index


def _check_hpm_index(index: int) -> None:
    if not HPM_FIRST_INDEX <= index <= HPM_LAST_INDEX:
        raise ValueError(f"HPM counter index must be in [3, 31], got {index}")


@dataclass(frozen=True)
class CpuIdentity:
    """The values of the identification CSRs for one hart.

    miniperf identifies hardware solely from these registers (Section 3.3 of
    the paper), which is why they are first-class here.
    """

    mvendorid: int
    marchid: int
    mimpid: int
    mhartid: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "mvendorid": self.mvendorid,
            "marchid": self.marchid,
            "mimpid": self.mimpid,
            "mhartid": self.mhartid,
        }


class CsrFile:
    """A privilege-checked CSR register file for a single hart.

    Parameters
    ----------
    identity:
        The identification register values.
    num_hpm_counters:
        How many of the generic ``mhpmcounter3..31`` registers are actually
        implemented (the count is implementation-defined; unimplemented ones
        read as zero and ignore writes, mirroring common silicon behaviour).
    """

    def __init__(self, identity: CpuIdentity, num_hpm_counters: int = 29):
        if not 0 <= num_hpm_counters <= 29:
            raise ValueError("num_hpm_counters must be in [0, 29]")
        self._identity = identity
        self._num_hpm = num_hpm_counters
        self._regs: Dict[int, int] = {
            CSR_MVENDORID: identity.mvendorid & MASK64,
            CSR_MARCHID: identity.marchid & MASK64,
            CSR_MIMPID: identity.mimpid & MASK64,
            CSR_MHARTID: identity.mhartid & MASK64,
            CSR_MCOUNTINHIBIT: 0,
            CSR_MCOUNTEREN: 0,
            CSR_SCOUNTEREN: 0,
            CSR_MCYCLE: 0,
            CSR_MINSTRET: 0,
        }
        for idx in range(HPM_FIRST_INDEX, HPM_FIRST_INDEX + num_hpm_counters):
            self._regs[hpm_counter_csr(idx)] = 0
            self._regs[hpm_event_csr(idx)] = 0

    # -- identity ----------------------------------------------------------

    @property
    def identity(self) -> CpuIdentity:
        return self._identity

    @property
    def num_hpm_counters(self) -> int:
        return self._num_hpm

    def implemented_hpm_indices(self) -> Iterator[int]:
        """Yield the indices of implemented generic HPM counters."""
        return iter(range(HPM_FIRST_INDEX, HPM_FIRST_INDEX + self._num_hpm))

    # -- raw access (machine mode / firmware) -------------------------------

    def read(self, address: int, mode: PrivilegeMode = PrivilegeMode.MACHINE) -> int:
        """Read a CSR, enforcing the privilege rules for *mode*."""
        if address in (CSR_MVENDORID, CSR_MARCHID, CSR_MIMPID, CSR_MHARTID):
            if mode is not PrivilegeMode.MACHINE:
                raise CsrAccessError(
                    f"identification CSR {address:#x} requires Machine mode", address
                )
            return self._regs[address]

        if self._is_machine_counter_csr(address) or self._is_machine_control_csr(address):
            if mode is not PrivilegeMode.MACHINE:
                raise CsrAccessError(
                    f"machine-level CSR {address:#x} requires Machine mode "
                    f"(attempted from {mode.short_name}-mode)",
                    address,
                )
            return self._regs.get(address, 0)

        if self._is_user_shadow_csr(address):
            return self._read_user_shadow(address, mode)

        raise CsrAccessError(f"unimplemented CSR {address:#x}", address)

    def write(self, address: int, value: int,
              mode: PrivilegeMode = PrivilegeMode.MACHINE) -> None:
        """Write a CSR, enforcing the privilege rules for *mode*."""
        if address in (CSR_MVENDORID, CSR_MARCHID, CSR_MIMPID, CSR_MHARTID):
            raise CsrAccessError(
                f"identification CSR {address:#x} is read-only", address
            )
        if self._is_user_shadow_csr(address):
            raise CsrAccessError(
                f"user-level shadow CSR {address:#x} is read-only", address
            )
        if self._is_machine_counter_csr(address) or self._is_machine_control_csr(address):
            if mode is not PrivilegeMode.MACHINE:
                raise CsrAccessError(
                    f"machine-level CSR {address:#x} requires Machine mode "
                    f"(attempted from {mode.short_name}-mode)",
                    address,
                )
            if address not in self._regs:
                # Unimplemented HPM counter/event: writes are ignored.
                return
            self._regs[address] = value & MASK64
            return
        raise CsrAccessError(f"unimplemented CSR {address:#x}", address)

    # -- counter helpers -----------------------------------------------------

    def counter_value(self, index: int) -> int:
        """Read a hardware counter by index (0=cycle, 2=instret, 3..31=hpm)."""
        return self._regs.get(self._counter_csr(index), 0)

    def set_counter_value(self, index: int, value: int) -> None:
        """Set a hardware counter by index (firmware/hardware-internal path)."""
        csr = self._counter_csr(index)
        if csr in self._regs:
            self._regs[csr] = value & MASK64

    def increment_counter(self, index: int, amount: int) -> int:
        """Increment a hardware counter, honouring ``mcountinhibit``.

        Returns the new value.  Wraps at 64 bits like hardware.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self.counter_inhibited(index):
            return self.counter_value(index)
        csr = self._counter_csr(index)
        if csr not in self._regs:
            return 0
        self._regs[csr] = (self._regs[csr] + amount) & MASK64
        return self._regs[csr]

    def counter_inhibited(self, index: int) -> bool:
        """Return True when bit *index* of ``mcountinhibit`` is set."""
        return bool((self._regs[CSR_MCOUNTINHIBIT] >> index) & 1)

    def set_counter_inhibit(self, index: int, inhibit: bool) -> None:
        cur = self._regs[CSR_MCOUNTINHIBIT]
        if inhibit:
            cur |= 1 << index
        else:
            cur &= ~(1 << index)
        self._regs[CSR_MCOUNTINHIBIT] = cur & MASK64

    def event_selector(self, index: int) -> int:
        """Read ``mhpmevent<index>`` (the vendor event code)."""
        return self._regs.get(hpm_event_csr(index), 0)

    def set_event_selector(self, index: int, event_code: int) -> None:
        csr = hpm_event_csr(index)
        if csr in self._regs:
            self._regs[csr] = event_code & MASK64

    # -- delegation ----------------------------------------------------------

    def delegate_to_supervisor(self, index: int, allow: bool = True) -> None:
        """Set/clear bit *index* of ``mcounteren``.

        When set, Supervisor mode may read the user-level shadow of that
        counter directly -- the optimisation the kernel requests via SBI to
        avoid per-read ecalls.
        """
        cur = self._regs[CSR_MCOUNTEREN]
        if allow:
            cur |= 1 << index
        else:
            cur &= ~(1 << index)
        self._regs[CSR_MCOUNTEREN] = cur & MASK64

    def delegate_to_user(self, index: int, allow: bool = True) -> None:
        """Set/clear bit *index* of ``scounteren`` (S-mode delegating to U-mode)."""
        cur = self._regs[CSR_SCOUNTEREN]
        if allow:
            cur |= 1 << index
        else:
            cur &= ~(1 << index)
        self._regs[CSR_SCOUNTEREN] = cur & MASK64

    def supervisor_can_read(self, index: int) -> bool:
        return bool((self._regs[CSR_MCOUNTEREN] >> index) & 1)

    def user_can_read(self, index: int) -> bool:
        return self.supervisor_can_read(index) and bool(
            (self._regs[CSR_SCOUNTEREN] >> index) & 1
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _counter_csr(index: int) -> int:
        if index == COUNTER_INDEX_CYCLE:
            return CSR_MCYCLE
        if index == COUNTER_INDEX_INSTRET:
            return CSR_MINSTRET
        return hpm_counter_csr(index)

    @staticmethod
    def _is_machine_counter_csr(address: int) -> bool:
        return CSR_MCYCLE <= address <= CSR_MHPMCOUNTER_BASE + HPM_LAST_INDEX

    @staticmethod
    def _is_machine_control_csr(address: int) -> bool:
        if address == CSR_MCOUNTEREN:
            return True
        # mcountinhibit (0x320) doubles as mhpmevent base; addresses
        # 0x320..0x33F cover mcountinhibit + all event selectors.
        return CSR_MCOUNTINHIBIT <= address <= CSR_MHPMEVENT_BASE + HPM_LAST_INDEX

    @staticmethod
    def _is_user_shadow_csr(address: int) -> bool:
        return CSR_CYCLE <= address <= CSR_HPMCOUNTER_BASE + HPM_LAST_INDEX

    def _read_user_shadow(self, address: int, mode: PrivilegeMode) -> int:
        index = address - CSR_HPMCOUNTER_BASE
        if index == COUNTER_INDEX_TIME:
            raise CsrAccessError("the time CSR is not modelled", address)
        if mode is PrivilegeMode.MACHINE:
            pass  # machine mode can always read shadows
        elif mode is PrivilegeMode.SUPERVISOR:
            if not self.supervisor_can_read(index):
                raise CsrAccessError(
                    f"counter {index} not delegated to S-mode (mcounteren bit clear)",
                    address,
                )
        else:
            if not self.user_can_read(index):
                raise CsrAccessError(
                    f"counter {index} not delegated to U-mode", address
                )
        return self.counter_value(index)

    # The scounteren delegation affects user reads only; expose a combined view
    # for debugging and tests.
    def delegation_state(self) -> Tuple[int, int]:
        """Return ``(mcounteren, scounteren)``."""
        return (self._regs[CSR_MCOUNTEREN], self._regs[CSR_SCOUNTEREN])
