"""Privilege modes and trap machinery.

The paper's Figure 1 shows why privilege matters for PMU access: the Linux
kernel runs in Supervisor mode and cannot program machine-level PMU CSRs
(``mhpmevent*``, ``mcountinhibit``) directly.  It must raise an environment
call (``ecall``) into the Machine-mode firmware (OpenSBI), which performs the
privileged access on its behalf.  This module provides the privilege-mode
enumeration and the trap objects used to model that boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class PrivilegeMode(enum.IntEnum):
    """RISC-V privilege modes, ordered by increasing privilege."""

    USER = 0
    SUPERVISOR = 1
    # Privilege level 2 is reserved ("hypervisor" in old drafts); unused.
    MACHINE = 3

    @property
    def short_name(self) -> str:
        return {PrivilegeMode.USER: "U",
                PrivilegeMode.SUPERVISOR: "S",
                PrivilegeMode.MACHINE: "M"}[self]

    def can_access(self, required: "PrivilegeMode") -> bool:
        """Return True if code at this mode may access a resource requiring *required*."""
        return int(self) >= int(required)


class TrapCause(enum.Enum):
    """Subset of mcause values relevant to the PMU software stack."""

    ILLEGAL_INSTRUCTION = 2
    ECALL_FROM_U = 8
    ECALL_FROM_S = 9
    ECALL_FROM_M = 11


class Trap(Exception):
    """A synchronous trap raised during execution.

    Used both for genuine error conditions (illegal CSR access from an
    insufficiently privileged mode) and for environment calls into firmware.
    """

    def __init__(self, cause: TrapCause, tval: int = 0, message: str = ""):
        self.cause = cause
        self.tval = tval
        self.message = message
        super().__init__(message or f"trap: {cause.name} (tval={tval:#x})")


def ecall_cause_for_mode(mode: PrivilegeMode) -> TrapCause:
    """Return the trap cause raised by an ``ecall`` executed in *mode*."""
    if mode is PrivilegeMode.USER:
        return TrapCause.ECALL_FROM_U
    if mode is PrivilegeMode.SUPERVISOR:
        return TrapCause.ECALL_FROM_S
    return TrapCause.ECALL_FROM_M


@dataclass
class ModeCycleAccounting:
    """Per-privilege-mode cycle accounting.

    The SpacemiT X60 exposes three non-standard counters -- ``u_mode_cycle``,
    ``m_mode_cycle`` and ``s_mode_cycle`` -- that count cycles spent in each
    privilege mode and, unlike ``mcycle``/``minstret`` on that part, support
    overflow interrupts.  The machine model keeps this accounting so the X60
    PMU can expose those events.
    """

    user_cycles: int = 0
    supervisor_cycles: int = 0
    machine_cycles: int = 0

    def add(self, mode: PrivilegeMode, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if mode is PrivilegeMode.USER:
            self.user_cycles += cycles
        elif mode is PrivilegeMode.SUPERVISOR:
            self.supervisor_cycles += cycles
        else:
            self.machine_cycles += cycles

    def get(self, mode: PrivilegeMode) -> int:
        if mode is PrivilegeMode.USER:
            return self.user_cycles
        if mode is PrivilegeMode.SUPERVISOR:
            return self.supervisor_cycles
        return self.machine_cycles

    @property
    def total(self) -> int:
        return self.user_cycles + self.supervisor_cycles + self.machine_cycles

    def split(self) -> Tuple[int, int, int]:
        """Return cycles as ``(user, supervisor, machine)``."""
        return (self.user_cycles, self.supervisor_cycles, self.machine_cycles)
