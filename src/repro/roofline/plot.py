"""Roofline plots: ASCII (for terminals and golden tests) and SVG."""

from __future__ import annotations

import html
import math
from typing import List, Optional, Tuple

from repro.roofline.model import RooflineModel, RooflinePoint


def _log_ticks(low: float, high: float) -> List[float]:
    ticks = []
    exponent = math.floor(math.log10(low)) if low > 0 else -2
    while 10 ** exponent <= high * 1.01:
        ticks.append(10 ** exponent)
        exponent += 1
    return ticks


def render_ascii_roofline(model: RooflineModel, width: int = 72, height: int = 22,
                          level: str = "DRAM") -> str:
    """Log-log ASCII roofline: '=' is the roof, 'o' the measured kernels."""
    points = model.points
    ai_values = [p.arithmetic_intensity for p in points if p.arithmetic_intensity > 0]
    ai_min = min([0.01] + ai_values) / 2
    ai_max = max([16.0] + ai_values) * 2
    gf_max = model.roofs.peak_gflops * 2
    gf_min = min([model.roofs.attainable_gflops(ai_min, level) / 4] +
                 [p.gflops / 2 for p in points if p.gflops > 0] + [0.01])

    def x_of(ai: float) -> int:
        span = math.log10(ai_max) - math.log10(ai_min)
        return int((math.log10(max(ai, ai_min)) - math.log10(ai_min)) / span * (width - 1))

    def y_of(gflops: float) -> int:
        span = math.log10(gf_max) - math.log10(gf_min)
        fraction = (math.log10(max(gflops, gf_min)) - math.log10(gf_min)) / span
        return (height - 1) - int(fraction * (height - 1))

    grid = [[" "] * width for _ in range(height)]

    # The roof: attainable performance across the AI range.
    for column in range(width):
        ai = 10 ** (math.log10(ai_min) + column / (width - 1)
                    * (math.log10(ai_max) - math.log10(ai_min)))
        attainable = model.roofs.attainable_gflops(ai, level)
        if attainable <= 0:
            continue
        row = y_of(attainable)
        if 0 <= row < height:
            grid[row][column] = "="

    # Measured points.
    for point in points:
        if point.arithmetic_intensity <= 0 or point.gflops <= 0:
            continue
        row, column = y_of(point.gflops), x_of(point.arithmetic_intensity)
        if 0 <= row < height and 0 <= column < width:
            grid[row][column] = "o"

    lines = [
        f"Roofline: {model.roofs.platform} "
        f"(peak {model.roofs.peak_gflops:.1f} GFLOP/s, "
        f"{level} {model.roofs.bandwidth_gbps.get(level, 0):.1f} GB/s, {model.roofs.source})"
    ]
    lines.append("GFLOP/s (log)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + "> FLOP/byte (log)")
    for point in points:
        lines.append(
            f"  o {point.name}: AI={point.arithmetic_intensity:.3f}, "
            f"{point.gflops:.2f} GFLOP/s [{model.bound_of(point, level)}]"
        )
    return "\n".join(lines)


def render_svg_roofline(model: RooflineModel, width: int = 640, height: int = 420,
                        level: str = "DRAM", title: Optional[str] = None) -> str:
    """A self-contained SVG roofline plot (log-log axes)."""
    margin = 50
    plot_w, plot_h = width - 2 * margin, height - 2 * margin
    points = model.points
    ai_values = [p.arithmetic_intensity for p in points if p.arithmetic_intensity > 0]
    ai_min = min([0.01] + ai_values) / 2
    ai_max = max([16.0] + ai_values) * 2
    gf_max = model.roofs.peak_gflops * 2
    gf_min = min([0.05] + [p.gflops / 2 for p in points if p.gflops > 0])

    def x_of(ai: float) -> float:
        span = math.log10(ai_max) - math.log10(ai_min)
        return margin + (math.log10(max(ai, ai_min)) - math.log10(ai_min)) / span * plot_w

    def y_of(gflops: float) -> float:
        span = math.log10(gf_max) - math.log10(gf_min)
        fraction = (math.log10(max(gflops, gf_min)) - math.log10(gf_min)) / span
        return margin + plot_h - fraction * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" font-size="14">'
        f'{html.escape(title or ("Roofline - " + model.roofs.platform))}</text>',
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#888"/>',
    ]

    # Axis ticks.
    for tick in _log_ticks(ai_min, ai_max):
        x = x_of(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{margin + plot_h}" x2="{x:.1f}" '
                     f'y2="{margin + plot_h + 4}" stroke="#444"/>')
        parts.append(f'<text x="{x:.1f}" y="{margin + plot_h + 16}" font-size="9" '
                     f'text-anchor="middle">{tick:g}</text>')
    for tick in _log_ticks(gf_min, gf_max):
        y = y_of(tick)
        parts.append(f'<line x1="{margin - 4}" y1="{y:.1f}" x2="{margin}" y2="{y:.1f}" '
                     f'stroke="#444"/>')
        parts.append(f'<text x="{margin - 6}" y="{y + 3:.1f}" font-size="9" '
                     f'text-anchor="end">{tick:g}</text>')

    # Bandwidth roofs (one polyline per memory level) and the compute roof.
    for name, bandwidth in model.roofs.bandwidth_gbps.items():
        if bandwidth <= 0:
            continue
        ridge_ai = model.roofs.peak_gflops / bandwidth
        x1, y1 = x_of(ai_min), y_of(ai_min * bandwidth)
        x2, y2 = x_of(min(ridge_ai, ai_max)), y_of(min(model.roofs.peak_gflops,
                                                       ridge_ai * bandwidth))
        parts.append(f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
                     f'stroke="#2b6cb0" stroke-width="1.5"/>')
        parts.append(f'<text x="{(x1 + x2) / 2:.1f}" y="{(y1 + y2) / 2 - 4:.1f}" '
                     f'font-size="9" fill="#2b6cb0">{html.escape(name)}</text>')
    peak_y = y_of(model.roofs.peak_gflops)
    parts.append(f'<line x1="{x_of(model.roofs.ridge_point(level)):.1f}" y1="{peak_y:.1f}" '
                 f'x2="{margin + plot_w}" y2="{peak_y:.1f}" stroke="#c53030" '
                 f'stroke-width="1.5"/>')
    parts.append(f'<text x="{margin + plot_w - 4}" y="{peak_y - 5:.1f}" font-size="9" '
                 f'text-anchor="end" fill="#c53030">'
                 f'peak {model.roofs.peak_gflops:.1f} GFLOP/s</text>')

    # Points.
    for point in points:
        if point.arithmetic_intensity <= 0 or point.gflops <= 0:
            continue
        x, y = x_of(point.arithmetic_intensity), y_of(point.gflops)
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="#276749"/>')
        parts.append(f'<text x="{x + 6:.1f}" y="{y - 6:.1f}" font-size="9">'
                     f'{html.escape(point.name)} ({point.gflops:.2f})</text>')

    parts.append(f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle" '
                 f'font-size="11">Arithmetic intensity (FLOP/byte, log)</text>')
    parts.append(f'<text x="14" y="{height / 2}" font-size="11" '
                 f'transform="rotate(-90 14 {height / 2})" text-anchor="middle">'
                 f'GFLOP/s (log)</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg_roofline(model: RooflineModel, path: str, **kwargs) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg_roofline(model, **kwargs))
