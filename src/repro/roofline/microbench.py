"""Roof-measuring microbenchmarks (the ERT / memset-benchmark stand-ins).

The paper takes its X60 memory roof from a published memset benchmark
(bytes/cycle) and its compute roof from first principles.  Here both are
*measured* against the machine model by running small KernelC kernels through
the execution engine: a streaming memset/copy kernel for bandwidth and an
unrolled FMA-chain kernel for peak FLOPs.  Because the same timing model runs
the real workloads, measured roofs and application dots are mutually
consistent -- which is the property a roofline plot actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.frontend import compile_source
from repro.compiler.targets import target_for_platform
from repro.compiler.transforms import default_optimization_pipeline
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.roofline.machine import MachineRoofs
from repro.vm import ExecutionEngine, Memory

#: Streaming write kernel (memset-like): one store per element.
_MEMSET_SOURCE = """
void stream_set(float* dst, long n, float value) {
  for (long i = 0; i < n; i++) {
    dst[i] = value;
  }
}
"""

#: Peak-FLOP kernel: eight independent accumulator chains of fused-style
#: multiply-adds, the classical ERT inner loop.
_PEAK_SOURCE = """
float peak_flops(float* a, long n) {
  float c0 = 0.0f; float c1 = 0.1f; float c2 = 0.2f; float c3 = 0.3f;
  float c4 = 0.4f; float c5 = 0.5f; float c6 = 0.6f; float c7 = 0.7f;
  for (long i = 0; i < n; i++) {
    float x = a[i];
    c0 = c0 * 1.0001f + x;
    c1 = c1 * 1.0001f + x;
    c2 = c2 * 1.0001f + x;
    c3 = c3 * 1.0001f + x;
    c4 = c4 * 1.0001f + x;
    c5 = c5 * 1.0001f + x;
    c6 = c6 * 1.0001f + x;
    c7 = c7 * 1.0001f + x;
  }
  return c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7;
}
"""


@dataclass
class MicrobenchResult:
    """Raw measurements taken on the machine model."""

    platform: str
    memset_bytes_per_cycle: float
    peak_flops_per_cycle: float
    memset_gbps: float
    peak_gflops: float


def _run_kernel(descriptor: PlatformDescriptor, source: str, function: str,
                args_builder, vector_width: Optional[int] = None) -> Machine:
    machine = Machine(descriptor)
    target = target_for_platform(descriptor)
    width = vector_width if vector_width is not None else descriptor.vector.sp_lanes()
    module = compile_source(source, f"{function}.c")
    default_optimization_pipeline(vector_width=width).run(module)
    memory = Memory()
    args = args_builder(memory)
    engine = ExecutionEngine(module, machine, target, memory=memory)
    engine.run(function, args)
    return machine


def measure_roofs(descriptor: PlatformDescriptor, elements: int = 16384,
                  vector_width: Optional[int] = None) -> MachineRoofs:
    """Measure memory and compute roofs by running the microbenchmarks."""
    frequency = descriptor.core.frequency_hz

    def memset_args(memory: Memory):
        dst = memory.malloc(elements * 4)
        return [dst, elements, 1.0]

    memset_machine = _run_kernel(descriptor, _MEMSET_SOURCE, "stream_set",
                                 memset_args, vector_width)
    memset_bytes = elements * 4
    memset_bpc = memset_bytes / max(1, memset_machine.cycles)

    def peak_args(memory: Memory):
        a = memory.alloc_float_array([1.0] * 1024)
        return [a, 1024 * max(1, elements // 4096)]

    peak_machine = _run_kernel(descriptor, _PEAK_SOURCE, "peak_flops",
                               peak_args, vector_width)
    peak_flops = 16 * 1024 * max(1, elements // 4096)   # 8 chains x 2 flops
    peak_fpc = peak_flops / max(1, peak_machine.cycles)

    result = MicrobenchResult(
        platform=descriptor.name,
        memset_bytes_per_cycle=memset_bpc,
        peak_flops_per_cycle=peak_fpc,
        memset_gbps=memset_bpc * frequency / 1e9,
        peak_gflops=peak_fpc * frequency / 1e9,
    )
    return MachineRoofs(
        platform=descriptor.name,
        peak_gflops=result.peak_gflops,
        bandwidth_gbps={"DRAM": result.memset_gbps},
        source="measured (microbenchmarks)",
        frequency_hz=frequency,
    )
