"""The roofline model: application dots against machine ceilings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.roofline.machine import MachineRoofs


@dataclass
class RooflinePoint:
    """One application/kernel measurement on the roofline plane."""

    name: str
    arithmetic_intensity: float         # FLOPs / byte
    gflops: float                        # achieved GFLOP/s
    fp_ops: int = 0
    bytes_moved: int = 0
    cycles: int = 0
    source: str = "miniperf"

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "arithmetic_intensity": round(self.arithmetic_intensity, 4),
            "gflops": round(self.gflops, 4),
            "fp_ops": self.fp_ops,
            "bytes": self.bytes_moved,
            "cycles": self.cycles,
            "source": self.source,
        }


@dataclass
class RooflineModel:
    """Roofs plus the points measured against them."""

    roofs: MachineRoofs
    points: List[RooflinePoint] = field(default_factory=list)

    def add_point(self, point: RooflinePoint) -> None:
        self.points.append(point)

    def attainable(self, arithmetic_intensity: float, level: str = "DRAM") -> float:
        return self.roofs.attainable_gflops(arithmetic_intensity, level)

    def bound_of(self, point: RooflinePoint, level: str = "DRAM") -> str:
        """Classify a point as memory-bound or compute-bound."""
        ridge = self.roofs.ridge_point(level)
        return "memory-bound" if point.arithmetic_intensity < ridge else "compute-bound"

    def efficiency_of(self, point: RooflinePoint, level: str = "DRAM") -> float:
        """Achieved fraction of the attainable performance at the point's AI."""
        attainable = self.attainable(point.arithmetic_intensity, level)
        return point.gflops / attainable if attainable else 0.0

    def headroom_of(self, point: RooflinePoint, level: str = "DRAM") -> float:
        """Attainable-over-achieved ratio (how many x of improvement remain)."""
        efficiency = self.efficiency_of(point, level)
        return 1.0 / efficiency if efficiency else float("inf")

    def summary(self) -> str:
        lines = [self.roofs.describe(), ""]
        for point in self.points:
            bound = self.bound_of(point)
            efficiency = self.efficiency_of(point)
            lines.append(
                f"  {point.name}: AI={point.arithmetic_intensity:.3f} FLOP/B, "
                f"{point.gflops:.2f} GFLOP/s ({bound}, "
                f"{efficiency * 100:.1f}% of attainable)"
            )
        return "\n".join(lines)
