"""Roofline modelling: roofs, points, plots and the two-phase runner."""

from repro.roofline.machine import MachineRoofs, theoretical_roofs
from repro.roofline.microbench import measure_roofs, MicrobenchResult
from repro.roofline.model import RooflinePoint, RooflineModel
from repro.roofline.plot import render_ascii_roofline, render_svg_roofline
from repro.roofline.runner import RooflineRunner, KernelRooflineResult

__all__ = [
    "MachineRoofs",
    "theoretical_roofs",
    "measure_roofs",
    "MicrobenchResult",
    "RooflinePoint",
    "RooflineModel",
    "render_ascii_roofline",
    "render_svg_roofline",
    "RooflineRunner",
    "KernelRooflineResult",
]
