"""Machine roofs: the ceilings of the roofline plot.

The paper builds the X60 roofs from a measured memory benchmark (3.16
bytes/cycle from Olaf Bernstein's memset results) and a theoretical compute
peak (2 IPC x 8 SP lanes x 1.6 GHz = 25.6 GFLOP/s); the x86 roofs are taken
from Intel Advisor.  Both paths exist here: :func:`theoretical_roofs` derives
ceilings from the platform descriptor, and :mod:`repro.roofline.microbench`
measures them by running microbenchmarks on the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.platforms.descriptors import PlatformDescriptor


@dataclass
class MachineRoofs:
    """Compute and memory ceilings for one platform."""

    platform: str
    peak_gflops: float
    #: Bandwidth ceilings in GB/s, keyed by memory level ("DRAM", "L2", "L1").
    bandwidth_gbps: Dict[str, float] = field(default_factory=dict)
    source: str = "theoretical"
    frequency_hz: float = 0.0

    @property
    def dram_bandwidth(self) -> float:
        return self.bandwidth_gbps.get("DRAM", 0.0)

    def ridge_point(self, level: str = "DRAM") -> float:
        """Arithmetic intensity at which the kernel stops being memory bound."""
        bandwidth = self.bandwidth_gbps.get(level, 0.0)
        return self.peak_gflops / bandwidth if bandwidth else 0.0

    def attainable_gflops(self, arithmetic_intensity: float,
                          level: str = "DRAM") -> float:
        """The roofline function: min(peak, AI x bandwidth)."""
        bandwidth = self.bandwidth_gbps.get(level, 0.0)
        if arithmetic_intensity <= 0 or bandwidth <= 0:
            return 0.0
        return min(self.peak_gflops, arithmetic_intensity * bandwidth)

    def describe(self) -> str:
        lines = [f"{self.platform} roofs ({self.source}):",
                 f"  peak compute: {self.peak_gflops:.2f} GFLOP/s"]
        for level, bandwidth in self.bandwidth_gbps.items():
            lines.append(f"  {level} bandwidth: {bandwidth:.2f} GB/s "
                         f"(ridge at {self.ridge_point(level):.2f} FLOP/byte)")
        return "\n".join(lines)


def theoretical_roofs(descriptor: PlatformDescriptor) -> MachineRoofs:
    """Roofs computed exactly the way the paper's Section 5.2 does.

    Memory: ``peak bytes/cycle x frequency``.  Compute: the descriptor's peak
    SP FLOPs/cycle x frequency (for the X60 that is the paper's 2 IPC x 8
    lanes assumption).  L2 and L1 bandwidths are derived from the cache
    line transfer rate (one line per ``hit_latency`` cycles), a standard
    first-order estimate.
    """
    frequency = descriptor.core.frequency_hz
    bandwidth: Dict[str, float] = {
        "DRAM": descriptor.memory.peak_bytes_per_cycle * frequency / 1e9,
    }
    for cache in descriptor.caches:
        per_cycle = cache.line_bytes / max(1, cache.hit_latency)
        bandwidth[cache.name] = per_cycle * frequency / 1e9
    return MachineRoofs(
        platform=descriptor.name,
        peak_gflops=descriptor.theoretical_peak_gflops(),
        bandwidth_gbps=bandwidth,
        source="theoretical",
        frequency_hz=frequency,
    )
